// ShardWorker — one shard's recoverable trading state machine
// (DESIGN.md §14.2).
//
// The worker owns a lob::BitmapBook and a lob::RiskEngine and applies
// kFlow ShardMessages to them under the write-ahead discipline:
//
//   peek ring → journal append_delta → apply to book/risk → commit ring
//
// plus a periodic full snapshot (book image + risk POD) so replay cost
// stays bounded.  Exactly-once across crashes comes from the per-shard
// monotonic message seq: apply() skips any message whose seq is not
// greater than applied_seq(), so ring entries that were journaled before
// the crash (but not yet popped) are recognized and dropped on replay.
//
// Everything the message stream decides is a pure function of book
// content — cancel/replace victims come from BitmapBook::front_order(),
// fills update the risk engine from the taker's perspective, the mark
// follows the post-event mid.  Two workers fed the same seq-stream are
// therefore bit-identical (same digest, same position), whether one of
// them was SIGKILLed and recovered in between or not.  That equivalence
// is exactly what tests/shard/test_process_runtime.cpp asserts.
//
// Fork discipline: create() (which allocates the book, scratch buffers,
// and opens the journal) runs in the supervising PARENT before fork; the
// child only ever calls recover()/apply()/publish(), which are
// allocation-free.
#pragma once

#include <memory>
#include <string>

#include "common/status.hpp"
#include "lob/book.hpp"
#include "lob/risk.hpp"
#include "shard/journal.hpp"
#include "shard/message.hpp"
#include "shard/transport.hpp"

namespace rtseed::shard {

struct WorkerConfig {
  lob::BookConfig book;
  lob::RiskConfig risk;
  /// Journal file path; empty = unjournaled (an in-process reference
  /// worker, or a deployment that accepts state loss on crash).
  std::string journal_path;
  StateJournal::Options journal;
  /// Deltas between full snapshots (bounds replay length).
  u64 snapshot_every = 1024;
};

class ShardWorker {
 public:
  /// Allocates the book/risk/journal.  Parent-side, before fork.
  static common::Expected<std::unique_ptr<ShardWorker>> create(
      const WorkerConfig& config);

  ShardWorker(const ShardWorker&) = delete;
  ShardWorker& operator=(const ShardWorker&) = delete;

  /// Replays the journal into the book/risk (latest snapshot + deltas
  /// after it).  Call once, before the first apply().  Allocation-free.
  common::Expected<StateJournal::RecoverResult> recover();

  /// Applies one message under the write-ahead discipline.  Returns true
  /// when the message advanced state; false for duplicates (seq <=
  /// applied_seq — the exactly-once skip) and non-flow kinds.
  bool apply(const ShardMessage& msg);

  /// Publishes progress words for the parent-side supervisor: applied
  /// seq, deltas, position — and, when `with_digest`, the book digest
  /// (O(book size): only on request/exit, never per message).
  void publish(ShardControl* control, bool with_digest) const;

  u64 applied_seq() const { return applied_seq_; }
  u64 deltas_applied() const { return deltas_applied_; }
  u64 book_digest() const { return book_->digest(); }
  lob::Qty position() const { return risk_.position(); }
  const lob::BitmapBook& book() const { return *book_; }
  const lob::RiskEngine& risk() const { return risk_; }
  StateJournal* journal() { return journaled_ ? &journal_ : nullptr; }

  /// Forces a snapshot record now (clean-shutdown path).
  common::Status snapshot_now();

 private:
  explicit ShardWorker(const WorkerConfig& config);

  void apply_flow(const ShardMessage& msg);

  WorkerConfig config_;
  std::unique_ptr<lob::BitmapBook> book_;
  lob::RiskEngine risk_;
  StateJournal journal_;
  bool journaled_ = false;
  u64 applied_seq_ = 0;
  u64 deltas_applied_ = 0;
  u64 deltas_since_snapshot_ = 0;
  std::unique_ptr<unsigned char[]> snapshot_buf_;
  usize snapshot_buf_bytes_ = 0;
};

}  // namespace rtseed::shard
