// The one message schema that crosses a shard boundary (DESIGN.md §12).
//
// ShardMessage is a fixed-size trivially-copyable POD: it lives in a
// common::MessagePool cell, and only its u32 pool INDEX travels through
// the transport rings, so a message is written once by its producer and
// read in place by its consumer — zero copies, zero allocations, valid
// across address spaces.
//
// Four kinds share the schema (a tagged union would buy 8 bytes and cost
// a second pool): kTick flows router -> shard ingress, kJobResult flows
// shard -> supervisor egress, and the OMS workload (src/trading/oms_task)
// adds kNewOrder (wind-up -> next job's mandatory part, the order
// gateway hop) and kExecReport (shard -> supervisor, per-job fills and
// P&L).
#pragma once

#include <type_traits>

#include "common/types.hpp"

namespace rtseed::shard {

using common::i64;
using common::u32;
using common::u64;

enum class MessageKind : u32 {
  kInvalid = 0,
  kTick = 1,        ///< market tick routed to the symbol's shard
  kJobResult = 2,   ///< per-job outcome a shard reports outward
  kNewOrder = 3,    ///< client order submission headed for the shard's OMS
  kExecReport = 4,  ///< per-job OMS execution summary reported outward
  kFlow = 5,        ///< order-flow delta for a journaled shard worker
};

struct ShardMessage {
  MessageKind kind = MessageKind::kInvalid;
  u32 symbol = 0;        ///< trading symbol id (the routing key)
  u64 seq = 0;           ///< producer-assigned sequence number
  i64 produced_ns = 0;   ///< CLOCK_MONOTONIC at production (hop latency)
  union {
    struct {
      double price;
      double volume;
    } tick;
    struct {
      i64 job;
      double signal;     ///< fused decision signal
      u32 iterations;    ///< QoS proxy: optional refinements delivered
      u32 missed;        ///< 1 when the job missed its deadline
    } result;
    struct {
      i64 price_ticks;   ///< limit price (lob::PriceTicks)
      i64 qty;           ///< order size in lots
      i64 ttl_ns;        ///< lifetime; 0 = good-till-cancel
      u32 side;          ///< lob::Side
      u32 flags;         ///< reserved
    } order;
    struct {
      i64 job;
      i64 filled;        ///< lots executed this job
      i64 pnl_ticks;     ///< realized + unrealized, ticks × lots
      u32 misses;        ///< cumulative deadline misses
      u32 shed;          ///< 1 when the drawdown breaker shed this job
    } exec;
    struct {
      i64 price_ticks;   ///< limit price (add/replace); ignored otherwise
      i64 qty;           ///< lots (add/replace/market)
      u32 flow_kind;     ///< lob::FlowKind
      u32 side;          ///< lob::Side
      u64 pick;          ///< victim selector for cancel/replace
    } flow;
  } body = {};
};

static_assert(std::is_trivially_copyable_v<ShardMessage>,
              "messages are raw bytes across the transport");
static_assert(sizeof(ShardMessage) <= 64,
              "one message per cache line; growing past a line is a "
              "deliberate decision, not an accident");

}  // namespace rtseed::shard
