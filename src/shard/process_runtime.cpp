#include "shard/process_runtime.hpp"

#include <sys/wait.h>
#include <unistd.h>
#if defined(__linux__)
#include <sys/prctl.h>
#endif

#include <csignal>
#include <cstdlib>
#include <thread>
#include <utility>

#include "common/rt_logger.hpp"
#include "fault/injector.hpp"
#include "lob/flow.hpp"
#include "sched/sharded.hpp"

namespace rtseed::shard {

namespace {

/// SIGTERM just raises this flag; the serve loop drains, snapshots, and
/// exits cleanly at the next iteration (async-signal-safe by content).
volatile std::sig_atomic_t g_child_term = 0;

void child_term_handler(int) { g_child_term = 1; }

/// Loops of silence one kHeartbeatStall fire buys (long enough for the
/// supervisor's full probe → SIGTERM → SIGKILL ladder to engage).
constexpr u64 kStallLoops = 1u << 20;

bool env_truthy(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr) return false;
  const std::string v(value);
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

}  // namespace

bool process_shards_enabled() { return env_truthy("RTSEED_SHARD_PROC"); }

ProcessShardRuntime::ProcessShardRuntime(ProcessRuntimeOptions options)
    : options_(std::move(options)), slots_(static_cast<usize>(
                                        options_.num_shards)) {}

common::Expected<std::unique_ptr<ProcessShardRuntime>>
ProcessShardRuntime::create(ProcessRuntimeOptions options) {
  if (options.num_shards <= 0) {
    return common::invalid_argument("process runtime needs >= 1 shard");
  }
  if (!options.worker.journal_path.empty()) {
    return common::invalid_argument(
        "set journal_dir, not worker.journal_path: shards must not share "
        "one journal file");
  }
  if (options.journal_dir.empty()) {
    const char* env = std::getenv("RTSEED_JOURNAL_DIR");
    if (env != nullptr) options.journal_dir = env;
  }
  if (options.journal_dir.empty()) {
    common::global_logger().warn(
        "process shards run UNJOURNALED (no journal_dir / "
        "RTSEED_JOURNAL_DIR): a crash loses that shard's book state");
  }
  // Children must sleep on doorbells, and a stale fd from a previous
  // incarnation must not alias this one's state.
  options.transport.doorbell = true;
  if (options.transport.epoch <= 1) {
    static std::atomic<u64> g_instance{0};
    options.transport.epoch =
        static_cast<u64>(::getpid()) * 0x100003ULL +
        g_instance.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  std::unique_ptr<ProcessShardRuntime> runtime(
      new ProcessShardRuntime(std::move(options)));
  auto transport = ShardTransport::create(runtime->options_.num_shards,
                                          runtime->options_.transport);
  if (!transport.has_value()) return transport.status();
  runtime->transport_ = std::move(*transport);
  runtime->supervisor_ = std::make_unique<fault::ProcessSupervisor>(
      runtime->options_.supervisor);
  runtime->supervisor_->watch(runtime.get(), "shard-procs");
  return runtime;
}

ProcessShardRuntime::~ProcessShardRuntime() { stop(); }

std::string ProcessShardRuntime::journal_path(int shard) const {
  if (options_.journal_dir.empty()) return {};
  return options_.journal_dir + "/shard-" + std::to_string(shard) +
         ".journal";
}

common::Status ProcessShardRuntime::start() {
  if (started_) return common::Status::ok();
  for (int s = 0; s < options_.num_shards; ++s) {
    if (auto st = spawn(s); !st) {
      stop();
      return st;
    }
  }
  started_ = true;
  if (options_.start_supervisor) return supervisor_->start();
  return common::Status::ok();
}

common::Status ProcessShardRuntime::spawn(int shard) {
  WorkerConfig config = options_.worker;
  config.journal_path = journal_path(shard);
  // Everything that allocates happens HERE, in the parent; the child
  // inherits the finished worker copy-on-write and never mallocs (other
  // parent threads may hold the heap lock at fork time).
  auto worker = ShardWorker::create(config);
  if (!worker.has_value()) return worker.status();

  ShardControl* control = transport_->control(shard);
  control->state.store(static_cast<u32>(ShardState::kStarting),
                       std::memory_order_release);
  const pid_t pid = ::fork();
  if (pid < 0) {
    control->state.store(static_cast<u32>(ShardState::kDown),
                         std::memory_order_release);
    return common::internal_error("fork failed for shard " +
                                  std::to_string(shard));
  }
  if (pid == 0) {
    child_main(shard, worker->get());  // never returns
  }
  control->pid.store(static_cast<u32>(pid), std::memory_order_release);
  Slot& slot = slots_[static_cast<usize>(shard)];
  slot.pid.store(pid, std::memory_order_release);
  slot.alive.store(true, std::memory_order_release);
  // The parent's copies of the worker (journal fd, book pages) die with
  // `worker` here; the child's copy-on-write image is unaffected.
  return common::Status::ok();
}

void ProcessShardRuntime::child_main(int shard, ShardWorker* worker) {
#if defined(__linux__)
  // An orphaned shard must not outlive its supervisor.
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);
#endif
  std::signal(SIGTERM, child_term_handler);
  std::signal(SIGINT, SIG_IGN);

  ShardControl* control = transport_->control(shard);
  control->state.store(static_cast<u32>(ShardState::kRecovering),
                       std::memory_order_release);
  auto recovered = worker->recover();
  if (!recovered.has_value()) {
    control->state.store(static_cast<u32>(ShardState::kDown),
                         std::memory_order_release);
    ::_exit(64);
  }
  control->recoveries.fetch_add(1, std::memory_order_relaxed);
  worker->publish(control, /*with_digest=*/true);
  control->state.store(static_cast<u32>(ShardState::kRunning),
                       std::memory_order_release);

  u64 stall_loops = 0;
  for (;;) {
    if (g_child_term != 0) {
      control->state.store(static_cast<u32>(ShardState::kDraining),
                           std::memory_order_release);
      // Bounded final drain, then one last snapshot: a clean shutdown
      // leaves nothing to replay.
      for (usize i = 0; i < transport_->ingress_size_approx(shard) + 1; ++i) {
        ShardMessage* msg = transport_->peek_ingress(shard);
        if (msg == nullptr) break;
        worker->apply(*msg);
        transport_->commit_ingress(shard);
        transport_->release(msg);
      }
      (void)worker->snapshot_now();
      worker->publish(control, /*with_digest=*/true);
      control->state.store(static_cast<u32>(ShardState::kExited),
                           std::memory_order_release);
      ::_exit(0);
    }

    // Heartbeat — or injected silence (the supervisor must then walk its
    // probe → SIGTERM → SIGKILL ladder against a live-but-mute child).
    if (stall_loops > 0) {
      --stall_loops;
    } else if (fault::try_fire(fault::InjectPoint::kHeartbeatStall)) {
      stall_loops = kStallLoops;
    } else {
      control->heartbeat.fetch_add(1, std::memory_order_relaxed);
    }

    const u32 digest_req =
        control->digest_request.load(std::memory_order_acquire);
    if (digest_req != control->digest_ack.load(std::memory_order_relaxed)) {
      worker->publish(control, /*with_digest=*/true);
      control->digest_ack.store(digest_req, std::memory_order_release);
    }

    ShardMessage* msg = transport_->peek_ingress(shard);
    if (msg != nullptr) {
      // Chaos: die mid-guarded-segment-write, generation left ODD — the
      // parent must repair before any reattach succeeds.
      if (fault::try_fire(fault::InjectPoint::kTornShmWrite)) {
        transport_->segment_header()->generation.fetch_add(
            1, std::memory_order_acq_rel);
        ::_exit(70);
      }
      worker->apply(*msg);  // WAL inside: journal, then book
      transport_->commit_ingress(shard);
      transport_->release(msg);
      const bool digest_now =
          options_.digest_publish_every != 0 &&
          worker->deltas_applied() % options_.digest_publish_every == 0;
      worker->publish(control, digest_now);
    } else {
      (void)transport_->wait_ingress(
          shard, common::monotonic_now() + options_.drain_slice);
    }
  }
}

void ProcessShardRuntime::stop() {
  if (supervisor_) supervisor_->stop();
  for (int s = 0; s < options_.num_shards; ++s) {
    Slot& slot = slots_[static_cast<usize>(s)];
    const pid_t pid = slot.pid.load(std::memory_order_acquire);
    if (pid == 0) continue;
    ::kill(pid, SIGTERM);
  }
  const Nanos deadline = common::monotonic_now() + common::millis(2000);
  for (int s = 0; s < options_.num_shards; ++s) {
    Slot& slot = slots_[static_cast<usize>(s)];
    pid_t pid = slot.pid.load(std::memory_order_acquire);
    if (pid == 0) continue;
    for (;;) {
      int status = 0;
      const pid_t r = ::waitpid(pid, &status, WNOHANG);
      if (r == pid || (r < 0 && errno != EINTR)) break;
      if (common::monotonic_now() > deadline) {
        ::kill(pid, SIGKILL);
        ::waitpid(pid, &status, 0);
        break;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    slot.pid.store(0, std::memory_order_release);
    slot.alive.store(false, std::memory_order_release);
    transport_->control(s)->pid.store(0, std::memory_order_release);
  }
  // Close any window left open by a final outage.
  const Nanos now = common::monotonic_now();
  std::lock_guard<std::mutex> lock(windows_mutex_);
  for (auto& window : windows_) {
    if (window.end == 0) window.end = now;
  }
  started_ = false;
}

int ProcessShardRuntime::shard_of(u32 symbol) const {
  const int home = sched::home_shard(symbol, options_.num_shards);
  if (!options_.failover_redirect) return home;
  if (slots_[static_cast<usize>(home)].alive.load(std::memory_order_acquire)) {
    return home;
  }
  // Next live shard in stable scan order: every producer computes the
  // same redirect without coordination.
  for (int step = 1; step < options_.num_shards; ++step) {
    const int s = (home + step) % options_.num_shards;
    if (slots_[static_cast<usize>(s)].alive.load(std::memory_order_acquire)) {
      return s;
    }
  }
  return home;
}

bool ProcessShardRuntime::post_flow(u32 symbol, const lob::FlowEvent& event) {
  const int shard = shard_of(symbol);
  ShardMessage* msg = transport_->acquire();
  if (msg == nullptr) return false;
  msg->kind = MessageKind::kFlow;
  msg->symbol = symbol;
  msg->produced_ns = common::monotonic_now();
  msg->body.flow.price_ticks = event.price;
  msg->body.flow.qty = event.qty;
  msg->body.flow.flow_kind = static_cast<u32>(event.kind);
  msg->body.flow.side = static_cast<u32>(event.side);
  msg->body.flow.pick = event.pick;
  Slot& slot = slots_[static_cast<usize>(shard)];
  // SPSC ring ⇒ one producer per shard, so the rollback on a dropped
  // post cannot interleave with another assignment.
  msg->seq = slot.next_seq.fetch_add(1, std::memory_order_relaxed) + 1;
  if (!transport_->post(shard, msg)) {
    slot.next_seq.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

bool ProcessShardRuntime::quiesce(int shard, Nanos timeout) {
  const Nanos deadline = common::monotonic_now() + timeout;
  const ShardControl* control = transport_->control(shard);
  const Slot& slot = slots_[static_cast<usize>(shard)];
  for (;;) {
    const u64 target = slot.next_seq.load(std::memory_order_acquire);
    if (control->applied_seq.load(std::memory_order_acquire) >= target) {
      return true;
    }
    if (common::monotonic_now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

common::Expected<u64> ProcessShardRuntime::request_digest(int shard,
                                                          Nanos timeout) {
  ShardControl* control = transport_->control(shard);
  const u32 request =
      control->digest_request.fetch_add(1, std::memory_order_acq_rel) + 1;
  const Nanos deadline = common::monotonic_now() + timeout;
  while (control->digest_ack.load(std::memory_order_acquire) != request) {
    if (common::monotonic_now() > deadline) {
      return common::internal_error("digest request to shard " +
                                    std::to_string(shard) + " timed out");
    }
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  return control->book_digest.load(std::memory_order_acquire);
}

std::vector<FailoverWindow> ProcessShardRuntime::failover_windows() const {
  std::lock_guard<std::mutex> lock(windows_mutex_);
  return windows_;
}

u64 ProcessShardRuntime::torn_repairs() const {
  return transport_->segment_header()->torn_repairs.load(
      std::memory_order_relaxed);
}

fault::ProcessHealth ProcessShardRuntime::process_health(int index) const {
  const Slot& slot = slots_[static_cast<usize>(index)];
  fault::ProcessHealth health;
  health.alive = slot.alive.load(std::memory_order_acquire);
  health.pid = static_cast<u32>(slot.pid.load(std::memory_order_acquire));
  health.heartbeat = transport_->control(index)->heartbeat.load(
      std::memory_order_acquire);
  return health;
}

bool ProcessShardRuntime::signal_process(int index, int signo) {
  const pid_t pid =
      slots_[static_cast<usize>(index)].pid.load(std::memory_order_acquire);
  if (pid == 0) return false;
  return ::kill(pid, signo) == 0;
}

bool ProcessShardRuntime::reap_process(int index) {
  Slot& slot = slots_[static_cast<usize>(index)];
  const pid_t pid = slot.pid.load(std::memory_order_acquire);
  if (pid == 0) return false;
  int status = 0;
  const pid_t r = ::waitpid(pid, &status, WNOHANG);
  if (r != pid) return false;

  slot.alive.store(false, std::memory_order_release);
  slot.pid.store(0, std::memory_order_release);
  ShardControl* control = transport_->control(index);
  control->state.store(static_cast<u32>(ShardState::kDown),
                       std::memory_order_release);
  control->pid.store(0, std::memory_order_release);
  // A child that died inside a ShmWriteGuard leaves the generation odd;
  // with the writer reaped, the parent is the only process left that may
  // repair it.
  common::repair_torn_segment(transport_->segment_header());

  const Nanos now = common::monotonic_now();
  std::lock_guard<std::mutex> lock(windows_mutex_);
  slot.open_window = static_cast<int>(windows_.size());
  windows_.push_back(FailoverWindow{index, now, 0});
  common::global_logger().warn(
      "shard %d process died (status %d): failover window open", index,
      status);
  return true;
}

bool ProcessShardRuntime::respawn_process(int index) {
  Slot& slot = slots_[static_cast<usize>(index)];
  if (slot.alive.load(std::memory_order_acquire)) return false;
  if (auto st = spawn(index); !st) {
    common::global_logger().warn("shard %d respawn failed: %s", index,
                                 st.message().c_str());
    return false;
  }
  // The outage ends when the recovered child reports kRunning (bounded
  // wait — supervision runs at best-effort priority, blocking is fine).
  const ShardControl* control = transport_->control(index);
  const Nanos deadline = common::monotonic_now() + common::millis(2000);
  while (control->state.load(std::memory_order_acquire) !=
             static_cast<u32>(ShardState::kRunning) &&
         common::monotonic_now() < deadline) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  const Nanos now = common::monotonic_now();
  std::lock_guard<std::mutex> lock(windows_mutex_);
  if (slot.open_window >= 0 &&
      slot.open_window < static_cast<int>(windows_.size())) {
    windows_[static_cast<usize>(slot.open_window)].end = now;
  }
  slot.open_window = -1;
  return true;
}

}  // namespace rtseed::shard
