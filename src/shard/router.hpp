// The routing contract a feed producer needs from a shard deployment:
// which shard owns a symbol right now, and the transport to post on.
//
// Two implementations: shard::ShardedRuntime (in-process shards — the
// placement is fixed at start()) and shard::ProcessShardRuntime
// (crash-isolated worker processes — shard_of() additionally reflects
// live failover redirects, so a producer keeps routing correctly while
// a shard is down).  trading::FeedRouter speaks only this interface,
// which is what makes failover cutover a router-transparent event.
#pragma once

#include "common/types.hpp"

namespace rtseed::shard {

class ShardTransport;

class ShardRouter {
 public:
  virtual ~ShardRouter() = default;

  /// How many shards the deployment runs.
  virtual int num_shards() const = 0;

  /// The shard currently responsible for `symbol` — placement plus any
  /// active failover redirect.  Stable within a pump round.
  virtual int shard_of(common::u32 symbol) const = 0;

  /// The transport to acquire/post on.  Valid once the deployment is
  /// started.
  virtual ShardTransport* transport() = 0;
};

}  // namespace rtseed::shard
