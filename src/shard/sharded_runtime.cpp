#include "shard/sharded_runtime.hpp"

#include <algorithm>
#include <cstdlib>

namespace rtseed::shard {

const char* shard_policy_name(ShardPolicy policy) {
  switch (policy) {
    case ShardPolicy::kLlc:
      return "llc";
    case ShardPolicy::kCompact:
      return "compact";
    case ShardPolicy::kSpread:
      return "spread";
  }
  return "?";
}

bool parse_shard_policy(const std::string& text, ShardPolicy* out) {
  if (text == "llc") {
    *out = ShardPolicy::kLlc;
  } else if (text == "compact") {
    *out = ShardPolicy::kCompact;
  } else if (text == "spread") {
    *out = ShardPolicy::kSpread;
  } else {
    return false;
  }
  return true;
}

std::vector<std::vector<common::CoreId>> carve_shards(
    const common::Topology& topology, int num_shards, ShardPolicy policy) {
  std::vector<std::vector<common::CoreId>> shards;
  const int cores = topology.num_cores();
  if (num_shards <= 0 || num_shards > cores) return shards;
  shards.assign(static_cast<usize>(num_shards), {});

  // kCompact keeps raw core-index order; the cache-aware policies walk
  // cores grouped by (NUMA node, LLC domain) so a contiguous cut — or a
  // dealt hand — has a well-defined locality meaning.
  std::vector<int> order;
  if (policy == ShardPolicy::kCompact) {
    order.resize(static_cast<usize>(cores));
    for (int c = 0; c < cores; ++c) order[static_cast<usize>(c)] = c;
  } else {
    order = sched::topology_processor_order(&topology, cores);
  }

  if (policy == ShardPolicy::kSpread) {
    for (int k = 0; k < cores; ++k) {
      shards[static_cast<usize>(k % num_shards)].push_back(
          order[static_cast<usize>(k)]);
    }
    return shards;
  }

  // Contiguous cuts, sizes differing by at most one (the first
  // `cores % num_shards` shards take the extra core).  With kLlc and
  // dividing shapes the cuts land exactly on domain boundaries because
  // the order groups domains contiguously.
  const int base = cores / num_shards;
  const int extra = cores % num_shards;
  int next = 0;
  for (int s = 0; s < num_shards; ++s) {
    const int take = base + (s < extra ? 1 : 0);
    for (int k = 0; k < take; ++k) {
      shards[static_cast<usize>(s)].push_back(
          order[static_cast<usize>(next++)]);
    }
  }
  return shards;
}

ShardedRuntime::ShardedRuntime(ShardedRuntimeOptions options)
    : options_(std::move(options)) {}

ShardedRuntime::~ShardedRuntime() { stop(); }

common::Status ShardedRuntime::admit(core::TaskConfig config, u32 symbol) {
  if (started_) {
    return common::failed_precondition("cannot admit after start()");
  }
  plan_.reset();  // new task invalidates any previous analysis
  for (auto& group : groups_) {
    if (group.symbol == symbol) {
      group.configs.push_back(std::move(config));
      return common::Status::ok();
    }
  }
  groups_.push_back({symbol, {}});
  groups_.back().configs.push_back(std::move(config));
  return common::Status::ok();
}

common::Status ShardedRuntime::carve() {
  int shards = options_.num_shards;
  ShardPolicy policy = options_.policy;
  if (options_.from_env) {
    if (shards <= 0) {
      if (const char* env = std::getenv("RTSEED_SHARDS")) {
        shards = std::atoi(env);
        if (shards <= 0) {
          return common::invalid_argument(
              std::string("RTSEED_SHARDS must be a positive integer, got "
                          "\"") +
              env + "\"");
        }
      }
    }
    if (const char* env = std::getenv("RTSEED_SHARD_POLICY")) {
      if (!parse_shard_policy(env, &policy)) {
        return common::invalid_argument(
            std::string("RTSEED_SHARD_POLICY must be llc|compact|spread, "
                        "got \"") +
            env + "\"");
      }
    }
  }
  const auto& topology = options_.base.topology;
  if (shards <= 0) shards = std::max(1, topology.num_llc_domains());
  shards = std::min(shards, topology.num_cores());

  shard_cores_ = carve_shards(topology, shards, policy);
  if (shard_cores_.empty()) {
    return common::internal_error("shard carving produced no shards");
  }
  shard_topologies_.clear();
  shard_topologies_.reserve(shard_cores_.size());
  for (const auto& cores : shard_cores_) {
    shard_topologies_.push_back(topology.subset(cores));
  }
  return common::Status::ok();
}

common::Expected<sched::ShardedPlan> ShardedRuntime::analyze() {
  if (plan_ != nullptr) return *plan_;
  if (auto st = carve(); !st) return st;

  std::vector<sched::SymbolTaskSet> sets;
  sets.reserve(groups_.size());
  for (const auto& group : groups_) {
    sched::SymbolTaskSet set;
    set.symbol = group.symbol;
    for (const auto& config : group.configs) set.tasks.add(config.params);
    sets.push_back(std::move(set));
  }

  std::vector<int> cores_per_shard;
  sched::ShardedOptions sharded;
  sharded.per_shard = options_.base.analysis;
  for (const auto& topo : shard_topologies_) {
    cores_per_shard.push_back(topo.num_cores());
    sharded.shard_topologies.push_back(&topo);
  }

  auto plan = sched::plan_sharded(sets, cores_per_shard, sharded);
  if (!plan.feasible) {
    return common::failed_precondition("sharded plan infeasible: " +
                                       plan.diagnostics);
  }
  plan_ = std::make_unique<sched::ShardedPlan>(std::move(plan));
  return *plan_;
}

common::Status ShardedRuntime::start() {
  if (started_) return common::failed_precondition("already started");
  auto plan = analyze();
  if (!plan.has_value()) return plan.status();

  auto transport =
      ShardTransport::create(num_shards(), options_.transport);
  if (!transport.has_value()) return transport.status();
  transport_ = std::move(*transport);

  // Shards with no symbol groups stay dormant: Runtime refuses to start
  // with zero tasks, so their slots are left null and skipped everywhere.
  std::vector<bool> populated(static_cast<usize>(num_shards()), false);
  for (const auto& group : plan_->groups) {
    if (group.shard >= 0 && !group.local_task_ids.empty()) {
      populated[static_cast<usize>(group.shard)] = true;
    }
  }

  runtimes_.clear();
  for (int s = 0; s < num_shards(); ++s) {
    if (!populated[static_cast<usize>(s)]) {
      runtimes_.push_back(nullptr);
      continue;
    }
    core::RuntimeOptions options = options_.base;
    options.topology = shard_topologies_[static_cast<usize>(s)];
    // The stored sub-topology outlives every shard runtime (member
    // declaration order), so the analysis can keep pointing at it.
    options.analysis.topology = &shard_topologies_[static_cast<usize>(s)];
    runtimes_.push_back(std::make_unique<core::Runtime>(std::move(options)));
  }

  for (usize g = 0; g < groups_.size(); ++g) {
    const int s = plan_->groups[g].shard;
    for (const auto& config : groups_[g].configs) {
      if (auto st =
              runtimes_[static_cast<usize>(s)]->admit(config);
          !st) {
        return st;
      }
    }
  }

  for (auto& runtime : runtimes_) {
    if (runtime == nullptr) continue;
    if (auto st = runtime->start(); !st) {
      for (auto& r : runtimes_) {
        if (r != nullptr) r->stop();
      }
      return st;
    }
  }
  started_ = true;
  return common::Status::ok();
}

int ShardedRuntime::shard_of(u32 symbol) const {
  if (plan_ != nullptr) {
    for (usize g = 0; g < groups_.size(); ++g) {
      if (groups_[g].symbol == symbol) {
        return plan_->groups[g].shard;
      }
    }
  }
  const int shards = num_shards();
  return shards > 0 ? sched::home_shard(symbol, shards) : 0;
}

void ShardedRuntime::wait_all_finished() {
  for (auto& runtime : runtimes_) {
    if (runtime != nullptr) runtime->wait_all_finished();
  }
}

void ShardedRuntime::stop() {
  for (auto& runtime : runtimes_) {
    if (runtime != nullptr) runtime->stop();
  }
  started_ = false;
}

ShardedReport ShardedRuntime::stop_and_report() {
  ShardedReport report;
  for (auto& runtime : runtimes_) {
    report.shards.push_back(runtime != nullptr ? runtime->stop_and_report()
                                               : core::RuntimeReport{});
  }
  started_ = false;
  if (plan_ != nullptr) report.spill_count = plan_->spill_count;
  if (transport_ != nullptr) {
    report.ingress_drops = transport_->ingress_drops();
    report.egress_drops = transport_->egress_drops();
    report.pool_exhausted = transport_->pool_exhausted();
  }
  return report;
}

}  // namespace rtseed::shard
