// ProcessShardRuntime — crash-isolated shard WORKER PROCESSES over the
// shm-resident transport (DESIGN.md §14).
//
// The in-process ShardedRuntime dies with its worst shard: one corrupted
// book, one wild write, one abort() takes the whole deployment down.
// This runtime forks each shard into its own process instead.  Parent
// and children share exactly one mapping — the transport's memfd segment
// (rings, message pool, per-shard ShardControl heartbeat lines) — so a
// shard crash cannot corrupt anything another shard reads; its private
// book state is rebuilt from its write-ahead StateJournal on respawn.
//
// The lifecycle, per shard:
//
//   spawn     parent builds the ShardWorker (book, risk, journal fd,
//             scratch buffers — every allocation), THEN forks; the child
//             runs an allocation-free serve loop (recover → drain).
//   monitor   the child bumps control->heartbeat every loop; the
//             fault::ProcessSupervisor escalates silence through
//             probe → SIGTERM → SIGKILL, and waitpid-reaps any death.
//   respawn   the parent repairs a torn segment generation if the child
//             died mid-guarded-write, re-forks, and the new child
//             replays its journal: latest snapshot + deltas, then skips
//             already-journaled ring entries by seq (exactly-once).
//   failover  while a shard is down, shard_of() optionally redirects its
//             symbols to the next live shard (restricted migration at
//             the routing layer; sched::plan_failover is the admission-
//             level counterpart).  Every outage is recorded as a
//             FailoverWindow for obs::attribute_jobs' shard-failover
//             root cause.
//
// Environment knobs (when the corresponding option is unset):
//   RTSEED_SHARD_PROC    "1"/"true" opts a deployment into process
//                        shards (read by callers via process_shards_enabled())
//   RTSEED_JOURNAL_DIR   directory for per-shard journal files
#pragma once

#include <sys/types.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/time.hpp"
#include "fault/process_supervisor.hpp"
#include "shard/router.hpp"
#include "shard/transport.hpp"
#include "shard/worker.hpp"

namespace rtseed::lob {
struct FlowEvent;
}  // namespace rtseed::lob

namespace rtseed::shard {

using common::Nanos;

/// One shard outage, in CLOCK_MONOTONIC: from death detection (reap) to
/// the respawned worker reporting kRunning.  end == 0 while still open.
struct FailoverWindow {
  int shard = -1;
  Nanos begin = 0;
  Nanos end = 0;
};

struct ProcessRuntimeOptions {
  int num_shards = 2;
  /// Transport shape.  doorbell is forced on (children sleep between
  /// messages); epoch defaults to the parent pid so a stale fd from a
  /// previous incarnation cannot alias.
  TransportOptions transport;
  /// Per-shard worker template; journal_path is derived per shard as
  /// <journal_dir>/shard-<i>.journal (an explicit path is an error —
  /// shards must not share a journal).
  WorkerConfig worker;
  /// Directory for journals; "" reads RTSEED_JOURNAL_DIR, and "" there
  /// too runs every shard UNJOURNALED (crash loses state — loud in logs).
  std::string journal_dir;
  /// How long a child sleeps on the doorbell per empty iteration.
  Nanos drain_slice = common::millis(1);
  /// Publish the (O(book)) digest every this many applied deltas; it is
  /// also published on request and at clean exit.
  u64 digest_publish_every = 4096;
  /// While a shard is down, redirect its symbols to the next live shard.
  /// Off by default: a short outage is better served by letting the
  /// dead shard's ingress ring buffer (the respawned worker drains it)
  /// than by splitting one symbol's stream across two books.
  bool failover_redirect = false;
  fault::ProcessSupervisorConfig supervisor;
  /// Start the supervisor thread in start() (tests drive scan_once()).
  bool start_supervisor = true;
};

/// True when RTSEED_SHARD_PROC is "1"/"true"/"yes" — the deployment-level
/// opt-in for crash-isolated shard processes.
bool process_shards_enabled();

class ProcessShardRuntime : public ShardRouter,
                            public fault::SupervisedProcessGroup {
 public:
  static common::Expected<std::unique_ptr<ProcessShardRuntime>> create(
      ProcessRuntimeOptions options);
  ~ProcessShardRuntime() override;

  ProcessShardRuntime(const ProcessShardRuntime&) = delete;
  ProcessShardRuntime& operator=(const ProcessShardRuntime&) = delete;

  /// Forks every shard and (optionally) starts the supervisor.
  common::Status start();
  /// SIGTERMs every child (clean drain + final snapshot), reaps them,
  /// stops the supervisor.  Idempotent.
  void stop();

  int num_shards() const override { return options_.num_shards; }
  bool started() const { return started_; }

  // ---- ShardRouter -------------------------------------------------------
  /// Home shard by hash; while that shard is down and failover_redirect
  /// is on, the next live shard (stable scan order, so every producer
  /// agrees without coordination).
  int shard_of(u32 symbol) const override;
  ShardTransport* transport() override { return transport_.get(); }

  /// Routes one order-flow event: assigns the destination shard's next
  /// seq and posts a kFlow message.  False when dropped (pool/ring full).
  bool post_flow(u32 symbol, const lob::FlowEvent& event);

  // ---- state queries -----------------------------------------------------
  ShardControl* control(int shard) { return transport_->control(shard); }
  bool shard_alive(int shard) const {
    return slots_[static_cast<usize>(shard)].alive.load(
        std::memory_order_acquire);
  }
  /// Blocks (bounded) until `shard` has applied every seq posted to it so
  /// far.  False on timeout or while the shard is down past the deadline.
  bool quiesce(int shard, Nanos timeout);
  /// Digest handshake: asks the live worker for a fresh digest and waits
  /// for the echo.  O(book) in the child, bounded wait here.
  common::Expected<u64> request_digest(int shard, Nanos timeout);

  /// Every outage so far (closed and open), in detection order.
  std::vector<FailoverWindow> failover_windows() const;
  /// Torn segment generations repaired across respawns.
  u64 torn_repairs() const;

  fault::ProcessSupervisor* supervisor() { return supervisor_.get(); }

  // ---- fault::SupervisedProcessGroup -------------------------------------
  int process_count() const override { return options_.num_shards; }
  fault::ProcessHealth process_health(int index) const override;
  bool signal_process(int index, int signo) override;
  bool reap_process(int index) override;
  bool respawn_process(int index) override;

 private:
  struct Slot {
    std::atomic<pid_t> pid{0};
    std::atomic<bool> alive{false};
    std::atomic<u64> next_seq{0};  ///< producer-side per-shard seq counter
    int open_window = -1;          ///< index into windows_ while down
  };

  explicit ProcessShardRuntime(ProcessRuntimeOptions options);

  common::Status spawn(int shard);
  [[noreturn]] void child_main(int shard, ShardWorker* worker);
  std::string journal_path(int shard) const;

  ProcessRuntimeOptions options_;
  std::unique_ptr<ShardTransport> transport_;
  std::vector<Slot> slots_;
  std::unique_ptr<fault::ProcessSupervisor> supervisor_;
  bool started_ = false;

  mutable std::mutex windows_mutex_;
  std::vector<FailoverWindow> windows_;
};

}  // namespace rtseed::shard
