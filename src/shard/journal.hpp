// Per-shard write-ahead state journal — the durability half of crash
// recovery (DESIGN.md §14.3).
//
// A journaled shard worker persists two record kinds to an append-only
// file:
//
//   kDelta     one ShardMessage, written BEFORE the message is applied
//              to the book (write-ahead: peek ring → append → apply →
//              commit ring);
//   kSnapshot  a full (BitmapBook image + RiskEngine::Snapshot) pair,
//              written every snapshot_every deltas so replay cost stays
//              bounded.
//
// Every record carries an FNV-1a digest over its header fields and
// payload.  Recovery scans the file, restores the LATEST digest-valid
// snapshot, replays the digest-valid deltas after it in order, and
// truncates whatever torn/truncated tail a mid-write crash left — a
// partial record is EXPECTED after SIGKILL, never an error.  Combined
// with the per-message seq (replayed messages with seq <= applied are
// skipped at the transport), recovery is exactly-once: the rebuilt book
// digest equals a never-crashed reference bit for bit.
//
// Process-crash durability only: records go through write(2) into the
// page cache, which survives the worker dying by any signal.  Machine-
// crash durability would need fdatasync per append (Options::sync_each_
// append) and is off by default — the supervisor, not the disk, is the
// failure domain here.
//
// Fork discipline: open() and the scratch buffer allocation happen in
// the PARENT before fork; the child inherits the fd and appends through
// the preallocated buffer with raw write(2) calls — no malloc after
// fork (the parent's other threads may hold the heap lock at fork time).
#pragma once

#include <memory>
#include <string>

#include "common/inplace_function.hpp"
#include "common/status.hpp"
#include "common/types.hpp"
#include "lob/risk.hpp"
#include "shard/message.hpp"

namespace rtseed::shard {

using common::usize;

class StateJournal {
 public:
  struct Options {
    /// Upper bound on one snapshot's book-image bytes; sizes the scratch
    /// buffer (allocated once, at open).
    usize max_book_image_bytes = 1 << 20;
    /// fdatasync after every append (machine-crash durability; slow).
    bool sync_each_append = false;
  };

  /// What recover() found and did.
  struct RecoverResult {
    u64 snapshot_seq = 0;    ///< seq of the restored snapshot (0 = none)
    u64 deltas_replayed = 0; ///< valid deltas delivered after the snapshot
    u64 last_seq = 0;        ///< highest seq made durable before the crash
    bool tail_truncated = false;  ///< a torn/partial tail record was cut
  };

  /// Restores state during recover(): the latest valid snapshot record.
  using SnapshotSink = common::FunctionRef<common::Status(
      u64 seq, const void* book_image, usize book_bytes,
      const lob::RiskEngine::Snapshot& risk)>;
  /// Applies one journaled delta during recover().
  using DeltaSink = common::FunctionRef<void(const ShardMessage& msg)>;

  StateJournal() = default;
  ~StateJournal();
  StateJournal(StateJournal&& other) noexcept { *this = std::move(other); }
  StateJournal& operator=(StateJournal&& other) noexcept;
  StateJournal(const StateJournal&) = delete;
  StateJournal& operator=(const StateJournal&) = delete;

  /// Opens (creating if absent) the journal at `path`.  Never truncates
  /// existing content — recover() decides what is valid.
  static common::Expected<StateJournal> open(const std::string& path,
                                             const Options& options);
  static common::Expected<StateJournal> open(const std::string& path) {
    return open(path, Options{});
  }

  bool valid() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  /// Scans the whole file, delivers the latest digest-valid snapshot to
  /// `on_snapshot` (if any), then every digest-valid delta after it (in
  /// write order) to `on_delta`; finally truncates any torn tail and
  /// positions the journal for appending.  Call once, before appending.
  common::Expected<RecoverResult> recover(SnapshotSink on_snapshot,
                                          DeltaSink on_delta);

  /// Appends one write-ahead delta.  Allocation-free.
  common::Status append_delta(u64 seq, const ShardMessage& msg);

  /// Appends a full state snapshot.  `book_image` must be at most
  /// Options::max_book_image_bytes.
  common::Status append_snapshot(u64 seq, const void* book_image,
                                 usize book_bytes,
                                 const lob::RiskEngine::Snapshot& risk);

  /// Chaos counter: appends that the kJournalTruncate injection point
  /// turned into torn half-writes (the journal poisons itself after one
  /// — a real crashed writer never writes again either).
  u64 torn_appends() const { return torn_appends_; }
  u64 appended_bytes() const { return static_cast<u64>(write_offset_); }

 private:
  common::Status append_record(u32 kind, u64 seq, const void* payload_a,
                               usize bytes_a, const void* payload_b,
                               usize bytes_b);

  std::string path_;
  Options options_;
  int fd_ = -1;
  usize write_offset_ = 0;
  std::unique_ptr<unsigned char[]> scratch_;
  usize scratch_bytes_ = 0;
  bool poisoned_ = false;  ///< a torn append happened; writes stop
  u64 torn_appends_ = 0;
};

}  // namespace rtseed::shard
