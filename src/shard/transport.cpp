#include "shard/transport.hpp"

#include <utility>

#include "common/cacheline.hpp"

namespace rtseed::shard {

namespace {

constexpr usize kRingCapacityMax = 1u << 20;

usize ring_region_bytes(usize capacity) {
  const usize bytes = ShardTransport::required_ring_bytes(capacity);
  return (bytes + common::kCacheLine - 1) & ~(common::kCacheLine - 1);
}

}  // namespace

usize ShardTransport::required_ring_bytes(usize capacity) {
  return IndexRing::required_bytes(capacity);
}

common::Expected<std::unique_ptr<ShardTransport>> ShardTransport::create(
    int num_shards, const TransportOptions& options) {
  if (num_shards <= 0) {
    return common::invalid_argument("transport needs at least one shard");
  }
  if (options.pool_capacity == 0) {
    return common::invalid_argument("pool capacity must be positive");
  }
  const usize cap = options.ring_capacity;
  if (cap < 2 || cap > kRingCapacityMax || (cap & (cap - 1)) != 0) {
    return common::invalid_argument(
        "ring capacity must be a power of two in [2, 2^20]");
  }

  // One segment holds all 2*S rings, each region cache-line aligned.
  const usize region = ring_region_bytes(cap);
  auto segment = common::ShmSegment::create(
      region * static_cast<usize>(num_shards) * 2, "rtseed-shard-transport");
  if (!segment.has_value()) return segment.status();

  std::unique_ptr<ShardTransport> transport(
      new ShardTransport(num_shards, options, std::move(*segment)));
  auto* base = static_cast<unsigned char*>(transport->segment_.data());
  for (int s = 0; s < num_shards; ++s) {
    transport->ingress_.push_back(IndexRing::create(
        base + region * static_cast<usize>(2 * s), cap));
    transport->egress_.push_back(IndexRing::create(
        base + region * static_cast<usize>(2 * s + 1), cap));
  }
  return transport;
}

ShardTransport::ShardTransport(int num_shards,
                               const TransportOptions& options,
                               common::ShmSegment segment)
    : num_shards_(num_shards),
      pool_(options.pool_capacity),
      segment_(std::move(segment)) {
  ingress_.reserve(static_cast<usize>(num_shards));
  egress_.reserve(static_cast<usize>(num_shards));
}

}  // namespace rtseed::shard
