#include "shard/transport.hpp"

#include <new>
#include <utility>

#include "common/cacheline.hpp"
#include "obs/metrics.hpp"
#include "rt/futex.hpp"

namespace rtseed::shard {

namespace {

constexpr usize kRingCapacityMax = 1u << 20;
constexpr usize kPoolCapacityMax = 1u << 24;

usize align_line(usize bytes) {
  return (bytes + common::kCacheLine - 1) & ~(common::kCacheLine - 1);
}

usize ring_region_bytes(usize capacity) {
  return align_line(ShardTransport::required_ring_bytes(capacity));
}

/// Byte offsets of every region in the segment — a pure function of the
/// shape, so creator and attacher lay out identically.
struct Layout {
  usize controls = 0;
  usize drops = 0;
  usize pool = 0;
  usize rings = 0;       ///< first ring region; 2 per shard, ingress first
  usize ring_region = 0; ///< stride between consecutive ring regions
  usize total = 0;
};

Layout compute_layout(int num_shards, const TransportOptions& options) {
  Layout layout;
  usize off = sizeof(common::SegmentHeader);
  layout.controls = off;
  off += static_cast<usize>(num_shards) * sizeof(ShardControl);
  layout.drops = off;
  off += common::kCacheLine;  // ingress + egress drop words, one line
  layout.pool = off;
  off += align_line(common::ShmMessagePool<ShardMessage>::required_bytes(
      options.pool_capacity));
  layout.rings = off;
  layout.ring_region = ring_region_bytes(options.ring_capacity);
  off += layout.ring_region * static_cast<usize>(num_shards) * 2;
  layout.total = off;
  return layout;
}

common::Status validate_options(int num_shards,
                                const TransportOptions& options) {
  if (num_shards <= 0) {
    return common::invalid_argument("transport needs at least one shard");
  }
  if (options.pool_capacity == 0 ||
      options.pool_capacity > kPoolCapacityMax) {
    return common::invalid_argument(
        "pool capacity must be in [1, 2^24]");
  }
  const usize cap = options.ring_capacity;
  if (cap < 2 || cap > kRingCapacityMax || (cap & (cap - 1)) != 0) {
    return common::invalid_argument(
        "ring capacity must be a power of two in [2, 2^20]");
  }
  return common::Status::ok();
}

}  // namespace

const char* shard_state_name(ShardState state) {
  switch (state) {
    case ShardState::kDown:
      return "down";
    case ShardState::kStarting:
      return "starting";
    case ShardState::kRecovering:
      return "recovering";
    case ShardState::kRunning:
      return "running";
    case ShardState::kDraining:
      return "draining";
    case ShardState::kExited:
      return "exited";
  }
  return "?";
}

usize ShardTransport::required_ring_bytes(usize capacity) {
  return IndexRing::required_bytes(capacity);
}

usize ShardTransport::required_segment_bytes(int num_shards,
                                             const TransportOptions& options) {
  return compute_layout(num_shards, options).total;
}

common::Expected<std::unique_ptr<ShardTransport>> ShardTransport::create(
    int num_shards, const TransportOptions& options) {
  if (auto st = validate_options(num_shards, options); !st) return st;
  const Layout layout = compute_layout(num_shards, options);
  auto segment =
      common::ShmSegment::create(layout.total, "rtseed-shard-transport");
  if (!segment.has_value()) return segment.status();

  std::unique_ptr<ShardTransport> transport(
      new ShardTransport(num_shards, options));
  if (auto st = transport->map_layout(std::move(*segment), /*format=*/true);
      !st) {
    return st;
  }
  return transport;
}

common::Expected<std::unique_ptr<ShardTransport>> ShardTransport::attach(
    int fd, int num_shards, const TransportOptions& options) {
  if (auto st = validate_options(num_shards, options); !st) return st;
  const Layout layout = compute_layout(num_shards, options);
  auto segment = common::ShmSegment::attach(fd, layout.total);
  if (!segment.has_value()) return segment.status();

  std::unique_ptr<ShardTransport> transport(
      new ShardTransport(num_shards, options));
  if (auto st = transport->map_layout(std::move(*segment), /*format=*/false);
      !st) {
    return st;
  }
  return transport;
}

ShardTransport::ShardTransport(int num_shards, const TransportOptions& options)
    : num_shards_(num_shards), options_(options) {
  ingress_.reserve(static_cast<usize>(num_shards));
  egress_.reserve(static_cast<usize>(num_shards));
}

common::Status ShardTransport::map_layout(common::ShmSegment segment,
                                          bool format) {
  const Layout layout = compute_layout(num_shards_, options_);
  segment_ = std::move(segment);
  auto* base = static_cast<unsigned char*>(segment_.data());

  if (format) {
    common::format_segment_header(base, layout.total, options_.epoch,
                                  kLayoutVersion);
  } else {
    // The page-rounded mapping may exceed the layout; the header records
    // what the creator formatted, which is what we compare against.
    if (auto st = common::validate_segment_header(
            base, layout.total, options_.epoch, kLayoutVersion);
        !st) {
      return st;
    }
  }
  header_ = reinterpret_cast<common::SegmentHeader*>(base);

  controls_ = reinterpret_cast<ShardControl*>(base + layout.controls);
  ingress_drops_ =
      reinterpret_cast<std::atomic<common::u64>*>(base + layout.drops);
  egress_drops_ = ingress_drops_ + 1;
  if (format) {
    for (int s = 0; s < num_shards_; ++s) new (&controls_[s]) ShardControl();
    new (ingress_drops_) std::atomic<common::u64>(0);
    new (egress_drops_) std::atomic<common::u64>(0);
  }

  if (format) {
    pool_ = common::ShmMessagePool<ShardMessage>::create(
        base + layout.pool, options_.pool_capacity);
  } else {
    pool_ = common::ShmMessagePool<ShardMessage>::attach(base + layout.pool);
    if (!pool_.valid()) {
      return common::failed_precondition(
          "transport attach: pool header mismatch");
    }
  }

  ingress_.clear();
  egress_.clear();
  for (int s = 0; s < num_shards_; ++s) {
    unsigned char* in_mem =
        base + layout.rings + layout.ring_region * static_cast<usize>(2 * s);
    unsigned char* out_mem = in_mem + layout.ring_region;
    if (format) {
      ingress_.push_back(IndexRing::create(in_mem, options_.ring_capacity));
      egress_.push_back(IndexRing::create(out_mem, options_.ring_capacity));
    } else {
      ingress_.push_back(IndexRing::attach(in_mem));
      egress_.push_back(IndexRing::attach(out_mem));
      if (!ingress_.back().valid() || !egress_.back().valid()) {
        return common::failed_precondition(
            "transport attach: ring header mismatch at shard " +
            std::to_string(s));
      }
    }
  }

  if (!format) {
    header_->attach_count.fetch_add(1, std::memory_order_relaxed);
  }
  return common::Status::ok();
}

void ShardTransport::wake_ring(IndexRing& ring) {
  rt::wake_word_shared(ring.doorbell_word(), 1);
}

bool ShardTransport::wait_ingress(int shard, Nanos abs_deadline) {
  IndexRing& ring = ingress_[static_cast<usize>(shard)];
  for (;;) {
    if (!ring.empty_approx()) return true;
    const common::u32 epoch = ring.wait_epoch();
    ring.park();
    if (!ring.empty_approx()) {
      ring.unpark();
      return true;
    }
    // EINTR/spurious returns re-check inside; only a real deadline expiry
    // returns false with the word unchanged.
    rt::wait_word_shared_until(ring.doorbell_word(), epoch, abs_deadline);
    ring.unpark();
    if (!ring.empty_approx()) return true;
    if (common::monotonic_now() >= abs_deadline) return false;
  }
}

usize ShardTransport::drain(int shard,
                            common::FunctionRef<void(ShardMessage&)> fn,
                            usize max_messages, Nanos abs_deadline) {
  usize drained = 0;
  while (drained < max_messages) {
    ShardMessage* msg = poll(shard);
    if (msg != nullptr) {
      fn(*msg);
      release(msg);
      ++drained;
      continue;
    }
    if (!wait_ingress(shard, abs_deadline)) break;
  }
  return drained;
}

void ShardTransport::register_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) return;
  ingress_drops_metric_ = registry->counter(
      "rtseed_shard_ingress_drops_total",
      "ticks dropped on a full shard ingress ring (producer never blocks)");
  egress_drops_metric_ = registry->counter(
      "rtseed_shard_egress_drops_total",
      "results dropped on a full shard egress ring");
  pool_exhausted_metric_ = registry->counter(
      "rtseed_shard_pool_exhausted_total",
      "transport message-pool exhaustion events (acquire found no cell)");
  sync_metrics();
}

void ShardTransport::sync_metrics() {
  if (ingress_drops_metric_ != nullptr) {
    ingress_drops_metric_->sync_to(ingress_drops());
  }
  if (egress_drops_metric_ != nullptr) {
    egress_drops_metric_->sync_to(egress_drops());
  }
  if (pool_exhausted_metric_ != nullptr) {
    pool_exhausted_metric_->sync_to(pool_exhausted());
  }
}

}  // namespace rtseed::shard
