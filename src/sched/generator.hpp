// Synthetic task-set generation for schedulability experiments.
//
// Utilizations come from UUniFast (Bini & Buttazzo), periods from a
// log-uniform range, and each task's WCET is split into mandatory and
// wind-up parts by a configurable ratio — mirroring how semi-fixed-priority
// papers evaluate success ratios over random task sets.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "sched/task_model.hpp"

namespace rtseed::sched {

struct GeneratorConfig {
  int num_tasks = 4;
  double total_utilization = 0.5;
  common::Nanos min_period = common::millis(10);
  common::Nanos max_period = common::seconds(1);
  /// Fraction of Cᵢ that is the wind-up part (paper evaluation: 0.5).
  double windup_fraction = 0.5;
  /// Number of parallel optional parts per task.
  int optional_parts = 4;
  /// Optional execution time as a multiple of Cᵢ (QoS headroom).
  double optional_scale = 1.0;
};

/// UUniFast: n utilizations summing to `total`, unbiased over the simplex.
std::vector<double> uunifast(int n, double total, common::Rng& rng);

/// Draws one random task set.
TaskSet generate_task_set(const GeneratorConfig& config, common::Rng& rng);

}  // namespace rtseed::sched
