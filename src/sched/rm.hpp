// Rate-monotonic priority ordering (Liu & Layland) and utilization bounds.
#pragma once

#include <vector>

#include "sched/task_model.hpp"

namespace rtseed::sched {

/// Task ids sorted by increasing period (highest RM priority first);
/// ties broken by task id for determinism.
std::vector<TaskId> rm_order(const TaskSet& tasks);

/// rank[i] = position of task i in rm_order (0 = highest priority).
std::vector<int> rm_ranks(const TaskSet& tasks);

/// Liu & Layland bound n(2^{1/n} - 1).
double liu_layland_bound(int n);

/// True when ΣUᵢ ≤ n(2^{1/n}-1) (sufficient test).
bool passes_liu_layland(const TaskSet& tasks);

/// Hyperbolic bound (Bini & Buttazzo): Π(Uᵢ + 1) ≤ 2 (sufficient, tighter).
bool passes_hyperbolic(const TaskSet& tasks);

}  // namespace rtseed::sched
