#include "sched/task_model.hpp"

namespace rtseed::sched {

double ImpreciseTaskParams::optional_utilization() const {
  if (period <= 0) return 0.0;
  Nanos total = 0;
  for (Nanos o : optional) total += o;
  return static_cast<double>(total) / static_cast<double>(period);
}

common::Status ImpreciseTaskParams::validate() const {
  if (period <= 0) {
    return common::invalid_argument(name + ": period must be positive");
  }
  if (mandatory < 0 || windup < 0) {
    return common::invalid_argument(name + ": negative part WCET");
  }
  if (mandatory + windup <= 0) {
    return common::invalid_argument(name +
                                    ": mandatory + wind-up must be positive");
  }
  const Nanos d = effective_deadline();
  if (d > period) {
    return common::invalid_argument(name + ": deadline exceeds period");
  }
  if (wcet() > d) {
    return common::invalid_argument(name + ": WCET exceeds deadline");
  }
  for (Nanos o : optional) {
    if (o < 0) return common::invalid_argument(name + ": negative optional");
  }
  return common::Status::ok();
}

double TaskSet::total_utilization() const {
  double u = 0.0;
  for (const auto& t : tasks_) u += t.utilization();
  return u;
}

common::Status TaskSet::validate() const {
  if (tasks_.empty()) return common::invalid_argument("empty task set");
  for (const auto& t : tasks_) {
    if (auto st = t.validate(); !st) return st;
  }
  return common::Status::ok();
}

}  // namespace rtseed::sched
