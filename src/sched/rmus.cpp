#include "sched/rmus.hpp"

#include <algorithm>

#include "sched/rm.hpp"

namespace rtseed::sched {

double rmus_threshold(int num_processors) {
  const double m = static_cast<double>(std::max(1, num_processors));
  return m / (3.0 * m - 2.0);
}

bool rmus_is_heavy(const ImpreciseTaskParams& task, int num_processors) {
  return task.utilization() > rmus_threshold(num_processors);
}

std::vector<TaskId> rmus_order(const TaskSet& tasks, int num_processors) {
  std::vector<TaskId> heavy;
  std::vector<TaskId> light;
  for (TaskId i = 0; i < tasks.size(); ++i) {
    (rmus_is_heavy(tasks[i], num_processors) ? heavy : light).push_back(i);
  }
  // Light tasks in RM order.
  std::stable_sort(light.begin(), light.end(), [&](TaskId a, TaskId b) {
    if (tasks[a].period != tasks[b].period) {
      return tasks[a].period < tasks[b].period;
    }
    return a < b;
  });
  heavy.insert(heavy.end(), light.begin(), light.end());
  return heavy;
}

bool rmus_schedulable(const TaskSet& tasks, int num_processors) {
  const double m = static_cast<double>(std::max(1, num_processors));
  return tasks.total_utilization() <= m * m / (3.0 * m - 2.0) + 1e-12;
}

}  // namespace rtseed::sched
