#include "sched/partition.hpp"

#include <algorithm>
#include <numeric>

namespace rtseed::sched {

const char* packing_heuristic_name(PackingHeuristic heuristic) {
  switch (heuristic) {
    case PackingHeuristic::kFirstFit:
      return "first-fit";
    case PackingHeuristic::kBestFit:
      return "best-fit";
    case PackingHeuristic::kWorstFit:
      return "worst-fit";
    case PackingHeuristic::kNextFit:
      return "next-fit";
  }
  return "?";
}

PartitionResult partition_tasks(const TaskSet& tasks, int num_processors,
                                PackingHeuristic heuristic,
                                const AdmissionTest& admits,
                                bool decreasing_utilization,
                                const std::vector<int>& processor_order) {
  PartitionResult result;
  result.processor_of.assign(static_cast<size_t>(tasks.size()), -1);
  result.processor_utilization.assign(static_cast<size_t>(num_processors),
                                      0.0);
  if (tasks.empty() || num_processors <= 0) return result;

  std::vector<TaskId> order(static_cast<size_t>(tasks.size()));
  std::iota(order.begin(), order.end(), 0);
  if (decreasing_utilization) {
    std::stable_sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
      return tasks[a].utilization() > tasks[b].utilization();
    });
  }

  // Visit processors in the caller's preference order (identity when
  // none given): visit[k] is the k-th processor the heuristics try.
  std::vector<int> visit(static_cast<size_t>(num_processors));
  std::iota(visit.begin(), visit.end(), 0);
  if (!processor_order.empty() &&
      processor_order.size() == visit.size()) {
    visit = processor_order;
  }

  std::vector<TaskSet> bins(static_cast<size_t>(num_processors));
  auto fits = [&](TaskId task, int proc) {
    TaskSet candidate = bins[static_cast<size_t>(proc)];
    candidate.add(tasks[task]);
    return admits(candidate);
  };

  int next_fit_cursor = 0;
  for (TaskId task : order) {
    int chosen = -1;
    switch (heuristic) {
      case PackingHeuristic::kFirstFit: {
        for (const int p : visit) {
          if (fits(task, p)) {
            chosen = p;
            break;
          }
        }
        break;
      }
      case PackingHeuristic::kBestFit: {
        double best_util = -1.0;
        for (const int p : visit) {
          const double u = result.processor_utilization[static_cast<size_t>(p)];
          if (u > best_util && fits(task, p)) {
            best_util = u;
            chosen = p;
          }
        }
        break;
      }
      case PackingHeuristic::kWorstFit: {
        double least_util = 2.0;
        for (const int p : visit) {
          const double u = result.processor_utilization[static_cast<size_t>(p)];
          if (u < least_util && fits(task, p)) {
            least_util = u;
            chosen = p;
          }
        }
        break;
      }
      case PackingHeuristic::kNextFit: {
        for (int tried = 0; tried < num_processors; ++tried) {
          const int k = (next_fit_cursor + tried) % num_processors;
          const int p = visit[static_cast<size_t>(k)];
          if (fits(task, p)) {
            chosen = p;
            next_fit_cursor = k;
            break;
          }
        }
        break;
      }
    }
    if (chosen < 0) {
      result.feasible = false;
      return result;
    }
    bins[static_cast<size_t>(chosen)].add(tasks[task]);
    result.processor_of[static_cast<size_t>(task)] = chosen;
    result.processor_utilization[static_cast<size_t>(chosen)] +=
        tasks[task].utilization();
  }
  result.feasible = true;
  return result;
}

}  // namespace rtseed::sched
