// Earliest-deadline-first baseline (uniprocessor, implicit deadlines).
//
// Used as the dynamic-priority comparison point in the schedulability
// ablation (the paper contrasts semi-fixed-priority scheduling with the
// dynamic-priority approach of [4], which is impractical on many-cores
// because optional slack is computed online).
#pragma once

#include "sched/task_model.hpp"

namespace rtseed::sched {

/// Exact for implicit deadlines: ΣUᵢ ≤ 1.
bool edf_schedulable(const TaskSet& tasks);

/// EDF with wind-up parts treated like RMWP's: the mandatory part runs as
/// an EDF job with deadline ODᵢ and the wind-up part as a job released at
/// ODᵢ with deadline Dᵢ.  Sufficient density-based test.
bool edf_wind_up_schedulable(const TaskSet& tasks,
                             const std::vector<Nanos>& optional_deadline);

}  // namespace rtseed::sched
