#include "sched/p_rmwp.hpp"

#include <algorithm>
#include <numeric>

#include "rt/priority.hpp"
#include "sched/rm.hpp"
#include "sched/rmus.hpp"

namespace rtseed::sched {

std::vector<int> topology_processor_order(const common::Topology* topology,
                                          int num_processors) {
  std::vector<int> order(static_cast<size_t>(std::max(0, num_processors)));
  std::iota(order.begin(), order.end(), 0);
  if (topology == nullptr || topology->num_cores() < num_processors) {
    return order;
  }
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    if (topology->node_of(a) != topology->node_of(b)) {
      return topology->node_of(a) < topology->node_of(b);
    }
    return topology->llc_of(a) < topology->llc_of(b);
  });
  return order;
}

PRmwpPlan plan_p_rmwp(const TaskSet& tasks, int num_processors,
                      const PRmwpOptions& options) {
  PRmwpPlan plan;
  plan.tasks.assign(static_cast<size_t>(tasks.size()), TaskPlan{});

  if (auto st = tasks.validate(); !st) {
    plan.diagnostics = "invalid task set: " + st.to_string();
    return plan;
  }
  if (num_processors <= 0) {
    plan.diagnostics = "num_processors must be positive";
    return plan;
  }

  // 1. Partition with per-processor RMWP admission, visiting cores in
  //    topology preference order when a shape was provided.
  const auto partition = partition_tasks(
      tasks, num_processors, options.heuristic,
      [](const TaskSet& local) { return rmwp_schedulable(local); },
      options.decreasing_utilization,
      topology_processor_order(options.topology, num_processors));
  if (!partition.feasible) {
    plan.diagnostics = "partitioning failed: no processor admits some task (" +
                       std::string(packing_heuristic_name(options.heuristic)) +
                       ")";
    return plan;
  }
  plan.processor_utilization = partition.processor_utilization;

  // 2. Per-processor ranking, priorities, and optional deadlines.
  for (int p = 0; p < num_processors; ++p) {
    // Collect this processor's tasks (in original id order).
    std::vector<TaskId> members;
    TaskSet local;
    for (TaskId i = 0; i < tasks.size(); ++i) {
      if (partition.processor_of[static_cast<size_t>(i)] == p) {
        members.push_back(i);
        local.add(tasks[i]);
      }
    }
    if (members.empty()) continue;

    const auto analysis = analyze_rmwp(local);
    if (!analysis.schedulable) {
      plan.diagnostics =
          "internal: partition admitted an unschedulable processor";
      return plan;
    }

    const auto ranks = rm_ranks(local);
    const int local_count = static_cast<int>(members.size());
    for (int k = 0; k < local_count; ++k) {
      const TaskId global_id = members[static_cast<size_t>(k)];
      auto& tp = plan.tasks[static_cast<size_t>(global_id)];
      tp.processor = p;

      int rank = ranks[static_cast<size_t>(k)];
      bool in_hpq = false;
      if (options.use_hpq_for_heavy_tasks &&
          rmus_is_heavy(tasks[global_id], num_processors)) {
        // RM-US heavy tasks get the reserved top priority; only safe when
        // unique per processor (checked below).
        in_hpq = true;
      }
      if (in_hpq) {
        tp.mandatory_priority = rt::kHpqPriority;
      } else {
        auto prio = rt::mandatory_priority_for_rank(rank, local_count);
        if (!prio) {
          plan.diagnostics = "priority mapping failed: " +
                             prio.status().to_string();
          return plan;
        }
        tp.mandatory_priority = *prio;
      }
      tp.optional_priority =
          rt::optional_priority_for(std::min(tp.mandatory_priority,
                                             rt::kMandatoryMax));
      tp.optional_deadline =
          analysis.optional_deadline[static_cast<size_t>(k)] -
          options.od_margin;
      tp.mandatory_response =
          analysis.mandatory_response[static_cast<size_t>(k)].value_or(0);
      if (options.od_margin > 0 &&
          (tp.optional_deadline <= 0 ||
           tp.mandatory_response > tp.optional_deadline)) {
        plan.diagnostics = tasks[global_id].name +
                           ": optional-deadline margin leaves no room for "
                           "the mandatory part";
        return plan;
      }
    }

    // At most one HPQ resident per processor.
    int hpq_count = 0;
    for (TaskId id : members) {
      if (plan.tasks[static_cast<size_t>(id)].mandatory_priority ==
          rt::kHpqPriority) {
        ++hpq_count;
      }
    }
    if (hpq_count > 1) {
      plan.diagnostics = "more than one HPQ (heavy) task on processor " +
                         std::to_string(p);
      return plan;
    }
  }

  plan.schedulable = true;
  return plan;
}

}  // namespace rtseed::sched
