#include "sched/rm.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace rtseed::sched {

std::vector<TaskId> rm_order(const TaskSet& tasks) {
  std::vector<TaskId> order(static_cast<size_t>(tasks.size()));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
    if (tasks[a].period != tasks[b].period) {
      return tasks[a].period < tasks[b].period;
    }
    return a < b;
  });
  return order;
}

std::vector<int> rm_ranks(const TaskSet& tasks) {
  const auto order = rm_order(tasks);
  std::vector<int> ranks(order.size());
  for (size_t pos = 0; pos < order.size(); ++pos) {
    ranks[static_cast<size_t>(order[pos])] = static_cast<int>(pos);
  }
  return ranks;
}

double liu_layland_bound(int n) {
  if (n <= 0) return 0.0;
  return static_cast<double>(n) *
         (std::pow(2.0, 1.0 / static_cast<double>(n)) - 1.0);
}

bool passes_liu_layland(const TaskSet& tasks) {
  return tasks.total_utilization() <= liu_layland_bound(tasks.size()) + 1e-12;
}

bool passes_hyperbolic(const TaskSet& tasks) {
  double product = 1.0;
  for (const auto& t : tasks) product *= t.utilization() + 1.0;
  return product <= 2.0 + 1e-12;
}

}  // namespace rtseed::sched
