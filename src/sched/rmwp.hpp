// RMWP — Rate Monotonic with Wind-up Part (Chishiro et al. 2010, the
// paper's reference [5]) on a single processor.
//
// Semi-fixed-priority scheduling executes each task's mandatory part at its
// RM priority, then (after the optional deadline ODᵢ) its wind-up part at
// the same priority.  The optional deadline is computed OFFLINE so the
// wind-up part always completes by Dᵢ; optional parts run strictly below
// every mandatory/wind-up part and therefore never affect the analysis
// (Theorems 1 and 2 of the RT-Seed paper).
//
// The RT-Seed paper uses OD₁ = D₁ − w₁ for its single-task evaluation and
// cites Theorem 2 of [5] for the general case without restating it; we
// reconstruct the general computation as the wind-up busy window
//   Lᵢ = wᵢ + Σ_{j∈hp(i)} ceil(Lᵢ/Tⱼ)·(mⱼ+wⱼ),   ODᵢ = Dᵢ − Lᵢ,
// which degenerates to the paper's formula when i has no higher-priority
// tasks (see DESIGN.md §5).
#pragma once

#include <optional>
#include <vector>

#include "sched/task_model.hpp"

namespace rtseed::sched {

struct RmwpAnalysis {
  bool schedulable = false;
  /// Absolute-offset optional deadline ODᵢ per task (relative to release);
  /// meaningful only when schedulable.
  std::vector<Nanos> optional_deadline;
  /// Worst-case response time of each mandatory part (must be ≤ ODᵢ).
  std::vector<std::optional<Nanos>> mandatory_response;
  /// Worst-case wind-up busy window Lᵢ (ODᵢ = Dᵢ − Lᵢ).
  std::vector<Nanos> windup_window;
};

/// Analyzes one processor's task set under RMWP.
RmwpAnalysis analyze_rmwp(const TaskSet& tasks);

/// Convenience: ODᵢ for every task; nullopt when unschedulable.
std::optional<std::vector<Nanos>> rmwp_optional_deadlines(
    const TaskSet& tasks);

/// A task set is RMWP-schedulable iff every mandatory part completes by its
/// optional deadline in the worst case and every ODᵢ ≥ mandatory response.
bool rmwp_schedulable(const TaskSet& tasks);

}  // namespace rtseed::sched
