// Exact response-time analysis for fixed-priority preemptive scheduling
// (Joseph & Pandya / Audsley).  Used both for plain RM admission and as the
// building block of the RMWP optional-deadline computation.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "sched/task_model.hpp"

namespace rtseed::sched {

/// Worst-case response time of a job with cost `own_cost` interfered by
/// higher-priority tasks with costs hp_cost[j] and periods hp_period[j]:
///   R = own_cost + Σⱼ ceil(R / Tⱼ) · Cⱼ   (least fixed point)
/// Returns nullopt when R would exceed `horizon` (divergence / miss).
std::optional<Nanos> fixed_point_response_time(
    Nanos own_cost, const std::vector<Nanos>& hp_cost,
    const std::vector<Nanos>& hp_period, Nanos horizon);

/// Per-task worst-case response times under RM priorities, where each
/// task's contended cost is selector(task) (e.g. mᵢ+wᵢ for plain RM).
/// result[i] = nullopt when task i misses its deadline.
std::vector<std::optional<Nanos>> rm_response_times(
    const TaskSet& tasks,
    const std::function<Nanos(const ImpreciseTaskParams&)>& selector);

/// Exact RM schedulability on one processor with Cᵢ = mᵢ + wᵢ.
bool rm_schedulable(const TaskSet& tasks);

}  // namespace rtseed::sched
