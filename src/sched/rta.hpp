// Exact response-time analysis for fixed-priority preemptive scheduling
// (Joseph & Pandya / Audsley).  Used both for plain RM admission and as the
// building block of the RMWP optional-deadline computation.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "sched/task_model.hpp"

namespace rtseed::sched {

/// Worst-case response time of a job with cost `own_cost` interfered by
/// higher-priority tasks with costs hp_cost[j] and periods hp_period[j]:
///   R = own_cost + Σⱼ ceil(R / Tⱼ) · Cⱼ   (least fixed point)
/// Returns nullopt when R would exceed `horizon` (divergence / miss).
std::optional<Nanos> fixed_point_response_time(
    Nanos own_cost, const std::vector<Nanos>& hp_cost,
    const std::vector<Nanos>& hp_period, Nanos horizon);

/// Per-task worst-case response times under RM priorities, where each
/// task's contended cost is selector(task) (e.g. mᵢ+wᵢ for plain RM).
/// result[i] = nullopt when task i misses its deadline.
std::vector<std::optional<Nanos>> rm_response_times(
    const TaskSet& tasks,
    const std::function<Nanos(const ImpreciseTaskParams&)>& selector);

/// Exact RM schedulability on one processor with Cᵢ = mᵢ + wᵢ.
bool rm_schedulable(const TaskSet& tasks);

/// Incremental, memoized response-time analysis over a priority-ordered
/// prefix of interfering tasks.
///
/// Schedulability probes during sweeps (bin-packing admission tests,
/// success-ratio grids) re-analyze near-identical task sets thousands of
/// times, and the fixed point for a task depends only on the
/// higher-priority *prefix* above it.  PrefixRta accumulates that prefix
/// as a hash chain and consults a thread-local cache keyed on
/// (prefix-hash, own_cost, horizon), so a repeated probe costs one hash
/// lookup instead of re-iterating the recurrence.  Thread-local means the
/// parallel sweep pool shares nothing and needs no locks.
class PrefixRta {
 public:
  /// Appends the next higher-priority task to the interference prefix.
  void push_hp(Nanos cost, Nanos period);

  /// Memoized least fixed point R = own_cost + Σⱼ ceil(R/Tⱼ)·Cⱼ over the
  /// current prefix; nullopt when R would exceed `horizon`.  Also the
  /// RMWP wind-up busy window (same recurrence with own_cost = wᵢ).
  std::optional<Nanos> response(Nanos own_cost, Nanos horizon);

  std::size_t prefix_size() const { return hp_cost_.size(); }

 private:
  std::vector<Nanos> hp_cost_;
  std::vector<Nanos> hp_period_;
  common::u64 prefix_hash_ = 0x5EEDC0FFEE5EEDULL;
};

struct RtaCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t entries = 0;
};

/// This thread's PrefixRta cache counters (tests / diagnostics).
RtaCacheStats rta_cache_stats();

/// Drops this thread's PrefixRta cache (tests; also bounds reuse).
void rta_cache_clear();

}  // namespace rtseed::sched
