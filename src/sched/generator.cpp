#include "sched/generator.hpp"

#include <algorithm>
#include <cmath>

namespace rtseed::sched {

std::vector<double> uunifast(int n, double total, common::Rng& rng) {
  std::vector<double> u(static_cast<size_t>(std::max(0, n)));
  if (n <= 0) return u;
  double sum = total;
  for (int i = 0; i < n - 1; ++i) {
    const double next =
        sum * std::pow(rng.uniform(), 1.0 / static_cast<double>(n - 1 - i));
    u[static_cast<size_t>(i)] = sum - next;
    sum = next;
  }
  u[static_cast<size_t>(n - 1)] = sum;
  return u;
}

TaskSet generate_task_set(const GeneratorConfig& config, common::Rng& rng) {
  TaskSet set;
  const auto utils =
      uunifast(config.num_tasks, config.total_utilization, rng);
  const double log_min = std::log(static_cast<double>(config.min_period));
  const double log_max = std::log(static_cast<double>(config.max_period));

  for (int i = 0; i < config.num_tasks; ++i) {
    ImpreciseTaskParams t;
    t.name = "tau" + std::to_string(i + 1);
    t.period = static_cast<Nanos>(
        std::exp(rng.uniform(log_min, log_max)));
    t.period = std::max<Nanos>(t.period, 2);

    const double u = std::min(utils[static_cast<size_t>(i)], 1.0);
    const auto wcet = static_cast<Nanos>(
        u * static_cast<double>(t.period));
    const Nanos c = std::max<Nanos>(wcet, 2);
    t.windup = std::max<Nanos>(
        static_cast<Nanos>(config.windup_fraction *
                           static_cast<double>(c)),
        1);
    t.windup = std::min(t.windup, c - 1);
    t.mandatory = c - t.windup;

    const auto o = static_cast<Nanos>(
        config.optional_scale * static_cast<double>(c));
    for (int k = 0; k < config.optional_parts; ++k) {
      t.optional.push_back(std::max<Nanos>(o, 1));
    }
    set.add(std::move(t));
  }
  return set;
}

}  // namespace rtseed::sched
