// P-RMWP admission pipeline — the offline analysis RT-Seed runs before it
// spawns any threads (paper §IV-B).
//
// Input:  a task set and a processor count (or topology core count).
// Output: per task — assigned processor, SCHED_FIFO priorities for the
//         mandatory and optional threads, and the optional deadline ODᵢ.
//
// Pipeline: partition (default first-fit decreasing, RMWP admission per
// processor) → per-processor RM ranking → priority-band mapping
// ([50,98] mandatory, −49 for optional) → per-processor RMWP analysis.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/topology.hpp"
#include "sched/partition.hpp"
#include "sched/rmwp.hpp"
#include "sched/task_model.hpp"

namespace rtseed::sched {

struct TaskPlan {
  int processor = -1;            ///< core the mandatory thread is pinned to
  int mandatory_priority = 0;    ///< SCHED_FIFO priority in [50, 98] (99 = HPQ)
  int optional_priority = 0;     ///< mandatory_priority − 49
  Nanos optional_deadline = 0;   ///< ODᵢ relative to release
  Nanos mandatory_response = 0;  ///< worst-case mandatory response time
};

struct PRmwpPlan {
  bool schedulable = false;
  std::vector<TaskPlan> tasks;
  std::vector<double> processor_utilization;
  std::string diagnostics;  ///< human-readable failure reason when not schedulable
};

struct PRmwpOptions {
  PackingHeuristic heuristic = PackingHeuristic::kFirstFit;
  bool decreasing_utilization = true;
  /// Reserve priority 99 (HPQ) for tasks that RM-US[M/(3M−2)] classifies as
  /// heavy (paper footnote 1).  At most one heavy task per processor.
  bool use_hpq_for_heavy_tasks = false;
  /// Derates every optional deadline by this margin (moved earlier), so
  /// the Δe overhead of ending the parallel optional parts — which the
  /// pure analysis does not know about — cannot push the wind-up start
  /// past the analyzed ODᵢ.  Callers typically take the value from
  /// sim::OverheadModel for their (np, policy, load).  A task whose
  /// mandatory response no longer fits the derated OD makes the set
  /// unschedulable (the honest answer once overheads are accounted).
  Nanos od_margin = 0;
  /// When set (and covering >= num_processors cores), the partitioning
  /// visits processors grouped by (NUMA node, LLC domain): co-located
  /// cores fill before the packing spills across a cache or memory
  /// boundary, so a task set that fits one domain never straddles two.
  /// Not owned; must outlive the call.
  const common::Topology* topology = nullptr;
};

/// The processor preference order `topology` induces over
/// [0, num_processors): stable-sorted by (NUMA node, LLC domain, core
/// index).  Identity when topology is null or covers fewer cores.
/// Exposed for tests and for shard carving.
std::vector<int> topology_processor_order(const common::Topology* topology,
                                          int num_processors);

/// Runs the full offline analysis.  `num_processors` is M.
PRmwpPlan plan_p_rmwp(const TaskSet& tasks, int num_processors,
                      const PRmwpOptions& options = {});

}  // namespace rtseed::sched
