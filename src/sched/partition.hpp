// Partitioned scheduling: bin-packing tasks onto processors (paper §IV-B:
// "partitioned scheduling assigns tasks to processors offline and they do
// not migrate among processors online").
//
// The admission test per processor is pluggable; P-RMWP uses
// rmwp_schedulable, a plain partitioned-RM baseline uses rm_schedulable.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "sched/task_model.hpp"

namespace rtseed::sched {

enum class PackingHeuristic {
  kFirstFit,
  kBestFit,   ///< fullest processor that still admits the task
  kWorstFit,  ///< emptiest processor (load balancing)
  kNextFit,
};

const char* packing_heuristic_name(PackingHeuristic heuristic);

/// Accepts a candidate processor-local task set; true = schedulable there.
using AdmissionTest = std::function<bool(const TaskSet&)>;

struct PartitionResult {
  bool feasible = false;
  /// processor_of[i] = processor index of task i (meaningful when feasible).
  std::vector<int> processor_of;
  /// Per-processor utilization after assignment.
  std::vector<double> processor_utilization;
};

/// Packs `tasks` onto `num_processors` processors.  When
/// `decreasing_utilization` is set, tasks are considered in decreasing-Uᵢ
/// order (the classic FFD/BFD/WFD variants).
///
/// `processor_order` (optional; empty = identity) is the preference order
/// in which the heuristics visit processors: first-fit fills earlier
/// entries first, best/worst-fit break utilization ties toward earlier
/// entries, next-fit's cursor walks the order cyclically.  Callers pass
/// cores sorted by (NUMA node, LLC domain) so co-located cores fill up
/// before the packing spills across a cache or memory boundary.  Must be
/// a permutation of [0, num_processors) when non-empty.
PartitionResult partition_tasks(const TaskSet& tasks, int num_processors,
                                PackingHeuristic heuristic,
                                const AdmissionTest& admits,
                                bool decreasing_utilization = true,
                                const std::vector<int>& processor_order = {});

}  // namespace rtseed::sched
