// Partitioned scheduling: bin-packing tasks onto processors (paper §IV-B:
// "partitioned scheduling assigns tasks to processors offline and they do
// not migrate among processors online").
//
// The admission test per processor is pluggable; P-RMWP uses
// rmwp_schedulable, a plain partitioned-RM baseline uses rm_schedulable.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "sched/task_model.hpp"

namespace rtseed::sched {

enum class PackingHeuristic {
  kFirstFit,
  kBestFit,   ///< fullest processor that still admits the task
  kWorstFit,  ///< emptiest processor (load balancing)
  kNextFit,
};

const char* packing_heuristic_name(PackingHeuristic heuristic);

/// Accepts a candidate processor-local task set; true = schedulable there.
using AdmissionTest = std::function<bool(const TaskSet&)>;

struct PartitionResult {
  bool feasible = false;
  /// processor_of[i] = processor index of task i (meaningful when feasible).
  std::vector<int> processor_of;
  /// Per-processor utilization after assignment.
  std::vector<double> processor_utilization;
};

/// Packs `tasks` onto `num_processors` processors.  When
/// `decreasing_utilization` is set, tasks are considered in decreasing-Uᵢ
/// order (the classic FFD/BFD/WFD variants).
PartitionResult partition_tasks(const TaskSet& tasks, int num_processors,
                                PackingHeuristic heuristic,
                                const AdmissionTest& admits,
                                bool decreasing_utilization = true);

}  // namespace rtseed::sched
