#include "sched/edf.hpp"

#include <cassert>

namespace rtseed::sched {

bool edf_schedulable(const TaskSet& tasks) {
  return tasks.total_utilization() <= 1.0 + 1e-12;
}

bool edf_wind_up_schedulable(const TaskSet& tasks,
                             const std::vector<Nanos>& optional_deadline) {
  assert(static_cast<int>(optional_deadline.size()) == tasks.size());
  // Density test over the two sub-jobs of each task: the mandatory part has
  // window [0, ODᵢ], the wind-up part [ODᵢ, Dᵢ].  Density ≤ 1 is sufficient
  // for EDF with constrained deadlines.
  double density = 0.0;
  for (TaskId i = 0; i < tasks.size(); ++i) {
    const auto& t = tasks[i];
    const Nanos od = optional_deadline[static_cast<size_t>(i)];
    const Nanos wind_window = t.effective_deadline() - od;
    if (od <= 0 || wind_window <= 0) return false;
    density += static_cast<double>(t.mandatory) / static_cast<double>(od);
    density +=
        static_cast<double>(t.windup) / static_cast<double>(wind_window);
  }
  return density <= 1.0 + 1e-12;
}

}  // namespace rtseed::sched
