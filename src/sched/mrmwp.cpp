#include "sched/mrmwp.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace rtseed::sched {

Nanos MultiPhaseTaskParams::total_mandatory() const {
  Nanos total = 0;
  for (Nanos m : mandatory) total += m;
  return total;
}

double MultiPhaseTaskParams::utilization() const {
  return period > 0 ? static_cast<double>(total_mandatory()) /
                          static_cast<double>(period)
                    : 0.0;
}

common::Status MultiPhaseTaskParams::validate() const {
  if (period <= 0) {
    return common::invalid_argument(name + ": period must be positive");
  }
  if (mandatory.empty()) {
    return common::invalid_argument(name + ": needs >= 1 mandatory segment");
  }
  for (Nanos m : mandatory) {
    if (m <= 0) {
      return common::invalid_argument(name +
                                      ": mandatory segments must be positive");
    }
  }
  if (num_phases() > num_segments() - 1) {
    return common::invalid_argument(
        name + ": at most N-1 optional phases for N segments");
  }
  for (const auto& phase : optional) {
    for (Nanos o : phase) {
      if (o < 0) {
        return common::invalid_argument(name + ": negative optional part");
      }
    }
  }
  const Nanos d = effective_deadline();
  if (d > period) {
    return common::invalid_argument(name + ": deadline exceeds period");
  }
  if (total_mandatory() > d) {
    return common::invalid_argument(name +
                                    ": mandatory work exceeds deadline");
  }
  return common::Status::ok();
}

namespace {

Nanos ceil_div(Nanos a, Nanos b) {
  assert(b > 0);
  return (a + b - 1) / b;
}

// Least fixed point of own + interference over the window; nullopt when it
// exceeds `horizon`.
std::optional<Nanos> busy_window(Nanos own, const std::vector<Nanos>& hp_cost,
                                 const std::vector<Nanos>& hp_period,
                                 Nanos horizon) {
  if (own <= 0) return Nanos{0};
  Nanos w = own;
  for (;;) {
    Nanos next = own;
    for (size_t j = 0; j < hp_cost.size(); ++j) {
      next += ceil_div(w, hp_period[j]) * hp_cost[j];
    }
    if (next > horizon) return std::nullopt;
    if (next == w) return w;
    w = next;
  }
}

}  // namespace

MrmwpAnalysis analyze_mrmwp(const std::vector<MultiPhaseTaskParams>& tasks) {
  MrmwpAnalysis out;
  const size_t n = tasks.size();
  out.optional_deadline.resize(n);
  out.tail_window.resize(n);
  out.prefix_response.resize(n);
  if (tasks.empty()) return out;
  for (const auto& t : tasks) {
    if (!t.validate()) return out;  // schedulable stays false
  }

  // RM order by period (ties by index).
  std::vector<TaskId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
    if (tasks[static_cast<size_t>(a)].period !=
        tasks[static_cast<size_t>(b)].period) {
      return tasks[static_cast<size_t>(a)].period <
             tasks[static_cast<size_t>(b)].period;
    }
    return a < b;
  });

  out.schedulable = true;
  std::vector<Nanos> hp_cost;
  std::vector<Nanos> hp_period;
  for (TaskId id : order) {
    const auto& t = tasks[static_cast<size_t>(id)];
    const auto idx = static_cast<size_t>(id);
    const Nanos d = t.effective_deadline();
    const int segments = t.num_segments();
    const int phases = std::min(t.num_phases(), segments - 1);

    out.optional_deadline[idx].assign(static_cast<size_t>(phases), 0);
    out.tail_window[idx].assign(static_cast<size_t>(phases), 0);
    out.prefix_response[idx].assign(static_cast<size_t>(segments),
                                    std::nullopt);

    // Optional deadlines from mandatory tails (phase k follows segment
    // k+1, so its tail is m^{k+2}..m^N in 1-based terms; here 0-based:
    // phase k's tail = segments k+1..N-1).
    bool feasible = true;
    for (int k = 0; k < phases; ++k) {
      Nanos tail = 0;
      for (int j = k + 1; j < segments; ++j) {
        tail += t.mandatory[static_cast<size_t>(j)];
      }
      const auto window = busy_window(tail, hp_cost, hp_period, d);
      if (!window.has_value()) {
        feasible = false;
        break;
      }
      out.tail_window[idx][static_cast<size_t>(k)] = *window;
      out.optional_deadline[idx][static_cast<size_t>(k)] = d - *window;
    }

    // Prefix response times: m¹..m^{k+1} must complete by ODᵏ (the phase
    // that follows), and the full prefix by D.
    Nanos prefix = 0;
    for (int k = 0; k < segments && feasible; ++k) {
      prefix += t.mandatory[static_cast<size_t>(k)];
      const auto response = busy_window(prefix, hp_cost, hp_period, d);
      out.prefix_response[idx][static_cast<size_t>(k)] = response;
      if (!response.has_value()) {
        feasible = false;
        break;
      }
      const Nanos bound =
          k < phases ? out.optional_deadline[idx][static_cast<size_t>(k)] : d;
      if (*response > bound || bound < 0) feasible = false;
    }

    if (!feasible) {
      out.schedulable = false;
      break;
    }
    hp_cost.push_back(t.total_mandatory());
    hp_period.push_back(t.period);
  }
  return out;
}

bool mrmwp_schedulable(const std::vector<MultiPhaseTaskParams>& tasks) {
  return analyze_mrmwp(tasks).schedulable;
}

}  // namespace rtseed::sched
