// RMWP-MP — semi-fixed-priority scheduling for the PRACTICAL imprecise
// computation model with multiple mandatory parts (the RT-Seed paper's
// future work; Chishiro & Yamasaki 2013, the paper's reference [33]).
//
// A multi-phase task interleaves N mandatory segments with N−1 optional
// phases:
//
//   m¹ → o¹ → m² → o² → ... → o^{N−1} → m^N
//   ▲    ✂OD¹      ✂OD²              ✂OD^{N−1}        ▲D
//
// Each optional phase k has its own optional deadline ODᵏ, computed
// offline so the REMAINING mandatory work m^{k+1}..m^N (plus
// higher-priority interference) always completes by the deadline:
//
//   Wᵏ  = Σ_{j>k} mʲ                                  (mandatory tail)
//   Lᵏ  = Wᵏ + Σ_{hp} ⌈Lᵏ/Tⱼ⌉·Cⱼ   (busy-window fixed point, Cⱼ = Σ mⱼ)
//   ODᵏ = D − Lᵏ
//
// and schedulability requires each mandatory PREFIX to meet its phase's
// deadline: Rᵏ = (Σ_{j≤k} mʲ) + interference ≤ ODᵏ for k < N, and
// R^N ≤ D.  With N = 2 (mandatory + wind-up) this is exactly RMWP, which
// tests assert.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/time.hpp"
#include "common/types.hpp"

namespace rtseed::sched {

using common::Nanos;
using common::TaskId;

struct MultiPhaseTaskParams {
  std::string name;
  /// N ≥ 1 mandatory segments m¹..m^N.
  std::vector<Nanos> mandatory;
  /// N−1 optional phases; optional[k] holds the parallel parts of phase
  /// k (after segment k+1).  Sizes beyond N−1 are invalid.
  std::vector<std::vector<Nanos>> optional;
  Nanos period = 0;
  Nanos deadline = 0;  ///< 0 = period

  Nanos effective_deadline() const { return deadline > 0 ? deadline : period; }
  int num_segments() const { return static_cast<int>(mandatory.size()); }
  int num_phases() const { return static_cast<int>(optional.size()); }

  /// Cᵢ = Σ mʲ (optional phases carry no utilization, as in §II-A).
  Nanos total_mandatory() const;
  double utilization() const;

  common::Status validate() const;
};

struct MrmwpAnalysis {
  bool schedulable = false;
  /// optional_deadline[i][k] = ODᵏ of task i's phase k (relative to
  /// release); size = num_phases of that task.
  std::vector<std::vector<Nanos>> optional_deadline;
  /// tail_window[i][k] = Lᵏ.
  std::vector<std::vector<Nanos>> tail_window;
  /// prefix_response[i][k] = worst-case completion of m¹..m^{k+1}
  /// (k = 0..N−1; the last entry is the whole-task response time).
  std::vector<std::vector<std::optional<Nanos>>> prefix_response;
};

/// Analyzes one processor's multi-phase task set under RM priorities.
MrmwpAnalysis analyze_mrmwp(const std::vector<MultiPhaseTaskParams>& tasks);

bool mrmwp_schedulable(const std::vector<MultiPhaseTaskParams>& tasks);

}  // namespace rtseed::sched
