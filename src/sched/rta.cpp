#include "sched/rta.hpp"

#include <cassert>
#include <unordered_map>

#include "common/rng.hpp"
#include "sched/rm.hpp"

namespace rtseed::sched {

namespace {

// Ceil division for positive operands.
Nanos ceil_div(Nanos a, Nanos b) {
  assert(b > 0);
  return (a + b - 1) / b;
}

// Thread-local PrefixRta memo.  Keyed on a 64-bit hash of
// (prefix chain, own_cost, horizon); the value encodes the fixed point
// (kDiverged = nullopt).  Bounded: cleared wholesale when it outgrows
// kMaxEntries so a long sweep cannot grow it without limit.
constexpr Nanos kDiverged = -1;
constexpr std::size_t kMaxEntries = 1 << 20;

struct RtaCache {
  std::unordered_map<common::u64, Nanos> memo;
  std::size_t hits = 0;
  std::size_t misses = 0;
};

RtaCache& cache() {
  thread_local RtaCache instance;
  return instance;
}

common::u64 mix(common::u64 h, common::u64 value) {
  common::u64 state = h ^ (value + 0x9E3779B97F4A7C15ULL);
  return common::splitmix64(state);
}

}  // namespace

std::optional<Nanos> fixed_point_response_time(
    Nanos own_cost, const std::vector<Nanos>& hp_cost,
    const std::vector<Nanos>& hp_period, Nanos horizon) {
  assert(hp_cost.size() == hp_period.size());
  if (own_cost <= 0) return Nanos{0};
  Nanos r = own_cost;
  for (;;) {
    Nanos next = own_cost;
    for (size_t j = 0; j < hp_cost.size(); ++j) {
      next += ceil_div(r, hp_period[j]) * hp_cost[j];
    }
    if (next > horizon) return std::nullopt;
    if (next == r) return r;
    r = next;
  }
}

void PrefixRta::push_hp(Nanos cost, Nanos period) {
  hp_cost_.push_back(cost);
  hp_period_.push_back(period);
  prefix_hash_ = mix(mix(prefix_hash_, static_cast<common::u64>(cost)),
                     static_cast<common::u64>(period));
}

std::optional<Nanos> PrefixRta::response(Nanos own_cost, Nanos horizon) {
  const common::u64 key =
      mix(mix(prefix_hash_, static_cast<common::u64>(own_cost)),
          static_cast<common::u64>(horizon));
  auto& c = cache();
  if (const auto hit = c.memo.find(key); hit != c.memo.end()) {
    ++c.hits;
    if (hit->second == kDiverged) return std::nullopt;
    return hit->second;
  }
  ++c.misses;
  const auto r =
      fixed_point_response_time(own_cost, hp_cost_, hp_period_, horizon);
  if (c.memo.size() >= kMaxEntries) c.memo.clear();
  c.memo.emplace(key, r.has_value() ? *r : kDiverged);
  return r;
}

RtaCacheStats rta_cache_stats() {
  const auto& c = cache();
  return {c.hits, c.misses, c.memo.size()};
}

void rta_cache_clear() {
  auto& c = cache();
  c.memo.clear();
  c.hits = 0;
  c.misses = 0;
}

std::vector<std::optional<Nanos>> rm_response_times(
    const TaskSet& tasks,
    const std::function<Nanos(const ImpreciseTaskParams&)>& selector) {
  const auto order = rm_order(tasks);
  std::vector<std::optional<Nanos>> result(
      static_cast<size_t>(tasks.size()));

  PrefixRta rta;
  for (TaskId id : order) {
    const auto& t = tasks[id];
    result[static_cast<size_t>(id)] =
        rta.response(selector(t), t.effective_deadline());
    rta.push_hp(selector(t), t.period);
  }
  return result;
}

bool rm_schedulable(const TaskSet& tasks) {
  const auto responses = rm_response_times(
      tasks, [](const ImpreciseTaskParams& t) { return t.wcet(); });
  for (const auto& r : responses) {
    if (!r.has_value()) return false;
  }
  return true;
}

}  // namespace rtseed::sched
