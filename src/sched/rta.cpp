#include "sched/rta.hpp"

#include <cassert>

#include "sched/rm.hpp"

namespace rtseed::sched {

namespace {

// Ceil division for positive operands.
Nanos ceil_div(Nanos a, Nanos b) {
  assert(b > 0);
  return (a + b - 1) / b;
}

}  // namespace

std::optional<Nanos> fixed_point_response_time(
    Nanos own_cost, const std::vector<Nanos>& hp_cost,
    const std::vector<Nanos>& hp_period, Nanos horizon) {
  assert(hp_cost.size() == hp_period.size());
  if (own_cost <= 0) return Nanos{0};
  Nanos r = own_cost;
  for (;;) {
    Nanos next = own_cost;
    for (size_t j = 0; j < hp_cost.size(); ++j) {
      next += ceil_div(r, hp_period[j]) * hp_cost[j];
    }
    if (next > horizon) return std::nullopt;
    if (next == r) return r;
    r = next;
  }
}

std::vector<std::optional<Nanos>> rm_response_times(
    const TaskSet& tasks,
    const std::function<Nanos(const ImpreciseTaskParams&)>& selector) {
  const auto order = rm_order(tasks);
  std::vector<std::optional<Nanos>> result(
      static_cast<size_t>(tasks.size()));

  std::vector<Nanos> hp_cost;
  std::vector<Nanos> hp_period;
  for (TaskId id : order) {
    const auto& t = tasks[id];
    result[static_cast<size_t>(id)] = fixed_point_response_time(
        selector(t), hp_cost, hp_period, t.effective_deadline());
    hp_cost.push_back(selector(t));
    hp_period.push_back(t.period);
  }
  return result;
}

bool rm_schedulable(const TaskSet& tasks) {
  const auto responses = rm_response_times(
      tasks, [](const ImpreciseTaskParams& t) { return t.wcet(); });
  for (const auto& r : responses) {
    if (!r.has_value()) return false;
  }
  return true;
}

}  // namespace rtseed::sched
