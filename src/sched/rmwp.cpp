#include "sched/rmwp.hpp"

#include <cassert>

#include "sched/rm.hpp"
#include "sched/rta.hpp"

namespace rtseed::sched {

// The wind-up busy window — the wind-up part (cost w) plus interference
// from higher-priority mandatory+wind-up parts over the window — is the
// same least-fixed-point recurrence as the response time, so both go
// through the memoized PrefixRta (sweeps probe near-identical prefixes
// thousands of times during bin packing).

RmwpAnalysis analyze_rmwp(const TaskSet& tasks) {
  RmwpAnalysis out;
  const auto n = static_cast<size_t>(tasks.size());
  out.optional_deadline.assign(n, 0);
  out.mandatory_response.assign(n, std::nullopt);
  out.windup_window.assign(n, 0);
  if (tasks.empty()) return out;

  const auto order = rm_order(tasks);
  out.schedulable = true;

  PrefixRta rta;
  for (TaskId id : order) {
    const auto& t = tasks[id];
    const auto idx = static_cast<size_t>(id);
    const Nanos d = t.effective_deadline();

    // Wind-up busy window -> optional deadline.
    const auto lw = rta.response(t.windup, d);
    if (!lw.has_value()) {
      out.schedulable = false;
      break;
    }
    out.windup_window[idx] = *lw;
    out.optional_deadline[idx] = d - *lw;

    // Mandatory part must finish by OD in the worst case.  Interference on
    // the mandatory part comes from higher-priority mandatory AND wind-up
    // executions (both live in RTQ above this task).
    const auto rm = rta.response(t.mandatory, d);
    out.mandatory_response[idx] = rm;
    if (!rm.has_value() || *rm > out.optional_deadline[idx]) {
      out.schedulable = false;
      break;
    }

    rta.push_hp(t.wcet(), t.period);
  }
  return out;
}

std::optional<std::vector<Nanos>> rmwp_optional_deadlines(
    const TaskSet& tasks) {
  auto analysis = analyze_rmwp(tasks);
  if (!analysis.schedulable) return std::nullopt;
  return std::move(analysis.optional_deadline);
}

bool rmwp_schedulable(const TaskSet& tasks) {
  return analyze_rmwp(tasks).schedulable;
}

}  // namespace rtseed::sched
