#include "sched/rmwp.hpp"

#include <cassert>

#include "sched/rm.hpp"
#include "sched/rta.hpp"

namespace rtseed::sched {

namespace {

Nanos ceil_div(Nanos a, Nanos b) {
  assert(b > 0);
  return (a + b - 1) / b;
}

// Wind-up busy window: the wind-up part (cost w) plus interference from
// higher-priority mandatory+wind-up parts over the window.  Bounded by the
// task's deadline; returns nullopt on divergence.
std::optional<Nanos> windup_window(Nanos w, const std::vector<Nanos>& hp_cost,
                                   const std::vector<Nanos>& hp_period,
                                   Nanos horizon) {
  Nanos l = w;
  for (;;) {
    Nanos next = w;
    for (size_t j = 0; j < hp_cost.size(); ++j) {
      next += ceil_div(l, hp_period[j]) * hp_cost[j];
    }
    if (next > horizon) return std::nullopt;
    if (next == l) return l;
    l = next;
  }
}

}  // namespace

RmwpAnalysis analyze_rmwp(const TaskSet& tasks) {
  RmwpAnalysis out;
  const auto n = static_cast<size_t>(tasks.size());
  out.optional_deadline.assign(n, 0);
  out.mandatory_response.assign(n, std::nullopt);
  out.windup_window.assign(n, 0);
  if (tasks.empty()) return out;

  const auto order = rm_order(tasks);
  out.schedulable = true;

  std::vector<Nanos> hp_cost;
  std::vector<Nanos> hp_period;
  for (TaskId id : order) {
    const auto& t = tasks[id];
    const auto idx = static_cast<size_t>(id);
    const Nanos d = t.effective_deadline();

    // Wind-up busy window -> optional deadline.
    const auto lw = windup_window(t.windup, hp_cost, hp_period, d);
    if (!lw.has_value()) {
      out.schedulable = false;
      break;
    }
    out.windup_window[idx] = *lw;
    out.optional_deadline[idx] = d - *lw;

    // Mandatory part must finish by OD in the worst case.  Interference on
    // the mandatory part comes from higher-priority mandatory AND wind-up
    // executions (both live in RTQ above this task).
    const auto rm =
        fixed_point_response_time(t.mandatory, hp_cost, hp_period, d);
    out.mandatory_response[idx] = rm;
    if (!rm.has_value() || *rm > out.optional_deadline[idx]) {
      out.schedulable = false;
      break;
    }

    hp_cost.push_back(t.wcet());
    hp_period.push_back(t.period);
  }
  return out;
}

std::optional<std::vector<Nanos>> rmwp_optional_deadlines(
    const TaskSet& tasks) {
  auto analysis = analyze_rmwp(tasks);
  if (!analysis.schedulable) return std::nullopt;
  return std::move(analysis.optional_deadline);
}

bool rmwp_schedulable(const TaskSet& tasks) {
  return analyze_rmwp(tasks).schedulable;
}

}  // namespace rtseed::sched
