#include "sched/sharded.hpp"

#include <algorithm>
#include <numeric>

namespace rtseed::sched {

namespace {

PRmwpOptions shard_options(const ShardedOptions& options, size_t shard) {
  PRmwpOptions opt = options.per_shard;
  if (shard < options.shard_topologies.size() &&
      options.shard_topologies[shard] != nullptr) {
    opt.topology = options.shard_topologies[shard];
  }
  return opt;
}

}  // namespace

ShardedPlan plan_sharded(const std::vector<SymbolTaskSet>& groups,
                         const std::vector<int>& shard_cores,
                         const ShardedOptions& options) {
  ShardedPlan plan;
  const int num_shards = static_cast<int>(shard_cores.size());
  if (num_shards <= 0) {
    plan.diagnostics = "no shards";
    return plan;
  }
  for (const int cores : shard_cores) {
    if (cores <= 0) {
      plan.diagnostics = "every shard needs at least one core";
      return plan;
    }
  }

  plan.groups.assign(groups.size(), GroupPlacement{});
  plan.shard_tasks.assign(static_cast<size_t>(num_shards), TaskSet{});
  plan.shards.assign(static_cast<size_t>(num_shards), PRmwpPlan{});
  plan.shard_utilization.assign(static_cast<size_t>(num_shards), 0.0);

  auto admits = [&](int shard, const SymbolTaskSet& group,
                    PRmwpPlan* out) {
    TaskSet candidate = plan.shard_tasks[static_cast<size_t>(shard)];
    for (const auto& t : group.tasks) candidate.add(t);
    *out = plan_p_rmwp(candidate, shard_cores[static_cast<size_t>(shard)],
                       shard_options(options, static_cast<size_t>(shard)));
    return out->schedulable;
  };

  bool all_placed = true;
  for (size_t g = 0; g < groups.size(); ++g) {
    const auto& group = groups[g];
    auto& placement = plan.groups[g];
    placement.home = home_shard(group.symbol, num_shards);
    if (group.tasks.empty()) {
      // A symbol with no tasks still routes to its home shard.
      placement.shard = placement.home;
      continue;
    }

    // Home first; then the spill candidates, least-utilized first
    // (restricted migration: the whole group moves, once, offline).
    std::vector<int> order;
    order.push_back(placement.home);
    std::vector<int> rest;
    for (int s = 0; s < num_shards; ++s) {
      if (s != placement.home) rest.push_back(s);
    }
    std::stable_sort(rest.begin(), rest.end(), [&](int a, int b) {
      return plan.shard_utilization[static_cast<size_t>(a)] <
             plan.shard_utilization[static_cast<size_t>(b)];
    });
    order.insert(order.end(), rest.begin(), rest.end());

    PRmwpPlan admitted;
    for (const int s : order) {
      if (!admits(s, group, &admitted)) continue;
      placement.shard = s;
      placement.spilled = (s != placement.home);
      if (placement.spilled) ++plan.spill_count;
      auto& shard_set = plan.shard_tasks[static_cast<size_t>(s)];
      for (const auto& t : group.tasks) {
        placement.local_task_ids.push_back(shard_set.size());
        shard_set.add(t);
      }
      plan.shards[static_cast<size_t>(s)] = std::move(admitted);
      plan.shard_utilization[static_cast<size_t>(s)] =
          shard_set.total_utilization() /
          shard_cores[static_cast<size_t>(s)];
      break;
    }
    if (placement.shard < 0) {
      all_placed = false;
      if (!plan.diagnostics.empty()) plan.diagnostics += "; ";
      plan.diagnostics += "symbol " + std::to_string(group.symbol) +
                          ": no shard admits its task group (home " +
                          std::to_string(placement.home) +
                          (admitted.diagnostics.empty()
                               ? ")"
                               : ", last: " + admitted.diagnostics + ")");
    }
  }

  // Empty shards hold an empty-but-schedulable plan so callers can index
  // uniformly.
  for (int s = 0; s < num_shards; ++s) {
    if (plan.shard_tasks[static_cast<size_t>(s)].empty()) {
      plan.shards[static_cast<size_t>(s)].schedulable = true;
      plan.shards[static_cast<size_t>(s)].processor_utilization.assign(
          static_cast<size_t>(shard_cores[static_cast<size_t>(s)]), 0.0);
    }
  }

  plan.feasible = all_placed;
  return plan;
}

}  // namespace rtseed::sched
