#include "sched/sharded.hpp"

#include <algorithm>
#include <numeric>

namespace rtseed::sched {

namespace {

PRmwpOptions shard_options(const ShardedOptions& options, size_t shard) {
  PRmwpOptions opt = options.per_shard;
  if (shard < options.shard_topologies.size() &&
      options.shard_topologies[shard] != nullptr) {
    opt.topology = options.shard_topologies[shard];
  }
  return opt;
}

}  // namespace

ShardedPlan plan_sharded(const std::vector<SymbolTaskSet>& groups,
                         const std::vector<int>& shard_cores,
                         const ShardedOptions& options) {
  ShardedPlan plan;
  const int num_shards = static_cast<int>(shard_cores.size());
  if (num_shards <= 0) {
    plan.diagnostics = "no shards";
    return plan;
  }
  for (const int cores : shard_cores) {
    if (cores <= 0) {
      plan.diagnostics = "every shard needs at least one core";
      return plan;
    }
  }

  plan.groups.assign(groups.size(), GroupPlacement{});
  plan.shard_tasks.assign(static_cast<size_t>(num_shards), TaskSet{});
  plan.shards.assign(static_cast<size_t>(num_shards), PRmwpPlan{});
  plan.shard_utilization.assign(static_cast<size_t>(num_shards), 0.0);

  auto admits = [&](int shard, const SymbolTaskSet& group,
                    PRmwpPlan* out) {
    TaskSet candidate = plan.shard_tasks[static_cast<size_t>(shard)];
    for (const auto& t : group.tasks) candidate.add(t);
    *out = plan_p_rmwp(candidate, shard_cores[static_cast<size_t>(shard)],
                       shard_options(options, static_cast<size_t>(shard)));
    return out->schedulable;
  };

  bool all_placed = true;
  for (size_t g = 0; g < groups.size(); ++g) {
    const auto& group = groups[g];
    auto& placement = plan.groups[g];
    placement.home = home_shard(group.symbol, num_shards);
    if (group.tasks.empty()) {
      // A symbol with no tasks still routes to its home shard.
      placement.shard = placement.home;
      continue;
    }

    // Home first; then the spill candidates, least-utilized first
    // (restricted migration: the whole group moves, once, offline).
    std::vector<int> order;
    order.push_back(placement.home);
    std::vector<int> rest;
    for (int s = 0; s < num_shards; ++s) {
      if (s != placement.home) rest.push_back(s);
    }
    std::stable_sort(rest.begin(), rest.end(), [&](int a, int b) {
      return plan.shard_utilization[static_cast<size_t>(a)] <
             plan.shard_utilization[static_cast<size_t>(b)];
    });
    order.insert(order.end(), rest.begin(), rest.end());

    PRmwpPlan admitted;
    for (const int s : order) {
      if (!admits(s, group, &admitted)) continue;
      placement.shard = s;
      placement.spilled = (s != placement.home);
      if (placement.spilled) ++plan.spill_count;
      auto& shard_set = plan.shard_tasks[static_cast<size_t>(s)];
      for (const auto& t : group.tasks) {
        placement.local_task_ids.push_back(shard_set.size());
        shard_set.add(t);
      }
      plan.shards[static_cast<size_t>(s)] = std::move(admitted);
      plan.shard_utilization[static_cast<size_t>(s)] =
          shard_set.total_utilization() /
          shard_cores[static_cast<size_t>(s)];
      break;
    }
    if (placement.shard < 0) {
      all_placed = false;
      if (!plan.diagnostics.empty()) plan.diagnostics += "; ";
      plan.diagnostics += "symbol " + std::to_string(group.symbol) +
                          ": no shard admits its task group (home " +
                          std::to_string(placement.home) +
                          (admitted.diagnostics.empty()
                               ? ")"
                               : ", last: " + admitted.diagnostics + ")");
    }
  }

  // Empty shards hold an empty-but-schedulable plan so callers can index
  // uniformly.
  for (int s = 0; s < num_shards; ++s) {
    if (plan.shard_tasks[static_cast<size_t>(s)].empty()) {
      plan.shards[static_cast<size_t>(s)].schedulable = true;
      plan.shards[static_cast<size_t>(s)].processor_utilization.assign(
          static_cast<size_t>(shard_cores[static_cast<size_t>(s)]), 0.0);
    }
  }

  plan.feasible = all_placed;
  return plan;
}

FailoverPlan plan_failover(const std::vector<SymbolTaskSet>& groups,
                           const ShardedPlan& current, int dead_shard,
                           const std::vector<int>& shard_cores,
                           const ShardedOptions& options) {
  FailoverPlan failover;
  const int num_shards = static_cast<int>(shard_cores.size());
  if (dead_shard < 0 || dead_shard >= num_shards) {
    failover.diagnostics = "dead shard out of range";
    return failover;
  }
  if (num_shards < 2) {
    failover.diagnostics = "no surviving shard to migrate to";
    return failover;
  }
  if (current.groups.size() != groups.size()) {
    failover.diagnostics = "current plan does not cover these groups";
    return failover;
  }

  // Start from the current placement with the dead shard emptied.
  ShardedPlan& plan = failover.plan;
  plan = current;
  plan.shard_tasks[static_cast<size_t>(dead_shard)] = TaskSet{};
  plan.shards[static_cast<size_t>(dead_shard)] = PRmwpPlan{};
  plan.shards[static_cast<size_t>(dead_shard)].schedulable = true;
  plan.shards[static_cast<size_t>(dead_shard)].processor_utilization.assign(
      static_cast<size_t>(shard_cores[static_cast<size_t>(dead_shard)]), 0.0);
  plan.shard_utilization[static_cast<size_t>(dead_shard)] = 0.0;

  bool all_placed = true;
  for (size_t g = 0; g < groups.size(); ++g) {
    if (current.groups[g].shard != dead_shard) continue;
    const auto& group = groups[g];
    auto& placement = plan.groups[g];
    placement.shard = -1;
    placement.local_task_ids.clear();
    if (group.tasks.empty()) {
      // Task-less symbols just re-route; hash order picks the survivor.
      placement.shard = static_cast<int>(
          symbol_hash(group.symbol) % static_cast<common::u32>(num_shards));
      if (placement.shard == dead_shard) {
        placement.shard = (placement.shard + 1) % num_shards;
      }
      placement.spilled = placement.shard != placement.home;
      failover.moved_groups.push_back(g);
      continue;
    }

    // Survivors, least-utilized first (deterministic tie-break on index).
    std::vector<int> order;
    for (int s = 0; s < num_shards; ++s) {
      if (s != dead_shard) order.push_back(s);
    }
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      return plan.shard_utilization[static_cast<size_t>(a)] <
             plan.shard_utilization[static_cast<size_t>(b)];
    });

    PRmwpPlan admitted;
    for (const int s : order) {
      TaskSet candidate = plan.shard_tasks[static_cast<size_t>(s)];
      for (const auto& t : group.tasks) candidate.add(t);
      admitted = plan_p_rmwp(candidate, shard_cores[static_cast<size_t>(s)],
                             shard_options(options, static_cast<size_t>(s)));
      if (!admitted.schedulable) continue;
      placement.shard = s;
      placement.spilled = (s != placement.home);
      auto& shard_set = plan.shard_tasks[static_cast<size_t>(s)];
      for (const auto& t : group.tasks) {
        placement.local_task_ids.push_back(shard_set.size());
        shard_set.add(t);
      }
      plan.shards[static_cast<size_t>(s)] = std::move(admitted);
      plan.shard_utilization[static_cast<size_t>(s)] =
          shard_set.total_utilization() /
          shard_cores[static_cast<size_t>(s)];
      failover.moved_groups.push_back(g);
      break;
    }
    if (placement.shard < 0) {
      all_placed = false;
      if (!failover.diagnostics.empty()) failover.diagnostics += "; ";
      failover.diagnostics +=
          "symbol " + std::to_string(group.symbol) +
          ": no surviving shard admits its task group";
    }
  }

  plan.spill_count = 0;
  for (const auto& placement : plan.groups) {
    if (placement.spilled) ++plan.spill_count;
  }
  plan.feasible = all_placed;
  failover.feasible = all_placed;
  return failover;
}

}  // namespace rtseed::sched
