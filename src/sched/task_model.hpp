// Task model of the parallel-extended imprecise computation model (§II-A).
//
// A periodic task τi is described by
//   * mandatory WCET  mᵢ            (real-time part, runs first)
//   * optional execution times oᵢ,ₖ (npᵢ parallel, non-real-time parts)
//   * wind-up  WCET  wᵢ            (second mandatory part)
//   * period Tᵢ and relative deadline Dᵢ (the paper fixes Dᵢ = Tᵢ)
// WCET Cᵢ = mᵢ + wᵢ; optional parts are excluded from Uᵢ because their
// completion is not required for schedulability.
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/time.hpp"
#include "common/types.hpp"

namespace rtseed::sched {

using common::Nanos;
using common::TaskId;

struct ImpreciseTaskParams {
  std::string name;
  Nanos mandatory = 0;              ///< mᵢ
  Nanos windup = 0;                 ///< wᵢ
  Nanos period = 0;                 ///< Tᵢ
  Nanos deadline = 0;               ///< Dᵢ; 0 means "= period"
  std::vector<Nanos> optional;      ///< oᵢ,ₖ for k = 1..npᵢ

  Nanos effective_deadline() const { return deadline > 0 ? deadline : period; }
  Nanos wcet() const { return mandatory + windup; }  ///< Cᵢ = mᵢ + wᵢ
  int num_optional() const { return static_cast<int>(optional.size()); }

  /// Uᵢ = Cᵢ / Tᵢ.
  double utilization() const {
    return period > 0 ? static_cast<double>(wcet()) /
                            static_cast<double>(period)
                      : 0.0;
  }

  /// Uᵢᵒ = Σₖ oᵢ,ₖ / Tᵢ (QoS-side utilization; not part of Uᵢ).
  double optional_utilization() const;

  /// Validates the invariants of the model (positive period, mᵢ+wᵢ ≤ Dᵢ ≤ Tᵢ,
  /// non-negative parts).
  common::Status validate() const;
};

class TaskSet {
 public:
  TaskSet() = default;
  explicit TaskSet(std::vector<ImpreciseTaskParams> tasks)
      : tasks_(std::move(tasks)) {}

  void add(ImpreciseTaskParams task) { tasks_.push_back(std::move(task)); }

  int size() const { return static_cast<int>(tasks_.size()); }
  bool empty() const { return tasks_.empty(); }
  const ImpreciseTaskParams& operator[](TaskId i) const {
    return tasks_[static_cast<size_t>(i)];
  }
  ImpreciseTaskParams& operator[](TaskId i) {
    return tasks_[static_cast<size_t>(i)];
  }

  auto begin() const { return tasks_.begin(); }
  auto end() const { return tasks_.end(); }

  /// ΣUᵢ (uniprocessor utilization; divide by M for system utilization).
  double total_utilization() const;

  /// Validates every task.
  common::Status validate() const;

 private:
  std::vector<ImpreciseTaskParams> tasks_;
};

}  // namespace rtseed::sched
