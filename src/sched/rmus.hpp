// RM-US[M/(3M−2)] — static-priority global multiprocessor scheduling with
// utilization separation (Andersson, Baruah & Jonsson 2001).
//
// The RT-Seed paper's footnote 1 motivates the HPQ (priority 99): RM-US
// assigns the *highest* priority to any task whose utilization exceeds
// M/(3M−2); the remaining ("light") tasks are ordered rate-monotonically.
#pragma once

#include <vector>

#include "sched/task_model.hpp"

namespace rtseed::sched {

/// The separation threshold M/(3M−2).
double rmus_threshold(int num_processors);

/// True when Uᵢ > M/(3M−2), i.e. the task belongs in the HPQ.
bool rmus_is_heavy(const ImpreciseTaskParams& task, int num_processors);

/// Priority order under RM-US: heavy tasks first (by id), then light tasks
/// in RM order.  Index 0 = highest priority.
std::vector<TaskId> rmus_order(const TaskSet& tasks, int num_processors);

/// Sufficient schedulability test: RM-US[M/(3M−2)] schedules any task set
/// with total utilization ≤ M²/(3M−2).
bool rmus_schedulable(const TaskSet& tasks, int num_processors);

}  // namespace rtseed::sched
