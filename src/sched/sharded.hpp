// Sharded P-RMWP admission — the offline half of src/shard (DESIGN.md
// §12).
//
// A sharded deployment splits the machine into S pinned shard groups,
// each running its own Runtime over a subset topology.  Task sets arrive
// grouped by trading symbol; a group is indivisible (its tasks share
// per-symbol state, so they must land on one shard together).  Placement
// follows the restricted-migration discipline:
//
//   1. the HOME shard is hash(symbol) % S — the same stateless rule the
//      online feed router uses, so a tick reaches its symbol's shard
//      without consulting any table;
//   2. a group whose home shard's P-RMWP admission rejects it SPILLS to
//      the least-utilized other shard that admits it (placement moves
//      wholesale at analysis time; jobs never migrate at run time);
//   3. a group no shard admits makes the plan infeasible — the honest
//      answer, not silent degradation.
//
// Spilled groups pay the cross-shard hop (the router forwards their
// ticks through the transport), which sim::ShardedTopology models as
// added release latency.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "sched/p_rmwp.hpp"
#include "sched/task_model.hpp"

namespace rtseed::sched {

/// One symbol's indivisible task group.
struct SymbolTaskSet {
  common::u32 symbol = 0;
  TaskSet tasks;
};

/// Stateless symbol -> shard rule (murmur3 finalizer: adjacent symbol
/// ids land on unrelated shards).  The feed router and the planner must
/// agree on this, so it lives here and nowhere else.
inline common::u32 symbol_hash(common::u32 symbol) {
  common::u32 h = symbol;
  h ^= h >> 16;
  h *= 0x85ebca6bu;
  h ^= h >> 13;
  h *= 0xc2b2ae35u;
  h ^= h >> 16;
  return h;
}

inline int home_shard(common::u32 symbol, int num_shards) {
  return static_cast<int>(symbol_hash(symbol) %
                          static_cast<common::u32>(num_shards));
}

struct GroupPlacement {
  int home = -1;      ///< hash(symbol) % S
  int shard = -1;     ///< where the group landed; -1 = rejected everywhere
  bool spilled = false;  ///< landed off-home (pays the cross-shard hop)
  /// The group's task indices within its shard's task set / plan.
  std::vector<TaskId> local_task_ids;
};

struct ShardedPlan {
  bool feasible = false;  ///< every group admitted by some shard
  std::vector<GroupPlacement> groups;  ///< parallel to the input groups
  /// Per shard: the union task set it plans, and its P-RMWP plan over it
  /// (an empty shard gets an empty, schedulable plan).
  std::vector<TaskSet> shard_tasks;
  std::vector<PRmwpPlan> shards;
  std::vector<double> shard_utilization;  ///< ΣUᵢ / cores, per shard
  int spill_count = 0;
  std::string diagnostics;
};

struct ShardedOptions {
  /// Base admission options applied inside every shard.  The per-shard
  /// topology (when given below) overrides `per_shard.topology`.
  PRmwpOptions per_shard;
  /// Optional per-shard subset topologies (parallel to shard_cores);
  /// pointers not owned, must outlive the call.
  std::vector<const common::Topology*> shard_topologies;
};

/// Runs sharded admission.  `shard_cores[s]` is the core count of shard
/// s; groups are placed in the order given (deterministic).
ShardedPlan plan_sharded(const std::vector<SymbolTaskSet>& groups,
                         const std::vector<int>& shard_cores,
                         const ShardedOptions& options = {});

/// Online re-sharding after shard `dead_shard` fails (DESIGN.md §14.4).
struct FailoverPlan {
  bool feasible = false;  ///< every displaced group found a survivor
  /// Indices (into the input `groups`) of the groups that migrated off
  /// the dead shard, in placement order.
  std::vector<common::usize> moved_groups;
  /// The complete post-failover placement: the dead shard is empty, the
  /// surviving shards' existing placements are UNCHANGED (restricted
  /// migration — only the dead shard's groups move).
  ShardedPlan plan;
  std::string diagnostics;
};

/// Re-places the dead shard's groups onto the least-utilized surviving
/// shards that admit them (the same admission rule as plan_sharded).
/// Survivor placements never change: a failover migrates exactly the
/// displaced groups, at a period boundary, wholesale.  `current` must be
/// a feasible plan over the same `groups` and `shard_cores`.
FailoverPlan plan_failover(const std::vector<SymbolTaskSet>& groups,
                           const ShardedPlan& current, int dead_shard,
                           const std::vector<int>& shard_cores,
                           const ShardedOptions& options = {});

}  // namespace rtseed::sched
