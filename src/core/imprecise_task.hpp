// The running form of a parallel-extended imprecise task (paper §IV-C,
// Fig. 6): one mandatory thread executing the mandatory and wind-up parts
// at a SCHED_FIFO priority in the RTQ band, plus npᵢ parallel optional
// threads 49 priority levels below, each pinned to the hardware thread its
// assignment policy selected.
//
// Per-job protocol (exactly the paper's sequence):
//   mandatory thread                     optional thread k
//   ---------------------------------   ------------------------------
//   clock_nanosleep until release
//   execMandatory()
//   cond_signal each optional  ──────▶  cond_wait returns
//   cond_wait (completion)              sigsetjmp / arm OD timer
//                                       execOptional()   (until OD)
//                                       [timer → siglongjmp]
//             ◀──────────────────────   last part signals completion
//   execWindup()
//   clock_nanosleep until next release
//
// If the mandatory part has not completed by the optional deadline, the
// optional parts are DISCARDED (never signalled) and the wind-up part runs
// immediately — Fig. 1 / §II-B.  The optional-thread machinery lives in
// OptionalPool (shared with the multi-phase task of the practical
// imprecise computation model).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/spsc_ring.hpp"
#include "core/assignment.hpp"
#include "core/job_record.hpp"
#include "core/optional_pool.hpp"
#include "core/task_config.hpp"
#include "fault/breaker.hpp"
#include "fault/watchdog.hpp"
#include "obs/telemetry.hpp"
#include "rt/thread.hpp"
#include "rt/topology.hpp"

namespace rtseed::core {

/// Everything the offline P-RMWP analysis decided for this task.
struct TaskPlacement {
  int processor = 0;                ///< core of the mandatory thread
  int mandatory_priority = 0;       ///< SCHED_FIFO [50,98] (99 = HPQ); 0 = best-effort
  int optional_priority = 0;        ///< mandatory − 49; 0 = best-effort
  Nanos optional_deadline_offset = 0;  ///< ODᵢ relative to release
};

struct TaskRuntimeOptions {
  TerminationStrategy termination = TerminationStrategy::kSigjmp;
  AssignmentPolicy policy = AssignmentPolicy::kOneByOne;
  /// Extra time the mandatory thread waits past OD for the last optional
  /// part's completion signal before forcing stop tokens.
  Nanos completion_margin = common::millis(100);
  /// First release is delayed by this much after start() (synchronous
  /// release of all tasks).
  Nanos initial_offset = common::millis(10);
  /// Mandatory↔optional handoff mechanism (see core::WakeBackend).
  WakeBackend wake_backend = WakeBackend::kAuto;
  /// Per-job budget watchdog over the mandatory and wind-up parts
  /// (disabled by default; see fault::WatchdogConfig).
  fault::WatchdogConfig watchdog;
  /// Overload circuit breaker shedding optional parallelism under
  /// sustained deadline misses (disabled by default).
  fault::BreakerConfig breaker;
  /// Repair the blocked-signal defect of kTryCatch terminations between
  /// jobs (Table I row 3).  ON by default; OFF reproduces the published
  /// broken behavior.
  bool repair_signal_mask = true;
};

/// Observer for queue mirroring / tracing; called on the mandatory thread.
using TransitionObserver =
    std::function<void(common::TaskId, TaskTransition, Nanos now)>;

class ImpreciseTask {
 public:
  /// `topology` must outlive the task.
  ImpreciseTask(common::TaskId id, TaskConfig config, TaskPlacement placement,
                TaskRuntimeOptions options, const rt::Topology& topology);

  ImpreciseTask(const ImpreciseTask&) = delete;
  ImpreciseTask& operator=(const ImpreciseTask&) = delete;

  /// Joins all threads (a destructor never leaks a running thread).
  ~ImpreciseTask();

  /// Spawns the optional threads and the mandatory thread and begins
  /// periodic execution.  FAILED_PRECONDITION when already started.
  common::Status start();

  /// Asks the task to stop after the current job and joins all threads.
  void stop();

  /// Blocks until the configured num_jobs have run (or stop()).
  void wait_finished();

  bool running() const {
    return started_ && finished_word_.load(std::memory_order_acquire) == 0;
  }

  common::TaskId id() const { return id_; }
  const TaskConfig& config() const { return config_; }
  const TaskPlacement& placement() const { return placement_; }

  /// CPU of optional part k under the assignment policy.
  common::CpuId optional_cpu(int part_index) const;

  /// Drains job records accumulated so far (consumer side of the ring).
  std::vector<JobRecord> drain_records();

  /// Jobs whose records were dropped because the ring was full.
  common::u64 dropped_records() const { return records_dropped_.load(); }

  /// User-callback exceptions absorbed by the middleware (the job
  /// continues with degraded QoS; details go to the global logger).
  long callback_errors() const {
    return callback_errors_.load(std::memory_order_relaxed) +
           pool_->body_errors();
  }

  void set_transition_observer(TransitionObserver observer) {
    observer_ = std::move(observer);
  }

  /// Attaches the telemetry hub (before start()).  Registers this task's
  /// metric instruments; the mandatory and optional threads register
  /// their event rings on their own setup paths.  `telemetry` must
  /// outlive the task; nullptr (the default) keeps every emit site at a
  /// single untaken branch.
  void set_telemetry(obs::Telemetry* telemetry);

  /// Called on the mandatory thread right after a job misses its deadline
  /// (a watchdog hook for overrun handling / alerting).  Keep it cheap.
  using MissObserver =
      std::function<void(common::TaskId, const JobRecord&)>;
  void set_miss_observer(MissObserver observer) {
    miss_observer_ = std::move(observer);
  }

  /// Called on the mandatory thread at the checkpoint where a budget
  /// overrun was detected, after the policy was applied (the JobRecord
  /// carries mandatory_overrun / windup_overrun / aborted).  Keep it cheap.
  using OverrunObserver = std::function<void(common::TaskId,
                                             fault::BudgetPart,
                                             const JobRecord&)>;
  void set_overrun_observer(OverrunObserver observer) {
    overrun_observer_ = std::move(observer);
  }

  /// The task's optional pool, for supervisor registration
  /// (fault::SupervisedPool view).  Valid for the task's lifetime.
  OptionalPool* pool() { return pool_.get(); }

  /// The task's circuit breaker; nullptr unless options.breaker.enabled.
  const fault::CircuitBreaker* breaker() const { return breaker_.get(); }

  /// Budget overruns observed so far (mandatory + wind-up).
  long budget_overruns() const {
    return budget_overruns_.load(std::memory_order_relaxed);
  }

 private:
  void mandatory_loop();
  void run_one_job(JobId job_index, Nanos release);
  /// Applies the overrun ladder at a checkpoint; returns true when the
  /// rest of the job must be skipped (kAbortJob / kDemoteThread).
  bool handle_budget_overrun(fault::BudgetPart part, JobRecord& rec);
  void notify_transition(TaskTransition transition, Nanos now);
  void emit(obs::EventKind kind, JobId job, common::i32 arg = 0);
  void record_overheads(const JobRecord& rec);
  void mark_finished();

  const common::TaskId id_;
  const TaskConfig config_;
  const TaskPlacement placement_;
  const TaskRuntimeOptions options_;
  const rt::Topology& topology_;

  std::unique_ptr<OptionalPool> pool_;
  std::unique_ptr<rt::RtThread> mandatory_thread_;

  std::atomic<bool> active_{false};
  /// Wait word for wait_finished (rt::wait_word fast path): 0 = running
  /// (or not yet started, matching the seed semantics), 1 = finished.
  std::atomic<std::uint32_t> finished_word_{0};
  bool started_ = false;

  common::SpscRing<JobRecord> records_;
  std::atomic<common::u64> records_dropped_{0};
  std::atomic<long> callback_errors_{0};

  TransitionObserver observer_;
  MissObserver miss_observer_;
  OverrunObserver overrun_observer_;

  /// Budget watchdog of the mandatory thread (armed/disarmed there only).
  fault::BudgetWatchdog watchdog_;
  std::unique_ptr<fault::CircuitBreaker> breaker_;
  std::atomic<long> budget_overruns_{0};
  /// kDemoteThread fired (one demotion per task lifetime is enough).
  bool demoted_ = false;

  obs::Telemetry* telemetry_ = nullptr;
  obs::TraceBuffer* trace_ = nullptr;  ///< mandatory thread's event ring
  obs::TaskMetrics task_metrics_;
};

}  // namespace rtseed::core
