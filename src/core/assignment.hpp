// Assignment of parallel optional parts to hardware threads (paper §V-A,
// Fig. 8).
//
//  * One by One: one part per core across all cores, then a second sibling
//    per core, and so on.                 part j -> (core j mod C, sibling ⌊j/C⌋)
//  * Two by Two: pairs of siblings per core across all cores, then the next
//    pair of siblings.
//  * All by All: fill every sibling of a core before moving to the next
//    core (four by four on the Xeon Phi).  part j -> (core ⌊j/S⌋, sibling j mod S)
//
// With 171 parts on the Xeon Phi (57 cores x 4) these reproduce the paper's
// Fig. 8 exactly: (a) 3 threads on every core; (b) 4 on C0–C27, 3 on C28,
// 2 on C29–C56; (c) 4 on C0–C41, 3 on C42, none on C43–C56.
//
// Beyond the paper's three, kTopologyAware uses the machine shape that
// common::Topology parses out of sysfs:
//  * sibling packing — fill every SMT sibling of a core before the next
//    core, so optional parts that read the same market snapshot share L1/L2;
//  * mandatory isolation — the core given via `avoid_core` (where the
//    mandatory thread is pinned) receives no optional parts while any other
//    core exists;
//  * LLC proximity — cores sharing the mandatory core's last-level cache
//    are filled first (the snapshot the mandatory part just wrote is hot
//    there), then remaining cores grouped by LLC domain.
#pragma once

#include <string>
#include <vector>

#include "common/topology.hpp"
#include "rt/topology.hpp"  // compat alias: rt::Topology == common::Topology

namespace rtseed::core {

using common::CpuId;

enum class AssignmentPolicy { kOneByOne, kTwoByTwo, kAllByAll,
                              kTopologyAware };

const char* assignment_policy_name(AssignmentPolicy policy);

/// CPU of optional part j (0-based) under `policy`.  Parts beyond the CPU
/// count wrap around (several parts may share a hardware thread).
/// `avoid_core` (used by kTopologyAware only) names the mandatory part's
/// physical core: it gets no optional parts unless it is the only core,
/// and its LLC domain is filled first.  -1 = no mandatory core known.
CpuId assign_cpu(const common::Topology& topology, AssignmentPolicy policy,
                 int part_index, int avoid_core = -1);

/// CPUs for all `num_parts` optional parts.
std::vector<CpuId> assign_optional_parts(const common::Topology& topology,
                                         AssignmentPolicy policy,
                                         int num_parts, int avoid_core = -1);

/// parts_per_core[c] = number of optional parts on core c (Fig. 8 view).
std::vector<int> parts_per_core(const common::Topology& topology,
                                AssignmentPolicy policy, int num_parts,
                                int avoid_core = -1);

}  // namespace rtseed::core
