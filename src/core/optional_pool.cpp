#include "core/optional_pool.hpp"

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "common/rt_logger.hpp"
#include "fault/injector.hpp"
#include "rt/futex.hpp"
#include "rt/periodic_clock.hpp"

namespace rtseed::core {

namespace {

// Bounded adaptive spin before committing to a sleep.  Sized to cover the
// back-to-back-round gap (a few µs of mandatory-thread work) without
// burning a visible slice of a part's budget: ~2k PAUSE iterations is
// single-digit microseconds on current x86.
//
// Spinning only pays when the thread we are waiting on can run
// CONCURRENTLY: on a single-CPU host every spin iteration steals the one
// core the peer needs to produce the value we are polling, so both spins
// collapse to zero there (park immediately, like the condvar path).
constexpr int kWorkerSpinIters = 2048;
constexpr int kCompletionSpinIters = 4096;

int worker_spin_iters() {
  static const int iters =
      rt::rt_capabilities().num_cpus > 1 ? kWorkerSpinIters : 0;
  return iters;
}

int completion_spin_iters() {
  static const int iters =
      rt::rt_capabilities().num_cpus > 1 ? kCompletionSpinIters : 0;
  return iters;
}

constexpr std::uint32_t completion_count(std::uint32_t word) {
  return word & ~(1u << 31);
}

}  // namespace

const char* wake_backend_name(WakeBackend backend) {
  switch (backend) {
    case WakeBackend::kAuto:
      return "auto";
    case WakeBackend::kFutexBatch:
      return "futex-batch";
    case WakeBackend::kFutexWord:
      return rt::wait_backend_name();
    case WakeBackend::kCondvar:
      return "condvar";
  }
  return "?";
}

WakeBackend resolve_wake_backend(WakeBackend requested) {
  if (requested != WakeBackend::kAuto) return requested;
  if (const char* env = std::getenv("RTSEED_WAKE_BACKEND")) {
    if (std::strcmp(env, "condvar") == 0) return WakeBackend::kCondvar;
    if (std::strcmp(env, "futex") == 0) return WakeBackend::kFutexWord;
    if (std::strcmp(env, "futex-batch") == 0 || std::strcmp(env, "batch") == 0)
      return WakeBackend::kFutexBatch;
  }
  return WakeBackend::kFutexBatch;
}

OptionalPool::OptionalPool(Options options, PartBody body)
    : options_(std::move(options)),
      backend_(resolve_wake_backend(options_.wake_backend)),
      body_(std::move(body)),
      slots_(common::make_aligned_array<Slot>(options_.cpus.size())),
      num_slots_(static_cast<int>(options_.cpus.size())) {
  if (options_.scratch_bytes > 0) {
    for (int k = 0; k < num_slots_; ++k) {
      slots_[static_cast<size_t>(k)].scratch.reserve(options_.scratch_bytes);
    }
  }
}

OptionalPool::~OptionalPool() { shutdown(); }

void OptionalPool::spawn_worker_locked(int part) {
  rt::ThreadConfig tc;
  tc.name = options_.name_prefix + ".o" + std::to_string(part);
  tc.fifo_priority = options_.fifo_priority;
  tc.affinity = rt::CpuSet::single(options_.cpus[static_cast<size_t>(part)]);
  threads_[static_cast<size_t>(part)] =
      rt::RtThread(tc, [this, part] { thread_main(part); });
}

common::Status OptionalPool::start() {
  std::lock_guard lock(lifecycle_mutex_);
  if (started_) return common::failed_precondition("pool already started");
  started_ = true;
  threads_.resize(static_cast<size_t>(num_slots_));
  for (int k = 0; k < size(); ++k) spawn_worker_locked(k);
  return common::Status::ok();
}

void OptionalPool::batch_wake_workers() {
  // The bump closes the publish→sleep transit window: a worker that loaded
  // the pre-bump generation and is about to enter FUTEX_WAIT is bounced by
  // the kernel's word revalidation; one that already sleeps is woken by
  // the broadcast.  One syscall either way.
  wake_gen_.fetch_add(1, std::memory_order_release);
  rt::wake_word(wake_gen_, std::numeric_limits<int>::max());
}

void OptionalPool::shutdown() {
  std::lock_guard lock(lifecycle_mutex_);
  if (!started_) return;
  if (backend_ == WakeBackend::kCondvar) {
    for (int k = 0; k < num_slots_; ++k) {
      auto& slot = slots_[static_cast<size_t>(k)];
      std::lock_guard slot_lock(slot.cv);
      slot.state = Slot::State::kShutdown;
      slot.cv.notify_one();
    }
  } else {
    // Publish every shutdown command first; then wake — batched into one
    // broadcast under kFutexBatch, per-slot under kFutexWord.
    bool any_parked = false;
    for (int k = 0; k < num_slots_; ++k) {
      auto& slot = slots_[static_cast<size_t>(k)];
      const std::uint32_t prev =
          slot.cmd.exchange(kCmdShutdown, std::memory_order_acq_rel);
      if (prev != kCmdParked) continue;
      any_parked = true;
      if (backend_ == WakeBackend::kFutexWord) rt::wake_word(slot.cmd, 1);
    }
    if (backend_ == WakeBackend::kFutexBatch && any_parked) {
      batch_wake_workers();
    }
  }
  for (auto& thread : threads_) thread.join();
  threads_.clear();
  started_ = false;
}

OptionalPool::RoundResult OptionalPool::run_round(const JobContext& ctx,
                                                  int count) {
  RoundResult result;
  count = std::min(count, size());
  if (count <= 0) return result;

  first_part_start_.store(0, std::memory_order_release);
  round_completed_.store(0, std::memory_order_relaxed);
  round_terminated_.store(0, std::memory_order_relaxed);

  const bool emit_window = caller_trace_ != nullptr && telemetry_ != nullptr;
  if (emit_window) {
    caller_trace_->emit({telemetry_->now(), task_, ctx.job, count,
                         obs::EventKind::kSignalBegin});
  }

  // Begin parallel optional parts.  kFutexWord/kCondvar: one wake per
  // thread (paper §IV-C: never broadcast).  kFutexBatch: publish every
  // command word first, then ONE batched wake — same no-spurious-wakeup
  // guarantee (only parked workers of THIS pool sleep on the generation
  // word), 1/k-th the syscalls.  This loop is the Δb window.
  if (backend_ != WakeBackend::kCondvar) {
    // Workers read the countdown only after acquiring their cmd word, so
    // a relaxed store ordered by the release-exchange below suffices.
    remaining_.store(static_cast<std::uint32_t>(count),
                     std::memory_order_relaxed);
    result.signal_start = common::monotonic_now();
    bool any_parked = false;
    for (int k = 0; k < count; ++k) {
      auto& slot = slots_[static_cast<size_t>(k)];
      slot.job = ctx;
      slot.force_flag.store(false, std::memory_order_relaxed);
      // One relaxed publish + release-exchange per part; wake syscalls
      // are skipped when the worker is still spinning (cmd was kCmdIdle).
      const std::uint32_t prev =
          slot.cmd.exchange(kCmdReady, std::memory_order_release);
      if (prev != kCmdParked) continue;
      any_parked = true;
      if (backend_ != WakeBackend::kFutexWord) continue;
      // Chaos: a swallowed or late wake of a parked worker.  A worker
      // that committed to FUTEX_WAIT just before our exchange landed
      // sleeps until the recovery loop below re-wakes it.
      if (fault::try_fire(fault::InjectPoint::kLostWake)) continue;
      if (fault::try_fire(fault::InjectPoint::kDelayedWake)) {
        rt::sleep_for(fault::injected_delay_ns());
      }
      rt::wake_word(slot.cmd, 1);
    }
    if (backend_ == WakeBackend::kFutexBatch && any_parked &&
        // Chaos: the single batched wake is swallowed/late — strands every
        // parked worker at once; the recovery loop re-broadcasts.
        !fault::try_fire(fault::InjectPoint::kLostWake)) {
      if (fault::try_fire(fault::InjectPoint::kDelayedWake)) {
        rt::sleep_for(fault::injected_delay_ns());
      }
      batch_wake_workers();
    }
    result.signal_end = common::monotonic_now();
  } else {
    {
      std::lock_guard lock(completion_cv_);
      remaining_cv_ = count;
    }
    result.signal_start = common::monotonic_now();
    for (int k = 0; k < count; ++k) {
      auto& slot = slots_[static_cast<size_t>(k)];
      std::lock_guard lock(slot.cv);
      slot.job = ctx;
      slot.force_flag.store(false, std::memory_order_relaxed);
      slot.state = Slot::State::kReady;
      // Chaos: pthread condvars only re-check predicates on wakeups, so a
      // swallowed notify strands the worker exactly like a lost futex
      // wake; the recovery loop below re-notifies.
      if (fault::try_fire(fault::InjectPoint::kLostWake)) continue;
      if (fault::try_fire(fault::InjectPoint::kDelayedWake)) {
        rt::sleep_for(fault::injected_delay_ns());
      }
      slot.cv.notify_one();
    }
    result.signal_end = common::monotonic_now();
  }
  if (emit_window) {
    caller_trace_->emit({telemetry_->now(), task_, ctx.job, count,
                         obs::EventKind::kSignalEnd});
  }

  // Wait for all parts to end; past OD + margin, force the stop tokens
  // (covers the periodic-check strategy) and keep waiting in BOUNDED
  // slices — the next phase must not overlap optional execution, but an
  // unbounded wait here turns any lost wake into a permanent hang.  Each
  // slice that expires re-wakes every slot whose handoff state still
  // reads ready: that is precisely a worker that committed to sleeping
  // before the signal landed (futex: the kernel validates the word only
  // at FUTEX_WAIT entry; condvar: predicates are only re-checked on
  // wakeups) — or a dead worker whose part the supervisor will respawn
  // someone to consume.
  const Nanos force_deadline =
      ctx.optional_deadline + options_.completion_margin;
  constexpr Nanos kRecoveryRetryInterval = common::millis(10);
  const auto rewake_unconsumed = [&] {
    bool any_stranded = false;
    for (int k = 0; k < count; ++k) {
      auto& slot = slots_[static_cast<size_t>(k)];
      bool stranded = false;
      if (backend_ == WakeBackend::kCondvar) {
        std::lock_guard lock(slot.cv);
        stranded = slot.state == Slot::State::kReady;
        if (stranded) slot.cv.notify_one();
      } else {
        stranded = slot.cmd.load(std::memory_order_acquire) == kCmdReady;
        if (stranded && backend_ == WakeBackend::kFutexWord) {
          rt::wake_word(slot.cmd, 1);
        }
      }
      if (stranded) {
        any_stranded = true;
        wake_retries_.fetch_add(1, std::memory_order_relaxed);
        if (emit_window) {
          caller_trace_->emit({telemetry_->now(), task_, ctx.job, k,
                               obs::EventKind::kWakeRetry});
        }
      }
    }
    // kFutexBatch: however many workers are stranded, recovery is the
    // same single broadcast the normal path uses.
    if (any_stranded && backend_ == WakeBackend::kFutexBatch) {
      batch_wake_workers();
    }
  };
  if (backend_ != WakeBackend::kCondvar) {
    if (!wait_completion_word(force_deadline)) {
      force_parts(count);
      while (!wait_completion_word(common::monotonic_now() +
                                   kRecoveryRetryInterval)) {
        rewake_unconsumed();
      }
    }
  } else {
    completion_cv_.lock();
    const bool on_time = completion_cv_.wait_until(
        force_deadline, [this] { return remaining_cv_ == 0; });
    completion_cv_.unlock();
    if (!on_time) {
      force_parts(count);
      for (;;) {
        completion_cv_.lock();
        const bool done = completion_cv_.wait_until(
            common::monotonic_now() + kRecoveryRetryInterval,
            [this] { return remaining_cv_ == 0; });
        completion_cv_.unlock();
        if (done) break;
        rewake_unconsumed();
      }
    }
  }

  result.all_ended = common::monotonic_now();
  result.completed = round_completed_.load(std::memory_order_relaxed);
  result.terminated = round_terminated_.load(std::memory_order_relaxed);
  result.first_part_start = first_part_start_.load(std::memory_order_acquire);
  return result;
}

bool OptionalPool::wait_completion_word(Nanos abs_deadline) {
  // Adaptive spin first: with short parts (back-to-back bench rounds) the
  // countdown hits zero while we are still here and the whole round
  // completes without ANY completion syscall on either side (the workers
  // skip their wake because the waiter bit is unset).
  int spins = completion_spin_iters();
  for (;;) {
    const std::uint32_t word = remaining_.load(std::memory_order_acquire);
    if (completion_count(word) == 0) return true;
    if (spins-- > 0) {
      rt::cpu_relax();
      continue;
    }
    // Advertise that we are about to sleep; the fetch_or re-checks the
    // count atomically, so a final decrement cannot slip between the
    // check and the FUTEX_WAIT (the kernel re-validates the word too).
    const std::uint32_t observed =
        remaining_.fetch_or(kCompletionWaiterBit, std::memory_order_acq_rel) |
        kCompletionWaiterBit;
    if (completion_count(observed) == 0) return true;
    if (abs_deadline >= 0) {
      if (!rt::wait_word_until(remaining_, observed, abs_deadline)) {
        return completion_count(remaining_.load(std::memory_order_acquire)) ==
               0;
      }
    } else {
      rt::wait_word(remaining_, observed);
    }
  }
}

void OptionalPool::force_parts(int count) {
  for (int k = 0; k < count; ++k) {
    slots_[static_cast<size_t>(k)].force_flag.store(
        true, std::memory_order_relaxed);
  }
}

std::uint32_t OptionalPool::wait_for_command(Slot& slot) {
  for (;;) {
    std::uint32_t cmd = slot.cmd.load(std::memory_order_acquire);
    for (int spins = worker_spin_iters(); cmd == kCmdIdle && spins > 0;
         --spins) {
      rt::cpu_relax();
      cmd = slot.cmd.load(std::memory_order_acquire);
    }
    if (cmd == kCmdIdle) {
      // Commit to sleeping.  If the signaller's exchange lands between
      // this CAS and the FUTEX_WAIT, the wait returns immediately
      // (word != kCmdParked under kFutexWord; the command re-check below
      // under kFutexBatch).
      std::uint32_t expected = kCmdIdle;
      if (slot.cmd.compare_exchange_strong(expected, kCmdParked,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
        if (backend_ == WakeBackend::kFutexBatch) {
          // Sleep on the SHARED generation word.  Order is load-gen →
          // re-check-cmd → wait: the signaller publishes commands before
          // bumping the generation, so seeing the new generation implies
          // seeing our command, and a bump between our generation load
          // and the FUTEX_WAIT bounces off the kernel's revalidation.
          // No interleaving leaves us asleep with a command pending.
          for (;;) {
            const std::uint32_t gen =
                wake_gen_.load(std::memory_order_acquire);
            cmd = slot.cmd.load(std::memory_order_acquire);
            if (cmd != kCmdParked) break;
            rt::wait_word(wake_gen_, gen);
            // Woken (possibly for a round that signals other parts only)
            // — re-check our command against the NEW generation.
          }
        } else {
          rt::wait_word(slot.cmd, kCmdParked);
          cmd = slot.cmd.load(std::memory_order_acquire);
        }
      } else {
        cmd = expected;
      }
    }
    if (cmd == kCmdReady || cmd == kCmdShutdown) return cmd;
  }
}

void OptionalPool::execute_part(Slot& slot, int part, const JobContext& job,
                                obs::TraceBuffer* trace) {
  const Nanos started = common::monotonic_now();
  Nanos expected = 0;
  first_part_start_.compare_exchange_strong(expected, started,
                                            std::memory_order_acq_rel);
  // Publish the busy window for the supervisor: two relaxed stores and a
  // heartbeat bump per part (matched by the clear at the end).
  slot.busy_since.store(started, std::memory_order_relaxed);
  slot.busy_deadline.store(job.optional_deadline, std::memory_order_relaxed);
  slot.heartbeat.fetch_add(1, std::memory_order_relaxed);
  // Chaos: the worker stalls before reaching its body — the shape of a
  // page fault storm or an unbounded syscall.  The OD timer is not armed
  // yet, so only the supervisor (or the expired deadline, once the body
  // finally starts) can recover this.
  if (fault::try_fire(fault::InjectPoint::kWorkerStall)) {
    rt::sleep_for(fault::injected_stall_ns());
  }
  if (trace != nullptr) {
    trace->emit({telemetry_->now(), task_, job.job, part,
                 obs::EventKind::kOptionalBegin});
  }

  TerminationOptions term_options;
  term_options.repair_signal_mask = options_.repair_signal_mask;
  const auto outcome = run_with_deadline(
      options_.termination, job.optional_deadline,
      [&](StopToken& token) {
        // The token observes the slot's stable force flag instead of the
        // pool holding a pointer into this stack frame: the mandatory
        // thread's force-after-margin path is one relaxed store per part
        // and can never dereference a dead token.
        token.bind_force_flag(&slot.force_flag);
        if (body_) {
          // Only std::exception is absorbed: the try-catch termination
          // strategy's own (non-std) deadline exception must propagate.
          try {
            body_(job, part, token);
          } catch (const std::exception& e) {
            body_errors_.fetch_add(1, std::memory_order_relaxed);
            common::global_logger().error(
                "%s.o%d: exception in optional part: %s",
                options_.name_prefix.c_str(), part, e.what());
          }
        }
      },
      term_options);

  if (outcome.outcome == OptionalOutcome::kCompleted) {
    round_completed_.fetch_add(1, std::memory_order_relaxed);
    if (trace != nullptr) {
      trace->emit({telemetry_->now(), task_, job.job, part,
                   obs::EventKind::kOptionalEnd});
    }
  } else {
    round_terminated_.fetch_add(1, std::memory_order_relaxed);
    // Emitted after run_with_deadline returned — i.e. after the
    // siglongjmp/exception unwound back to this frame, where emitting
    // is safe again (never from inside the signal handler).
    if (trace != nullptr) {
      trace->emit({telemetry_->now(), task_, job.job, part,
                   obs::EventKind::kOptionalTerminated});
    }
  }
  slot.busy_deadline.store(0, std::memory_order_relaxed);
  slot.busy_since.store(0, std::memory_order_relaxed);
  slot.heartbeat.fetch_add(1, std::memory_order_relaxed);
}

void OptionalPool::thread_main(int part) {
  auto& slot = slots_[static_cast<size_t>(part)];
  slot.handle.store(pthread_self(), std::memory_order_relaxed);
  slot.alive.store(true, std::memory_order_release);
  // Every exit path must lower the alive flag — it is what tells the
  // supervisor this worker needs respawning.
  struct AliveGuard {
    Slot& slot;
    ~AliveGuard() { slot.alive.store(false, std::memory_order_release); }
  } alive_guard{slot};
  // Telemetry registration happens here, on the thread's setup path,
  // before the first job is ever signalled — the emit path below is
  // branch-plus-ring-push only.
  obs::TraceBuffer* trace = nullptr;
  if (telemetry_ != nullptr) {
    trace = telemetry_->register_thread(
        options_.name_prefix + ".o" + std::to_string(part),
        options_.cpus[static_cast<size_t>(part)]);
  }
  for (;;) {
    JobContext job;
    if (backend_ != WakeBackend::kCondvar) {
      const std::uint32_t cmd = wait_for_command(slot);
      if (cmd == kCmdShutdown) return;
      // Chaos: the worker dies with the command UNCONSUMED (cmd stays
      // kCmdReady, the countdown undecremented) — the worst spot to die.
      // The respawned worker's wait_for_command picks the part right up.
      if (fault::try_fire(fault::InjectPoint::kWorkerDeath)) return;
      job = slot.job;
      // Reset before the completion decrement below: once the round
      // completes the signaller may immediately publish the next one and
      // its exchange must find kCmdIdle, not a stale kCmdReady.
      slot.cmd.store(kCmdIdle, std::memory_order_relaxed);
    } else {
      std::lock_guard lock(slot.cv);
      slot.cv.wait([&slot] { return slot.state != Slot::State::kIdle; });
      if (slot.state == Slot::State::kShutdown) return;
      // Chaos: die with state still kReady (see above); the respawned
      // worker's predicate sees it immediately.
      if (fault::try_fire(fault::InjectPoint::kWorkerDeath)) return;
      job = slot.job;
      slot.state = Slot::State::kIdle;
    }

    // Recycle this slot's scratch (one store) and expose it to the body.
    if (slot.scratch.capacity() > 0) {
      slot.scratch.reset();
      job.scratch = &slot.scratch;
    }

    execute_part(slot, part, job, trace);

    if (backend_ != WakeBackend::kCondvar) {
      // Single-countdown Δe path: one atomic per part, one wake syscall
      // per round at most — and none at all when the mandatory thread is
      // still in its adaptive spin (waiter bit unset).
      const std::uint32_t prev =
          remaining_.fetch_sub(1, std::memory_order_acq_rel);
      if (completion_count(prev) == 1 &&
          (prev & kCompletionWaiterBit) != 0) {
        rt::wake_word(remaining_, 1);
      }
    } else {
      bool last = false;
      {
        std::lock_guard lock(completion_cv_);
        last = (--remaining_cv_ == 0);
      }
      if (last) completion_cv_.notify_one();
    }
  }
}

// ---- fault::SupervisedPool -------------------------------------------------
//
// Called only from the supervisor thread, which the Runtime stops BEFORE
// shutting the pools down — so kill/respawn never race shutdown's joins.

fault::WorkerHealth OptionalPool::worker_health(int worker) const {
  fault::WorkerHealth health;
  if (worker < 0 || worker >= size()) return health;
  const Slot& slot = slots_[static_cast<size_t>(worker)];
  health.alive = slot.alive.load(std::memory_order_acquire);
  health.busy_since = slot.busy_since.load(std::memory_order_relaxed);
  health.busy = health.busy_since != 0;
  health.busy_deadline = slot.busy_deadline.load(std::memory_order_relaxed);
  health.heartbeat = slot.heartbeat.load(std::memory_order_relaxed);
  return health;
}

void OptionalPool::force_worker(int worker) {
  if (worker < 0 || worker >= size()) return;
  // The same slot-owned flag the force-after-margin path writes; the
  // part's StopToken observes it, so this is idempotent and lock-free.
  slots_[static_cast<size_t>(worker)].force_flag.store(
      true, std::memory_order_relaxed);
}

bool OptionalPool::kill_worker(int worker) {
  if (worker < 0 || worker >= size()) return false;
  // Only the sigjmp strategy has an asynchronous, safe-by-design signal
  // path (the handler no-ops unless the target is inside an armed
  // sigsetjmp region).  Under periodic-check the body polls and under
  // try-catch the unwind tables only cover the strategy's own TU.
  if (options_.termination != TerminationStrategy::kSigjmp) return false;
  auto& slot = slots_[static_cast<size_t>(worker)];
  if (!slot.alive.load(std::memory_order_acquire)) return false;
  if (slot.busy_since.load(std::memory_order_relaxed) == 0) return false;
  ensure_sigjmp_handler_installed();
  return pthread_kill(slot.handle.load(std::memory_order_relaxed),
                      sigjmp_signal()) == 0;
}

bool OptionalPool::respawn_worker(int worker) {
  std::lock_guard lock(lifecycle_mutex_);
  if (!started_ || worker < 0 || worker >= size()) return false;
  auto& slot = slots_[static_cast<size_t>(worker)];
  if (slot.alive.load(std::memory_order_acquire)) return false;
  auto& thread = threads_[static_cast<size_t>(worker)];
  if (thread.joinable()) thread.join();  // reap the exited thread
  // Any command the dead worker left unconsumed (cmd still kCmdReady /
  // state still kReady) is picked up by the fresh worker immediately.
  spawn_worker_locked(worker);
  return true;
}

}  // namespace rtseed::core
