#include "core/optional_pool.hpp"

#include <cstdlib>
#include <cstring>

#include "common/rt_logger.hpp"
#include "rt/futex.hpp"

namespace rtseed::core {

namespace {

// Bounded adaptive spin before committing to a sleep.  Sized to cover the
// back-to-back-round gap (a few µs of mandatory-thread work) without
// burning a visible slice of a part's budget: ~2k PAUSE iterations is
// single-digit microseconds on current x86.
//
// Spinning only pays when the thread we are waiting on can run
// CONCURRENTLY: on a single-CPU host every spin iteration steals the one
// core the peer needs to produce the value we are polling, so both spins
// collapse to zero there (park immediately, like the condvar path).
constexpr int kWorkerSpinIters = 2048;
constexpr int kCompletionSpinIters = 4096;

int worker_spin_iters() {
  static const int iters =
      rt::rt_capabilities().num_cpus > 1 ? kWorkerSpinIters : 0;
  return iters;
}

int completion_spin_iters() {
  static const int iters =
      rt::rt_capabilities().num_cpus > 1 ? kCompletionSpinIters : 0;
  return iters;
}

constexpr std::uint32_t completion_count(std::uint32_t word) {
  return word & ~(1u << 31);
}

}  // namespace

const char* wake_backend_name(WakeBackend backend) {
  switch (backend) {
    case WakeBackend::kAuto:
      return "auto";
    case WakeBackend::kFutexWord:
      return rt::wait_backend_name();
    case WakeBackend::kCondvar:
      return "condvar";
  }
  return "?";
}

WakeBackend resolve_wake_backend(WakeBackend requested) {
  if (requested != WakeBackend::kAuto) return requested;
  if (const char* env = std::getenv("RTSEED_WAKE_BACKEND")) {
    if (std::strcmp(env, "condvar") == 0) return WakeBackend::kCondvar;
    if (std::strcmp(env, "futex") == 0) return WakeBackend::kFutexWord;
  }
  return WakeBackend::kFutexWord;
}

OptionalPool::OptionalPool(Options options, PartBody body)
    : options_(std::move(options)),
      backend_(resolve_wake_backend(options_.wake_backend)),
      body_(std::move(body)) {
  slots_.reserve(options_.cpus.size());
  for (size_t k = 0; k < options_.cpus.size(); ++k) {
    slots_.push_back(std::make_unique<Slot>());
  }
}

OptionalPool::~OptionalPool() { shutdown(); }

common::Status OptionalPool::start() {
  if (started_) return common::failed_precondition("pool already started");
  started_ = true;
  threads_.reserve(slots_.size());
  for (int k = 0; k < size(); ++k) {
    rt::ThreadConfig tc;
    tc.name = options_.name_prefix + ".o" + std::to_string(k);
    tc.fifo_priority = options_.fifo_priority;
    tc.affinity = rt::CpuSet::single(options_.cpus[static_cast<size_t>(k)]);
    threads_.emplace_back(tc, [this, k] { thread_main(k); });
  }
  return common::Status::ok();
}

void OptionalPool::shutdown() {
  if (!started_) return;
  for (auto& slot : slots_) {
    if (backend_ == WakeBackend::kFutexWord) {
      const std::uint32_t prev =
          slot->cmd.exchange(kCmdShutdown, std::memory_order_acq_rel);
      if (prev == kCmdParked) rt::wake_word(slot->cmd, 1);
    } else {
      std::lock_guard lock(slot->cv);
      slot->state = Slot::State::kShutdown;
      slot->cv.notify_one();
    }
  }
  for (auto& thread : threads_) thread.join();
  threads_.clear();
  started_ = false;
}

OptionalPool::RoundResult OptionalPool::run_round(const JobContext& ctx,
                                                  int count) {
  RoundResult result;
  count = std::min(count, size());
  if (count <= 0) return result;

  first_part_start_.store(0, std::memory_order_release);
  round_completed_.store(0, std::memory_order_relaxed);
  round_terminated_.store(0, std::memory_order_relaxed);

  const bool emit_window = caller_trace_ != nullptr && telemetry_ != nullptr;
  if (emit_window) {
    caller_trace_->emit({telemetry_->now(), task_, ctx.job, count,
                         obs::EventKind::kSignalBegin});
  }

  // Begin parallel optional parts: one wake per thread (paper §IV-C:
  // never broadcast).  This loop is the Δb window.
  if (backend_ == WakeBackend::kFutexWord) {
    // Workers read the countdown only after acquiring their cmd word, so
    // a relaxed store ordered by the release-exchange below suffices.
    remaining_.store(static_cast<std::uint32_t>(count),
                     std::memory_order_relaxed);
    result.signal_start = common::monotonic_now();
    for (int k = 0; k < count; ++k) {
      auto& slot = *slots_[static_cast<size_t>(k)];
      slot.job = ctx;
      slot.force_flag.store(false, std::memory_order_relaxed);
      // One relaxed publish + release-exchange per part; the wake syscall
      // is skipped when the worker is still spinning (cmd was kCmdIdle).
      const std::uint32_t prev =
          slot.cmd.exchange(kCmdReady, std::memory_order_release);
      if (prev == kCmdParked) rt::wake_word(slot.cmd, 1);
    }
    result.signal_end = common::monotonic_now();
  } else {
    {
      std::lock_guard lock(completion_cv_);
      remaining_cv_ = count;
    }
    result.signal_start = common::monotonic_now();
    for (int k = 0; k < count; ++k) {
      auto& slot = *slots_[static_cast<size_t>(k)];
      std::lock_guard lock(slot.cv);
      slot.job = ctx;
      slot.force_flag.store(false, std::memory_order_relaxed);
      slot.state = Slot::State::kReady;
      slot.cv.notify_one();
    }
    result.signal_end = common::monotonic_now();
  }
  if (emit_window) {
    caller_trace_->emit({telemetry_->now(), task_, ctx.job, count,
                         obs::EventKind::kSignalEnd});
  }

  // Wait for all parts to end; past OD + margin, force the stop tokens
  // (covers the periodic-check strategy and lost-wakeup pathologies) and
  // keep waiting — the next phase must not overlap optional execution.
  const Nanos force_deadline =
      ctx.optional_deadline + options_.completion_margin;
  if (backend_ == WakeBackend::kFutexWord) {
    if (!wait_completion_word(force_deadline)) {
      force_parts(count);
      wait_completion_word(-1);
    }
  } else {
    completion_cv_.lock();
    const bool on_time = completion_cv_.wait_until(
        force_deadline, [this] { return remaining_cv_ == 0; });
    if (!on_time) {
      completion_cv_.unlock();
      force_parts(count);
      completion_cv_.lock();
      completion_cv_.wait([this] { return remaining_cv_ == 0; });
    }
    completion_cv_.unlock();
  }

  result.all_ended = common::monotonic_now();
  result.completed = round_completed_.load(std::memory_order_relaxed);
  result.terminated = round_terminated_.load(std::memory_order_relaxed);
  result.first_part_start = first_part_start_.load(std::memory_order_acquire);
  return result;
}

bool OptionalPool::wait_completion_word(Nanos abs_deadline) {
  // Adaptive spin first: with short parts (back-to-back bench rounds) the
  // countdown hits zero while we are still here and the whole round
  // completes without ANY completion syscall on either side (the workers
  // skip their wake because the waiter bit is unset).
  int spins = completion_spin_iters();
  for (;;) {
    const std::uint32_t word = remaining_.load(std::memory_order_acquire);
    if (completion_count(word) == 0) return true;
    if (spins-- > 0) {
      rt::cpu_relax();
      continue;
    }
    // Advertise that we are about to sleep; the fetch_or re-checks the
    // count atomically, so a final decrement cannot slip between the
    // check and the FUTEX_WAIT (the kernel re-validates the word too).
    const std::uint32_t observed =
        remaining_.fetch_or(kCompletionWaiterBit, std::memory_order_acq_rel) |
        kCompletionWaiterBit;
    if (completion_count(observed) == 0) return true;
    if (abs_deadline >= 0) {
      if (!rt::wait_word_until(remaining_, observed, abs_deadline)) {
        return completion_count(remaining_.load(std::memory_order_acquire)) ==
               0;
      }
    } else {
      rt::wait_word(remaining_, observed);
    }
  }
}

void OptionalPool::force_parts(int count) {
  for (int k = 0; k < count; ++k) {
    slots_[static_cast<size_t>(k)]->force_flag.store(
        true, std::memory_order_relaxed);
  }
}

std::uint32_t OptionalPool::wait_for_command(Slot& slot) {
  for (;;) {
    std::uint32_t cmd = slot.cmd.load(std::memory_order_acquire);
    for (int spins = worker_spin_iters(); cmd == kCmdIdle && spins > 0;
         --spins) {
      rt::cpu_relax();
      cmd = slot.cmd.load(std::memory_order_acquire);
    }
    if (cmd == kCmdIdle) {
      // Commit to sleeping.  If the signaller's exchange lands between
      // this CAS and the FUTEX_WAIT, the wait returns immediately
      // (word != kCmdParked).
      std::uint32_t expected = kCmdIdle;
      if (slot.cmd.compare_exchange_strong(expected, kCmdParked,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
        rt::wait_word(slot.cmd, kCmdParked);
        cmd = slot.cmd.load(std::memory_order_acquire);
      } else {
        cmd = expected;
      }
    }
    if (cmd == kCmdReady || cmd == kCmdShutdown) return cmd;
  }
}

void OptionalPool::execute_part(Slot& slot, int part, const JobContext& job,
                                obs::TraceBuffer* trace) {
  const Nanos started = common::monotonic_now();
  Nanos expected = 0;
  first_part_start_.compare_exchange_strong(expected, started,
                                            std::memory_order_acq_rel);
  if (trace != nullptr) {
    trace->emit({telemetry_->now(), task_, job.job, part,
                 obs::EventKind::kOptionalBegin});
  }

  const auto outcome = run_with_deadline(
      options_.termination, job.optional_deadline, [&](StopToken& token) {
        // The token observes the slot's stable force flag instead of the
        // pool holding a pointer into this stack frame: the mandatory
        // thread's force-after-margin path is one relaxed store per part
        // and can never dereference a dead token.
        token.bind_force_flag(&slot.force_flag);
        if (body_) {
          // Only std::exception is absorbed: the try-catch termination
          // strategy's own (non-std) deadline exception must propagate.
          try {
            body_(job, part, token);
          } catch (const std::exception& e) {
            body_errors_.fetch_add(1, std::memory_order_relaxed);
            common::global_logger().error(
                "%s.o%d: exception in optional part: %s",
                options_.name_prefix.c_str(), part, e.what());
          }
        }
      });

  if (outcome.outcome == OptionalOutcome::kCompleted) {
    round_completed_.fetch_add(1, std::memory_order_relaxed);
    if (trace != nullptr) {
      trace->emit({telemetry_->now(), task_, job.job, part,
                   obs::EventKind::kOptionalEnd});
    }
  } else {
    round_terminated_.fetch_add(1, std::memory_order_relaxed);
    // Emitted after run_with_deadline returned — i.e. after the
    // siglongjmp/exception unwound back to this frame, where emitting
    // is safe again (never from inside the signal handler).
    if (trace != nullptr) {
      trace->emit({telemetry_->now(), task_, job.job, part,
                   obs::EventKind::kOptionalTerminated});
    }
  }
}

void OptionalPool::thread_main(int part) {
  auto& slot = *slots_[static_cast<size_t>(part)];
  // Telemetry registration happens here, on the thread's setup path,
  // before the first job is ever signalled — the emit path below is
  // branch-plus-ring-push only.
  obs::TraceBuffer* trace = nullptr;
  if (telemetry_ != nullptr) {
    trace = telemetry_->register_thread(
        options_.name_prefix + ".o" + std::to_string(part),
        options_.cpus[static_cast<size_t>(part)]);
  }
  for (;;) {
    JobContext job;
    if (backend_ == WakeBackend::kFutexWord) {
      const std::uint32_t cmd = wait_for_command(slot);
      if (cmd == kCmdShutdown) return;
      job = slot.job;
      // Reset before the completion decrement below: once the round
      // completes the signaller may immediately publish the next one and
      // its exchange must find kCmdIdle, not a stale kCmdReady.
      slot.cmd.store(kCmdIdle, std::memory_order_relaxed);
    } else {
      std::lock_guard lock(slot.cv);
      slot.cv.wait([&slot] { return slot.state != Slot::State::kIdle; });
      if (slot.state == Slot::State::kShutdown) return;
      job = slot.job;
      slot.state = Slot::State::kIdle;
    }

    execute_part(slot, part, job, trace);

    if (backend_ == WakeBackend::kFutexWord) {
      // Single-countdown Δe path: one atomic per part, one wake syscall
      // per round at most — and none at all when the mandatory thread is
      // still in its adaptive spin (waiter bit unset).
      const std::uint32_t prev =
          remaining_.fetch_sub(1, std::memory_order_acq_rel);
      if (completion_count(prev) == 1 &&
          (prev & kCompletionWaiterBit) != 0) {
        rt::wake_word(remaining_, 1);
      }
    } else {
      bool last = false;
      {
        std::lock_guard lock(completion_cv_);
        last = (--remaining_cv_ == 0);
      }
      if (last) completion_cv_.notify_one();
    }
  }
}

}  // namespace rtseed::core
