#include "core/optional_pool.hpp"

#include <chrono>

#include "common/rt_logger.hpp"

namespace rtseed::core {

namespace {

std::chrono::steady_clock::time_point to_steady(Nanos abs_monotonic) {
  return std::chrono::steady_clock::time_point(
      std::chrono::nanoseconds(abs_monotonic));
}

}  // namespace

OptionalPool::OptionalPool(Options options, PartBody body)
    : options_(std::move(options)), body_(std::move(body)) {
  slots_.reserve(options_.cpus.size());
  for (size_t k = 0; k < options_.cpus.size(); ++k) {
    slots_.push_back(std::make_unique<Slot>());
  }
}

OptionalPool::~OptionalPool() { shutdown(); }

common::Status OptionalPool::start() {
  if (started_) return common::failed_precondition("pool already started");
  started_ = true;
  threads_.reserve(slots_.size());
  for (int k = 0; k < size(); ++k) {
    rt::ThreadConfig tc;
    tc.name = options_.name_prefix + ".o" + std::to_string(k);
    tc.fifo_priority = options_.fifo_priority;
    tc.affinity = rt::CpuSet::single(options_.cpus[static_cast<size_t>(k)]);
    threads_.emplace_back(tc, [this, k] { thread_main(k); });
  }
  return common::Status::ok();
}

void OptionalPool::shutdown() {
  if (!started_) return;
  for (auto& slot : slots_) {
    std::lock_guard lock(slot->mutex);
    slot->state = Slot::State::kShutdown;
    slot->cv.notify_one();
  }
  for (auto& thread : threads_) thread.join();
  threads_.clear();
  started_ = false;
}

OptionalPool::RoundResult OptionalPool::run_round(const JobContext& ctx,
                                                  int count) {
  RoundResult result;
  count = std::min(count, size());
  if (count <= 0) return result;

  first_part_start_.store(0, std::memory_order_release);
  round_completed_.store(0, std::memory_order_relaxed);
  round_terminated_.store(0, std::memory_order_relaxed);
  {
    std::lock_guard lock(completion_mutex_);
    remaining_ = count;
  }

  // Begin parallel optional parts: one pthread_cond_signal per thread
  // (paper §IV-C: never broadcast).  This loop is the Δb window.
  if (caller_trace_ != nullptr) {
    caller_trace_->emit({telemetry_->now(), task_, ctx.job, count,
                         obs::EventKind::kSignalBegin});
  }
  result.signal_start = common::monotonic_now();
  for (int k = 0; k < count; ++k) {
    auto& slot = *slots_[static_cast<size_t>(k)];
    std::lock_guard lock(slot.mutex);
    slot.job = ctx;
    slot.state = Slot::State::kReady;
    slot.cv.notify_one();
  }
  result.signal_end = common::monotonic_now();
  if (caller_trace_ != nullptr) {
    caller_trace_->emit({telemetry_->now(), task_, ctx.job, count,
                         obs::EventKind::kSignalEnd});
  }

  // Wait for all parts to end; past OD + margin, force the stop tokens
  // (covers the periodic-check strategy and lost-wakeup pathologies) and
  // keep waiting — the next phase must not overlap optional execution.
  std::unique_lock lock(completion_mutex_);
  const bool on_time = completion_cv_.wait_until(
      lock, to_steady(ctx.optional_deadline + options_.completion_margin),
      [this] { return remaining_ == 0; });
  if (!on_time) {
    lock.unlock();
    for (int k = 0; k < count; ++k) {
      auto& slot = *slots_[static_cast<size_t>(k)];
      std::lock_guard slot_lock(slot.mutex);
      if (slot.active_token != nullptr) slot.active_token->force();
    }
    lock.lock();
    completion_cv_.wait(lock, [this] { return remaining_ == 0; });
  }
  lock.unlock();

  result.all_ended = common::monotonic_now();
  result.completed = round_completed_.load(std::memory_order_relaxed);
  result.terminated = round_terminated_.load(std::memory_order_relaxed);
  result.first_part_start = first_part_start_.load(std::memory_order_acquire);
  return result;
}

void OptionalPool::thread_main(int part) {
  auto& slot = *slots_[static_cast<size_t>(part)];
  // Telemetry registration happens here, on the thread's setup path,
  // before the first job is ever signalled — the emit path below is
  // branch-plus-ring-push only.
  obs::TraceBuffer* trace = nullptr;
  if (telemetry_ != nullptr) {
    trace = telemetry_->register_thread(
        options_.name_prefix + ".o" + std::to_string(part),
        options_.cpus[static_cast<size_t>(part)]);
  }
  for (;;) {
    JobContext job;
    {
      std::unique_lock lock(slot.mutex);
      slot.cv.wait(lock,
                   [&slot] { return slot.state != Slot::State::kIdle; });
      if (slot.state == Slot::State::kShutdown) return;
      job = slot.job;
      slot.state = Slot::State::kIdle;
    }

    const Nanos started = common::monotonic_now();
    Nanos expected = 0;
    first_part_start_.compare_exchange_strong(expected, started,
                                              std::memory_order_acq_rel);
    if (trace != nullptr) {
      trace->emit({telemetry_->now(), task_, job.job, part,
                   obs::EventKind::kOptionalBegin});
    }

    StopToken* published_token = nullptr;
    const auto outcome = run_with_deadline(
        options_.termination, job.optional_deadline, [&](StopToken& token) {
          {
            std::lock_guard lock(slot.mutex);
            slot.active_token = &token;
            published_token = &token;
          }
          if (body_) {
            // Only std::exception is absorbed: the try-catch termination
            // strategy's own (non-std) deadline exception must propagate.
            try {
              body_(job, part, token);
            } catch (const std::exception& e) {
              body_errors_.fetch_add(1, std::memory_order_relaxed);
              common::global_logger().error(
                  "%s.o%d: exception in optional part: %s",
                  options_.name_prefix.c_str(), part, e.what());
            }
          }
        });
    if (published_token != nullptr) {
      std::lock_guard lock(slot.mutex);
      slot.active_token = nullptr;
    }

    if (outcome.outcome == OptionalOutcome::kCompleted) {
      round_completed_.fetch_add(1, std::memory_order_relaxed);
      if (trace != nullptr) {
        trace->emit({telemetry_->now(), task_, job.job, part,
                     obs::EventKind::kOptionalEnd});
      }
    } else {
      round_terminated_.fetch_add(1, std::memory_order_relaxed);
      // Emitted after run_with_deadline returned — i.e. after the
      // siglongjmp/exception unwound back to this frame, where emitting
      // is safe again (never from inside the signal handler).
      if (trace != nullptr) {
        trace->emit({telemetry_->now(), task_, job.job, part,
                     obs::EventKind::kOptionalTerminated});
      }
    }

    bool last = false;
    {
      std::lock_guard lock(completion_mutex_);
      last = (--remaining_ == 0);
    }
    if (last) completion_cv_.notify_one();
  }
}

}  // namespace rtseed::core
