// Termination of parallel optional parts in user space (paper §IV-D,
// Fig. 7, Table I).
//
// Three strategies, matching Table I:
//
//  * kSigjmp (the paper's recommended design): a one-shot optional-deadline
//    timer delivers a signal whose handler siglongjmp's back to a
//    sigsetjmp(.., savesigs=1) checkpoint.  Any-time termination, and the
//    saved signal mask is restored — the next job's timer fires normally.
//    Constraint inherited from the model: the optional body must be a pure
//    CPU-bound computation (no resource acquisition), because it can be
//    abandoned at an arbitrary instruction.
//
//  * kPeriodicCheck: no timer; the body polls StopToken::should_stop().
//    Cannot terminate at any time (termination latency = polling period),
//    which degrades QoS — exactly the drawback the paper names.
//
//  * kTryCatch: the timer's signal handler throws a C++ exception
//    (requires -fnon-call-exceptions in this translation unit).  Any-time
//    termination, but escaping the handler by exception skips sigreturn,
//    so the signal is left BLOCKED: the next job's deadline timer never
//    interrupts.  run_with_deadline intentionally reproduces this defect;
//    repair_signal_mask_after_trycatch() undoes it (used by tests and by
//    the Table-I experiment to recover between jobs).
#pragma once

#include <atomic>

#include "common/inplace_function.hpp"
#include "common/status.hpp"
#include "common/time.hpp"

namespace rtseed::core {

using common::Nanos;

enum class TerminationStrategy { kSigjmp, kPeriodicCheck, kTryCatch };

const char* termination_strategy_name(TerminationStrategy strategy);

enum class OptionalOutcome {
  kCompleted,   ///< body returned before the optional deadline
  kTerminated,  ///< stopped at (or detected past) the optional deadline
  kDiscarded,   ///< never started (mandatory part missed the OD)
};

const char* optional_outcome_name(OptionalOutcome outcome);

/// Cooperation point for kPeriodicCheck (harmless to poll under the other
/// strategies, where it only reflects the deadline).
class StopToken {
 public:
  explicit StopToken(Nanos abs_deadline) : deadline_(abs_deadline) {}

  /// True once the optional deadline has passed or the token was forced.
  bool should_stop() const {
    return forced() || common::monotonic_now() >= deadline_;
  }

  /// True once force() was called or the bound external flag was raised
  /// (the middleware's force-after-margin path) — independent of the
  /// deadline.
  bool forced() const {
    return forced_.load(std::memory_order_relaxed) ||
           (external_force_ != nullptr &&
            external_force_->load(std::memory_order_relaxed));
  }

  void force() { forced_.store(true, std::memory_order_relaxed); }

  /// Routes an external forcing source into this token.  The OptionalPool
  /// binds its slot's force flag here (on the optional thread, before the
  /// body runs) so the mandatory thread can force stragglers by writing
  /// that stable flag — it never holds a pointer into this token's stack
  /// frame, which is what makes the forcing path lock-free AND immune to
  /// the token's lifetime.  `flag` must outlive the optional part.
  void bind_force_flag(const std::atomic<bool>* flag) {
    external_force_ = flag;
  }

  Nanos deadline() const { return deadline_; }

 private:
  Nanos deadline_;
  std::atomic<bool> forced_{false};
  /// Bound and read only on the owning optional thread.
  const std::atomic<bool>* external_force_ = nullptr;
};

/// An optional part's body.  Under kSigjmp/kTryCatch it may be abandoned at
/// any instruction; under kPeriodicCheck it must poll the token.
/// Owning, with inline closure storage only — a capture over 64 bytes is a
/// compile error, never a heap allocation.
using OptionalBody = common::InplaceFunction<void(StopToken&), 64>;

/// What run_with_deadline actually consumes: a non-owning view, so the
/// dispatch hot path hands over a stack lambda with zero copies and zero
/// allocations.  An OptionalBody lvalue converts implicitly.
using OptionalBodyRef = common::FunctionRef<void(StopToken&)>;

struct TerminationResult {
  OptionalOutcome outcome = OptionalOutcome::kCompleted;
  /// When the body actually stopped (monotonic).
  Nanos finished_at = 0;
};

struct TerminationOptions {
  /// Repair the thread's signal mask after a kTryCatch termination.  The
  /// paper's Table I records try-catch leaving the deadline signal BLOCKED
  /// (the handler is escaped by exception, skipping sigreturn); with this
  /// ON (the default) run_with_deadline restores the mask on its recovery
  /// path so the next job's timer fires again.  Switch OFF to reproduce
  /// the paper-faithful broken behavior (bench/table1_termination, tests).
  /// No effect under kSigjmp (mask restored by savesigs=1) / kPeriodicCheck
  /// (no signals).
  bool repair_signal_mask = true;
};

/// Runs `body` with the optional deadline `abs_deadline` (CLOCK_MONOTONIC)
/// under the given strategy.  Must be called on the thread that executes
/// the optional part (per-thread timers are armed on the caller).
TerminationResult run_with_deadline(TerminationStrategy strategy,
                                    Nanos abs_deadline, OptionalBodyRef body,
                                    const TerminationOptions& options = {});

/// Signals used by the timer-driven strategies (exposed for tests).
int sigjmp_signal();
int trycatch_signal();

/// Installs the kSigjmp deadline handler without running a body.  The
/// supervisor's stage-2 escalation delivers sigjmp_signal() straight to a
/// stuck worker thread; this guarantees the process-wide handler exists
/// even if that worker never completed a part (the handler itself no-ops
/// unless the target thread is inside an armed sigsetjmp region).
void ensure_sigjmp_handler_installed();

/// After a kTryCatch termination the signal is left blocked (Table I:
/// "does not save and restore the signal mask information").  This repairs
/// the calling thread's mask; returns true when the signal was indeed
/// found blocked.
bool repair_signal_mask_after_trycatch();

}  // namespace rtseed::core

namespace rtseed::core::detail {
// Strategy implementations (separate TUs; kTryCatch needs special flags).
TerminationResult run_sigjmp(Nanos abs_deadline, OptionalBodyRef body);
TerminationResult run_periodic_check(Nanos abs_deadline,
                                     OptionalBodyRef body);
TerminationResult run_trycatch(Nanos abs_deadline, OptionalBodyRef body,
                               bool repair_signal_mask);
}  // namespace rtseed::core::detail
