// Pool of parallel optional threads implementing the paper's Fig. 6 / 7
// protocol, factored out so both the classic parallel-extended imprecise
// task (one optional phase) and the practical imprecise computation model
// (multiple mandatory parts with an optional phase after each — the
// paper's future work, ref [33]) reuse the same machinery:
//
//   * threads park until the mandatory thread signals them (one wake per
//     thread, never broadcast — paper §IV-C);
//   * each signalled part runs its body under the configured termination
//     strategy with a per-thread one-shot optional-deadline timer;
//   * the last part to end wakes the caller for the next mandatory
//     segment / wind-up part.
//
// Three interchangeable wake backends (A/B-measured by
// bench/micro_wake_path and bench/micro_dispatch):
//
//   kFutexBatch — the default fast path.  Per-slot command words as in
//     kFutexWord, but the fan-out wake is BATCHED through one shared
//     eventcount word (wake_gen_): the signaller publishes all k command
//     words first, bumps the generation once, and issues at most ONE
//     FUTEX_WAKE(INT_MAX) — 1 syscall per fan-out instead of up to k.
//     Workers load the generation, re-check their own command word, and
//     only then sleep on the generation word, so the bump-after-publish
//     ordering makes the per-slot lost-wake window structurally
//     impossible: a worker that reads the new generation must also see
//     its command, and a worker that read the old generation is caught by
//     the kernel's word revalidation at FUTEX_WAIT entry.  Recovery and
//     shutdown reuse the same single batched wake.
//
//   kFutexWord — the per-slot protocol.  Signalling a part is one
//     release-exchange plus one FUTEX_WAKE per parked worker (skipped
//     entirely when the worker is still spinning between back-to-back
//     rounds — workers run a bounded adaptive spin before committing to
//     FUTEX_WAIT).  Kept as the A/B baseline for the batch protocol.
//     In both futex backends round completion is a single atomic
//     countdown whose last decrementer issues at most one wake of the
//     mandatory thread; the timeout/forcing path waits on an absolute
//     CLOCK_MONOTONIC deadline (FUTEX_WAIT_BITSET).  Forcing stragglers
//     is lock-free: each slot owns an atomic force flag that the part's
//     StopToken observes (StopToken::bind_force_flag), so the mandatory
//     thread writes a stable flag instead of dereferencing a pointer into
//     the worker's stack.
//
//   kCondvar — the paper-verbatim per-slot mutex+condvar protocol, kept
//     compiled as the A/B baseline, with its timed wait fixed to run on
//     CLOCK_MONOTONIC (rt::MonotonicCond) instead of assuming
//     steady_clock shares clock_gettime's epoch.
//
// Steady-state allocation contract (DESIGN.md §11): after start(), a
// round performs ZERO heap allocations — slots live in one contiguous
// aligned array, part bodies are inline-storage callables, and per-part
// scratch comes from a slot-owned Arena reset between rounds.
#pragma once

#include <pthread.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/arena.hpp"
#include "common/cacheline.hpp"
#include "common/inplace_function.hpp"
#include "core/task_config.hpp"
#include "fault/supervisor.hpp"
#include "obs/telemetry.hpp"
#include "rt/monotonic_cond.hpp"
#include "rt/thread.hpp"

namespace rtseed::core {

/// How the mandatory thread hands work to (and collects completions from)
/// the optional threads.
enum class WakeBackend {
  kAuto,       ///< kFutexBatch unless overridden via RTSEED_WAKE_BACKEND env
  kFutexBatch, ///< per-slot words + ONE batched wake per fan-out — default
  kFutexWord,  ///< per-slot words + per-slot wakes — the batch A/B baseline
  kCondvar,    ///< legacy mutex+condvar protocol — the paper baseline
};

const char* wake_backend_name(WakeBackend backend);

/// Resolves kAuto: the RTSEED_WAKE_BACKEND environment variable
/// ("futex-batch"/"futex"/"condvar") wins, otherwise kFutexBatch.
/// Explicit requests pass through untouched.
WakeBackend resolve_wake_backend(WakeBackend requested);

class OptionalPool : public fault::SupervisedPool {
 public:
  /// Body of part `part`; invoked on that part's pinned thread.  Under
  /// kSigjmp/kTryCatch it may be abandoned at any instruction.  Inline
  /// storage only — a capture over 64 bytes is a compile error, never a
  /// hidden heap allocation on the dispatch path.
  using PartBody = common::InplaceFunction<
      void(const JobContext&, int part, StopToken&), 64>;

  struct Options {
    TerminationStrategy termination = TerminationStrategy::kSigjmp;
    int fifo_priority = 0;           ///< 0 = best-effort
    std::vector<common::CpuId> cpus; ///< one per part (pool size)
    std::string name_prefix;         ///< thread names: <prefix>.o<k>
    /// Grace past the optional deadline before stop tokens are forced.
    Nanos completion_margin = common::millis(100);
    WakeBackend wake_backend = WakeBackend::kAuto;
    /// Repair the blocked-signal defect of kTryCatch terminations
    /// (TerminationOptions::repair_signal_mask; OFF = paper-faithful).
    bool repair_signal_mask = true;
    /// Capacity of each slot's scratch Arena (JobContext::scratch),
    /// reserved once at pool construction and reset (no frees) before
    /// every part.  0 disables scratch (ctx.scratch == nullptr).
    common::usize scratch_bytes = 4096;
  };

  OptionalPool(Options options, PartBody body);

  OptionalPool(const OptionalPool&) = delete;
  OptionalPool& operator=(const OptionalPool&) = delete;

  /// Joins all threads.
  ~OptionalPool() override;

  int size() const { return num_slots_; }
  common::CpuId cpu(int part) const {
    return options_.cpus[static_cast<size_t>(part)];
  }
  WakeBackend backend() const { return backend_; }

  /// Spawns the (parked) optional threads.
  common::Status start();

  /// Stops and joins all threads (idempotent).  Must not be called
  /// concurrently with run_round (same contract as the seed protocol).
  void shutdown();

  struct RoundResult {
    int completed = 0;
    int terminated = 0;
    Nanos signal_start = 0;        ///< Δb window: the per-part wake loop
    Nanos signal_end = 0;
    Nanos first_part_start = 0;    ///< Δs reference (0 if none started)
    Nanos all_ended = 0;           ///< when the last part ended
  };

  /// Runs one optional phase: signals parts [0, count) with the given job
  /// context (whose optional_deadline bounds this phase), blocks until
  /// every part completed or was terminated.  Must not be called
  /// concurrently with itself.  count is clamped to the pool size.
  RoundResult run_round(const JobContext& ctx, int count);

  /// std::exceptions absorbed from part bodies (logged, part counted as
  /// completed-with-error).
  long body_errors() const {
    return body_errors_.load(std::memory_order_relaxed);
  }

  /// Wakes re-issued by run_round's lost-wake recovery loop: a worker that
  /// committed to sleeping just before the signaller's exchange landed can
  /// miss its wake (the kernel validates the word only at FUTEX_WAIT
  /// entry); the recovery path re-wakes any slot whose command word still
  /// reads ready instead of waiting forever.
  long wake_retries() const {
    return wake_retries_.load(std::memory_order_relaxed);
  }

  // fault::SupervisedPool — the supervisor's view of this pool.  Health is
  // read from per-slot heartbeat words the workers keep with plain relaxed
  // stores (two per part on the hot path).
  int worker_count() const override { return size(); }
  fault::WorkerHealth worker_health(int worker) const override;
  void force_worker(int worker) override;
  bool kill_worker(int worker) override;
  bool respawn_worker(int worker) override;

  /// Attaches the telemetry hub (before start()); each optional thread
  /// registers its own event ring on its setup path.  `telemetry` must
  /// outlive the pool.
  void set_telemetry(obs::Telemetry* telemetry, common::TaskId task) {
    telemetry_ = telemetry;
    task_ = task;
  }

  /// Ring of the thread that calls run_round (the mandatory thread): the
  /// Δb signal-window events are emitted there.  Set from that thread
  /// before the first round.  Ignored unless set_telemetry was called too.
  void set_caller_trace(obs::TraceBuffer* trace) { caller_trace_ = trace; }

 private:
  // Command-word states (kFutexWord backend).  kParked means the worker
  // has committed to sleeping in FUTEX_WAIT — the signaller only pays the
  // wake syscall when it observes this value.
  static constexpr std::uint32_t kCmdIdle = 0;
  static constexpr std::uint32_t kCmdParked = 1;
  static constexpr std::uint32_t kCmdReady = 2;
  static constexpr std::uint32_t kCmdShutdown = 3;

  /// Completion word: low 31 bits = parts still running this round;
  /// bit 31 = the mandatory thread has committed to FUTEX_WAIT (the last
  /// decrementer issues a wake only when it is set).
  static constexpr std::uint32_t kCompletionWaiterBit = 1u << 31;

  struct Slot {
    // Hot handoff word, alone on its cache line: the signal loop touches
    // one line per part, and a worker spinning here never bounces the
    // lines of its neighbours.
    alignas(common::kCacheLine) std::atomic<std::uint32_t> cmd{kCmdIdle};

    // Round context, published before the release-exchange on cmd and
    // read by the worker after its acquire — on a separate line so the
    // job copy does not invalidate a spinning neighbour's word.
    alignas(common::kCacheLine) JobContext job{};
    /// Observed by this part's StopToken (bind_force_flag); written by
    /// the mandatory thread's force-after-margin path.
    std::atomic<bool> force_flag{false};

    // kCondvar backend state (paper Fig. 6 verbatim).
    rt::MonotonicCond cv;
    enum class State { kIdle, kReady, kShutdown } state = State::kIdle;

    // Supervision words (off the handoff line; written by the owning
    // worker with relaxed stores, read by the supervisor's poll).
    // busy_since != 0 means a part is executing; busy_deadline is its OD.
    std::atomic<common::u64> heartbeat{0};
    std::atomic<Nanos> busy_since{0};
    std::atomic<Nanos> busy_deadline{0};
    std::atomic<bool> alive{false};
    std::atomic<pthread_t> handle{};

    /// Per-part scratch handed to the body via JobContext::scratch.
    /// Reserved once at pool construction, reset() (one store) per part —
    /// never resized on the hot path.
    common::Arena scratch;
  };
  // Layout checks: the alignas directives above must actually separate
  // the hot cmd word (offset 0) from the job context — a Slot smaller
  // than two lines would mean they share one.
  static_assert(alignof(Slot) == common::kCacheLine,
                "slot must start cache-line-aligned");
  static_assert(sizeof(Slot) >= 2 * common::kCacheLine,
                "cmd and job must sit on distinct cache lines");

  void thread_main(int part);
  /// Spawns (or re-spawns) worker `part` into threads_[part].  Caller
  /// holds lifecycle_mutex_ (or is single-threaded setup).
  void spawn_worker_locked(int part);
  /// Blocks until cmd != kIdle/kParked; returns kCmdReady or kCmdShutdown.
  std::uint32_t wait_for_command(Slot& slot);
  /// The one batched wake (kFutexBatch): bumps the generation so a worker
  /// between its generation load and FUTEX_WAIT entry cannot sleep past
  /// us, then wakes every sleeper with a single syscall.  Callers publish
  /// all command words FIRST.
  void batch_wake_workers();
  /// Runs one signalled part: timestamps, termination strategy, outcome
  /// counters.  Shared by both backends.
  void execute_part(Slot& slot, int part, const JobContext& job,
                    obs::TraceBuffer* trace);
  /// Waits for the round countdown to hit zero (kFutexWord backend);
  /// abs_deadline < 0 waits forever.  False iff the deadline passed first.
  bool wait_completion_word(Nanos abs_deadline);
  /// Raises the force flags of parts [0, count) — lock-free.
  void force_parts(int count);

  Options options_;
  WakeBackend backend_;
  PartBody body_;

  /// One contiguous cache-line-aligned allocation (no pointer chase per
  /// part in the signal loop).
  common::AlignedArrayPtr<Slot> slots_;
  int num_slots_ = 0;
  /// Guards threads_/started_ against respawn vs shutdown races (the
  /// supervisor respawns from its own thread).  Never taken on the
  /// run_round / execute_part hot path.
  std::mutex lifecycle_mutex_;
  std::vector<rt::RtThread> threads_;
  bool started_ = false;

  // Round-shared words, one cache line each: the completion countdown is
  // hammered by every finishing part, and the per-part result counters
  // must not share its line (or each other's) or the final decrements
  // serialize on cache-line ownership.
  alignas(common::kCacheLine) std::atomic<std::uint32_t> remaining_{0};
  /// kFutexBatch eventcount: bumped once per fan-out (and per recovery /
  /// shutdown broadcast); all parked workers sleep on this one word.
  alignas(common::kCacheLine) std::atomic<std::uint32_t> wake_gen_{0};
  alignas(common::kCacheLine) std::atomic<int> round_completed_{0};
  alignas(common::kCacheLine) std::atomic<int> round_terminated_{0};
  alignas(common::kCacheLine) std::atomic<Nanos> first_part_start_{0};
  alignas(common::kCacheLine) std::atomic<long> body_errors_{0};
  alignas(common::kCacheLine) std::atomic<long> wake_retries_{0};

  // kCondvar backend completion state.
  rt::MonotonicCond completion_cv_;
  int remaining_cv_ = 0;

  obs::Telemetry* telemetry_ = nullptr;
  common::TaskId task_ = common::kInvalidTask;
  obs::TraceBuffer* caller_trace_ = nullptr;
};

}  // namespace rtseed::core
