// Pool of parallel optional threads implementing the paper's Fig. 6 / 7
// protocol, factored out so both the classic parallel-extended imprecise
// task (one optional phase) and the practical imprecise computation model
// (multiple mandatory parts with an optional phase after each — the
// paper's future work, ref [33]) reuse the same machinery:
//
//   * threads park in pthread_cond_wait until the mandatory thread
//     signals them (one cond_signal per thread, never broadcast);
//   * each signalled part runs its body under the configured termination
//     strategy with a per-thread one-shot optional-deadline timer;
//   * the last part to end wakes the caller for the next mandatory
//     segment / wind-up part.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/task_config.hpp"
#include "obs/telemetry.hpp"
#include "rt/thread.hpp"

namespace rtseed::core {

class OptionalPool {
 public:
  /// Body of part `part`; invoked on that part's pinned thread.  Under
  /// kSigjmp/kTryCatch it may be abandoned at any instruction.
  using PartBody =
      std::function<void(const JobContext&, int part, StopToken&)>;

  struct Options {
    TerminationStrategy termination = TerminationStrategy::kSigjmp;
    int fifo_priority = 0;           ///< 0 = best-effort
    std::vector<common::CpuId> cpus; ///< one per part (pool size)
    std::string name_prefix;         ///< thread names: <prefix>.o<k>
    /// Grace past the optional deadline before stop tokens are forced.
    Nanos completion_margin = common::millis(100);
  };

  OptionalPool(Options options, PartBody body);

  OptionalPool(const OptionalPool&) = delete;
  OptionalPool& operator=(const OptionalPool&) = delete;

  /// Joins all threads.
  ~OptionalPool();

  int size() const { return static_cast<int>(slots_.size()); }
  common::CpuId cpu(int part) const {
    return options_.cpus[static_cast<size_t>(part)];
  }

  /// Spawns the (parked) optional threads.
  common::Status start();

  /// Stops and joins all threads (idempotent).
  void shutdown();

  struct RoundResult {
    int completed = 0;
    int terminated = 0;
    Nanos signal_start = 0;        ///< Δb window: the cond_signal loop
    Nanos signal_end = 0;
    Nanos first_part_start = 0;    ///< Δs reference (0 if none started)
    Nanos all_ended = 0;           ///< when the last part ended
  };

  /// Runs one optional phase: signals parts [0, count) with the given job
  /// context (whose optional_deadline bounds this phase), blocks until
  /// every part completed or was terminated.  Must not be called
  /// concurrently with itself.  count is clamped to the pool size.
  RoundResult run_round(const JobContext& ctx, int count);

  /// std::exceptions absorbed from part bodies (logged, part counted as
  /// completed-with-error).
  long body_errors() const {
    return body_errors_.load(std::memory_order_relaxed);
  }

  /// Attaches the telemetry hub (before start()); each optional thread
  /// registers its own event ring on its setup path.  `telemetry` must
  /// outlive the pool.
  void set_telemetry(obs::Telemetry* telemetry, common::TaskId task) {
    telemetry_ = telemetry;
    task_ = task;
  }

  /// Ring of the thread that calls run_round (the mandatory thread): the
  /// Δb signal-window events are emitted there.  Set from that thread
  /// before the first round.
  void set_caller_trace(obs::TraceBuffer* trace) { caller_trace_ = trace; }

 private:
  struct Slot {
    std::mutex mutex;
    std::condition_variable cv;
    enum class State { kIdle, kReady, kShutdown } state = State::kIdle;
    JobContext job{};
    StopToken* active_token = nullptr;
  };

  void thread_main(int part);

  Options options_;
  PartBody body_;

  std::vector<std::unique_ptr<Slot>> slots_;
  std::vector<rt::RtThread> threads_;
  bool started_ = false;

  std::mutex completion_mutex_;
  std::condition_variable completion_cv_;
  int remaining_ = 0;

  std::atomic<int> round_completed_{0};
  std::atomic<int> round_terminated_{0};
  std::atomic<Nanos> first_part_start_{0};
  std::atomic<long> body_errors_{0};

  obs::Telemetry* telemetry_ = nullptr;
  common::TaskId task_ = common::kInvalidTask;
  obs::TraceBuffer* caller_trace_ = nullptr;
};

}  // namespace rtseed::core
