#include "core/trace_export.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>

namespace rtseed::core {

namespace {

void append_event(std::string& out, const char* name, int pid, double ts_us,
                  double dur_us, bool first) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s{\"name\":\"%s\",\"ph\":\"X\",\"pid\":%d,\"tid\":%d,"
                "\"ts\":%.3f,\"dur\":%.3f}",
                first ? "" : ",\n", name, pid, pid, ts_us, dur_us);
  out += buf;
}

void append_instant(std::string& out, const char* name, int pid,
                    double ts_us) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                ",\n{\"name\":\"%s\",\"ph\":\"i\",\"pid\":%d,\"tid\":%d,"
                "\"ts\":%.3f,\"s\":\"t\"}",
                name, pid, pid, ts_us);
  out += buf;
}

}  // namespace

std::string render_chrome_trace(const std::vector<TaskTrace>& tasks) {
  // Anchor at the earliest release so timestamps are small and aligned.
  Nanos anchor = std::numeric_limits<Nanos>::max();
  for (const auto& task : tasks) {
    for (const auto& rec : task.records) {
      anchor = std::min(anchor, rec.release);
    }
  }
  if (anchor == std::numeric_limits<Nanos>::max()) anchor = 0;
  auto us = [&](Nanos t) { return common::to_micros(t - anchor); };

  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  int pid = 1;
  for (const auto& task : tasks) {
    for (const auto& rec : task.records) {
      const std::string mand = task.name + "/mandatory";
      append_event(out, mand.c_str(), pid, us(rec.mandatory_start),
                   common::to_micros(rec.mandatory_end - rec.mandatory_start),
                   first);
      first = false;
      if (rec.optionals_ran && rec.first_optional_start > 0) {
        const std::string opt = task.name + "/optional-window";
        append_event(out, opt.c_str(), pid, us(rec.first_optional_start),
                     common::to_micros(rec.windup_start -
                                       rec.first_optional_start),
                     false);
      }
      const std::string wind = task.name + "/wind-up";
      append_event(out, wind.c_str(), pid, us(rec.windup_start),
                   common::to_micros(rec.windup_end - rec.windup_start),
                   false);
      append_instant(out, (task.name + "/OD").c_str(), pid,
                     us(rec.optional_deadline));
      if (!rec.deadline_met) {
        append_instant(out, (task.name + "/DEADLINE-MISS").c_str(), pid,
                       us(rec.deadline));
      }
    }
    ++pid;
  }
  out += "\n]}\n";
  return out;
}

common::Status write_chrome_trace(const std::string& path,
                                  const std::vector<TaskTrace>& tasks) {
  std::ofstream out(path);
  if (!out) return common::unavailable("cannot open " + path);
  out << render_chrome_trace(tasks);
  return out.good() ? common::Status::ok()
                    : common::unavailable("write failed: " + path);
}

}  // namespace rtseed::core
