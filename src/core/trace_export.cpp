#include "core/trace_export.hpp"

#include <algorithm>
#include <fstream>
#include <limits>

#include "obs/chrome_trace.hpp"

namespace rtseed::core {

// Summary-only export from per-job records.  Rendering (JSON escaping of
// task names, arbitrary name lengths, comma placement) is delegated to
// obs::ChromeTraceBuilder — the same document builder the live
// obs::Telemetry Perfetto exporter uses.
std::string render_chrome_trace(const std::vector<TaskTrace>& tasks) {
  // Anchor at the earliest release so timestamps are small and aligned.
  Nanos anchor = std::numeric_limits<Nanos>::max();
  for (const auto& task : tasks) {
    for (const auto& rec : task.records) {
      anchor = std::min(anchor, rec.release);
    }
  }
  if (anchor == std::numeric_limits<Nanos>::max()) anchor = 0;
  auto us = [&](Nanos t) { return common::to_micros(t - anchor); };

  obs::ChromeTraceBuilder builder;
  int pid = 1;
  for (const auto& task : tasks) {
    builder.set_process_name(pid, task.name);
    for (const auto& rec : task.records) {
      builder.add_complete(task.name + "/mandatory", pid, pid,
                           us(rec.mandatory_start),
                           common::to_micros(rec.mandatory_end -
                                             rec.mandatory_start));
      if (rec.optionals_ran && rec.first_optional_start > 0) {
        builder.add_complete(task.name + "/optional-window", pid, pid,
                             us(rec.first_optional_start),
                             common::to_micros(rec.windup_start -
                                               rec.first_optional_start));
      }
      builder.add_complete(task.name + "/wind-up", pid, pid,
                           us(rec.windup_start),
                           common::to_micros(rec.windup_end -
                                             rec.windup_start));
      builder.add_instant(task.name + "/OD", pid, pid,
                          us(rec.optional_deadline));
      if (!rec.deadline_met) {
        builder.add_instant(task.name + "/DEADLINE-MISS", pid, pid,
                            us(rec.deadline));
      }
    }
    ++pid;
  }
  return builder.render();
}

common::Status write_chrome_trace(const std::string& path,
                                  const std::vector<TaskTrace>& tasks) {
  std::ofstream out(path);
  if (!out) return common::unavailable("cannot open " + path);
  out << render_chrome_trace(tasks);
  return out.good() ? common::Status::ok()
                    : common::unavailable("write failed: " + path);
}

}  // namespace rtseed::core
