// Runtime for the PRACTICAL imprecise computation model — multiple
// mandatory parts with an optional phase after each (the paper's stated
// future work, ref [33]), scheduled by RMWP-MP (sched/mrmwp.hpp).
//
// Per job, the mandatory thread runs
//
//   segment 0 → phase 0 (parallel, ✂ OD⁰) → segment 1 → phase 1 (✂ OD¹)
//             → ... → final segment → sleep until next release
//
// reusing the same OptionalPool protocol as ImpreciseTask: each phase's
// parts are signalled individually, bounded by that phase's offline
// optional deadline, and a phase whose preceding segment overran its ODᵏ
// is discarded outright (never signalled).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/fixed_vector.hpp"
#include "common/inplace_function.hpp"
#include "common/spsc_ring.hpp"
#include "core/assignment.hpp"
#include "core/imprecise_task.hpp"
#include "core/optional_pool.hpp"
#include "sched/mrmwp.hpp"
#include "rt/thread.hpp"
#include "rt/topology.hpp"

namespace rtseed::core {

struct MultiPhaseCallbacks {
  /// Mandatory segment `segment` (0-based).
  common::InplaceFunction<void(const JobContext&, int segment), 64> mandatory;
  /// Part `part` of optional phase `phase`; same constraints as the
  /// single-phase optional callback (pure CPU-bound, abandonable).
  common::InplaceFunction<void(const JobContext&, int phase, int part,
                               StopToken&),
                          64>
      optional;
};

struct MultiPhaseConfig {
  sched::MultiPhaseTaskParams params;
  MultiPhaseCallbacks callbacks;
  long num_jobs = 0;  ///< 0 = run until stop()
};

struct MultiPhasePlacement {
  int processor = 0;
  int mandatory_priority = 0;
  int optional_priority = 0;
  /// ODᵏ per phase, relative to release (from analyze_mrmwp).
  std::vector<Nanos> optional_deadline_offsets;
};

/// Builds the single-task placement from the RMWP-MP analysis.
/// FAILED_PRECONDITION when the task is not schedulable alone.
common::Expected<MultiPhasePlacement> plan_single_multi_phase(
    const sched::MultiPhaseTaskParams& params);

struct PhaseOutcome {
  int completed = 0;
  int terminated = 0;
  int discarded = 0;
};

inline constexpr int kMaxPhases = 8;

struct MultiPhaseJobRecord {
  common::JobId job = 0;
  Nanos release = 0;
  Nanos deadline = 0;
  Nanos finished = 0;
  bool deadline_met = false;
  common::FixedVector<PhaseOutcome, kMaxPhases> phases;
};

class MultiPhaseTask {
 public:
  MultiPhaseTask(MultiPhaseConfig config, MultiPhasePlacement placement,
                 TaskRuntimeOptions options, const rt::Topology& topology);

  MultiPhaseTask(const MultiPhaseTask&) = delete;
  MultiPhaseTask& operator=(const MultiPhaseTask&) = delete;
  ~MultiPhaseTask();

  common::Status start();
  void stop();
  void wait_finished();

  const MultiPhaseConfig& config() const { return config_; }

  std::vector<MultiPhaseJobRecord> drain_records();
  long callback_errors() const {
    return callback_errors_.load(std::memory_order_relaxed) +
           pool_->body_errors();
  }

 private:
  void mandatory_loop();
  void run_one_job(common::JobId job_index, Nanos release);
  void mark_finished();

  const MultiPhaseConfig config_;
  const MultiPhasePlacement placement_;
  const TaskRuntimeOptions options_;
  const rt::Topology& topology_;

  std::unique_ptr<OptionalPool> pool_;
  std::unique_ptr<rt::RtThread> mandatory_thread_;
  std::atomic<int> current_phase_{0};

  std::atomic<bool> active_{false};
  /// Wait word for wait_finished (rt::wait_word fast path): 0 = running,
  /// 1 = finished.
  std::atomic<std::uint32_t> finished_word_{0};
  bool started_ = false;

  common::SpscRing<MultiPhaseJobRecord> records_;
  std::atomic<common::u64> records_dropped_{0};
  std::atomic<long> callback_errors_{0};
};

}  // namespace rtseed::core
