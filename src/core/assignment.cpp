#include "core/assignment.hpp"

#include <algorithm>
#include <cassert>

namespace rtseed::core {

namespace {

/// Core visiting order for kTopologyAware: the mandatory core (avoid_core)
/// is excluded while any other core exists; cores sharing its LLC come
/// first, then the rest grouped by LLC domain; index order breaks ties so
/// the result is deterministic.  Setup-path only — never called per job.
std::vector<int> topology_core_order(const common::Topology& topology,
                                     int avoid_core) {
  const int cores = topology.num_cores();
  std::vector<int> order;
  order.reserve(static_cast<size_t>(cores));
  for (int c = 0; c < cores; ++c) {
    if (c != avoid_core) order.push_back(c);
  }
  if (order.empty()) order.push_back(avoid_core);  // single-core machine
  const int home_llc =
      (avoid_core >= 0 && avoid_core < cores) ? topology.llc_of(avoid_core)
                                              : -1;
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    const int la = topology.llc_of(a);
    const int lb = topology.llc_of(b);
    const int rank_a = la == home_llc ? -1 : la;
    const int rank_b = lb == home_llc ? -1 : lb;
    return rank_a < rank_b;
  });
  return order;
}

}  // namespace

const char* assignment_policy_name(AssignmentPolicy policy) {
  switch (policy) {
    case AssignmentPolicy::kOneByOne:
      return "one-by-one";
    case AssignmentPolicy::kTwoByTwo:
      return "two-by-two";
    case AssignmentPolicy::kAllByAll:
      return "all-by-all";
    case AssignmentPolicy::kTopologyAware:
      return "topology-aware";
  }
  return "?";
}

CpuId assign_cpu(const common::Topology& topology, AssignmentPolicy policy,
                 int part_index, int avoid_core) {
  assert(part_index >= 0);
  const int cores = topology.num_cores();
  const int smt = topology.smt_per_core();
  const int cpus = cores * smt;

  if (policy == AssignmentPolicy::kTopologyAware) {
    const auto order = topology_core_order(topology, avoid_core);
    const int usable = static_cast<int>(order.size()) * smt;
    const int j = part_index % usable;  // wrap over the non-mandatory CPUs
    // Sibling packing: fill every hardware thread of a core before moving
    // to the next (the co-located parts share L1/L2).
    const int core = order[static_cast<size_t>(j / smt)];
    const int sibling = j % smt;
    return topology.cpu_at(core, sibling);
  }

  const int j = part_index % cpus;  // wrap when more parts than CPUs
  int core = 0;
  int sibling = 0;
  switch (policy) {
    case AssignmentPolicy::kOneByOne: {
      core = j % cores;
      sibling = j / cores;
      break;
    }
    case AssignmentPolicy::kTwoByTwo: {
      const int group = std::min(2, smt);
      const int per_round = group * cores;
      const int round = j / per_round;
      const int within = j % per_round;
      core = within / group;
      sibling = round * group + within % group;
      break;
    }
    case AssignmentPolicy::kAllByAll: {
      core = j / smt;
      sibling = j % smt;
      break;
    }
    case AssignmentPolicy::kTopologyAware:
      break;  // handled above
  }
  return topology.cpu_at(core, sibling % smt);
}

std::vector<CpuId> assign_optional_parts(const common::Topology& topology,
                                         AssignmentPolicy policy,
                                         int num_parts, int avoid_core) {
  std::vector<CpuId> cpus;
  cpus.reserve(static_cast<size_t>(std::max(0, num_parts)));
  for (int j = 0; j < num_parts; ++j) {
    cpus.push_back(assign_cpu(topology, policy, j, avoid_core));
  }
  return cpus;
}

std::vector<int> parts_per_core(const common::Topology& topology,
                                AssignmentPolicy policy, int num_parts,
                                int avoid_core) {
  std::vector<int> counts(static_cast<size_t>(topology.num_cores()), 0);
  for (int j = 0; j < num_parts; ++j) {
    const CpuId cpu = assign_cpu(topology, policy, j, avoid_core);
    ++counts[static_cast<size_t>(topology.core_of(cpu))];
  }
  return counts;
}

}  // namespace rtseed::core
