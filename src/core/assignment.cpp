#include "core/assignment.hpp"

#include <algorithm>
#include <cassert>

namespace rtseed::core {

const char* assignment_policy_name(AssignmentPolicy policy) {
  switch (policy) {
    case AssignmentPolicy::kOneByOne:
      return "one-by-one";
    case AssignmentPolicy::kTwoByTwo:
      return "two-by-two";
    case AssignmentPolicy::kAllByAll:
      return "all-by-all";
  }
  return "?";
}

CpuId assign_cpu(const rt::Topology& topology, AssignmentPolicy policy,
                 int part_index) {
  assert(part_index >= 0);
  const int cores = topology.num_cores();
  const int smt = topology.smt_per_core();
  const int cpus = cores * smt;
  const int j = part_index % cpus;  // wrap when more parts than CPUs

  int core = 0;
  int sibling = 0;
  switch (policy) {
    case AssignmentPolicy::kOneByOne: {
      core = j % cores;
      sibling = j / cores;
      break;
    }
    case AssignmentPolicy::kTwoByTwo: {
      const int group = std::min(2, smt);
      const int per_round = group * cores;
      const int round = j / per_round;
      const int within = j % per_round;
      core = within / group;
      sibling = round * group + within % group;
      break;
    }
    case AssignmentPolicy::kAllByAll: {
      core = j / smt;
      sibling = j % smt;
      break;
    }
  }
  return topology.cpu_at(core, sibling % smt);
}

std::vector<CpuId> assign_optional_parts(const rt::Topology& topology,
                                         AssignmentPolicy policy,
                                         int num_parts) {
  std::vector<CpuId> cpus;
  cpus.reserve(static_cast<size_t>(std::max(0, num_parts)));
  for (int j = 0; j < num_parts; ++j) {
    cpus.push_back(assign_cpu(topology, policy, j));
  }
  return cpus;
}

std::vector<int> parts_per_core(const rt::Topology& topology,
                                AssignmentPolicy policy, int num_parts) {
  std::vector<int> counts(static_cast<size_t>(topology.num_cores()), 0);
  for (int j = 0; j < num_parts; ++j) {
    const CpuId cpu = assign_cpu(topology, policy, j);
    ++counts[static_cast<size_t>(topology.core_of(cpu))];
  }
  return counts;
}

}  // namespace rtseed::core
