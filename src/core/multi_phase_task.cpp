#include "core/multi_phase_task.hpp"

#include <algorithm>
#include <limits>

#include "common/rt_logger.hpp"
#include "rt/futex.hpp"
#include "rt/priority.hpp"
#include "rt/periodic_clock.hpp"

namespace rtseed::core {

common::Expected<MultiPhasePlacement> plan_single_multi_phase(
    const sched::MultiPhaseTaskParams& params) {
  if (auto st = params.validate(); !st) return st;
  const auto analysis = sched::analyze_mrmwp({params});
  if (!analysis.schedulable) {
    return common::failed_precondition(params.name +
                                       ": not RMWP-MP schedulable");
  }
  MultiPhasePlacement placement;
  placement.processor = 0;
  placement.mandatory_priority = rt::rt_capabilities().sched_fifo ? 98 : 0;
  placement.optional_priority =
      rt::rt_capabilities().sched_fifo
          ? rt::optional_priority_for(placement.mandatory_priority)
          : 0;
  placement.optional_deadline_offsets = analysis.optional_deadline[0];
  return placement;
}

namespace {

// Pool size: the widest phase (phases reuse the same threads serially).
int max_parts(const sched::MultiPhaseTaskParams& params) {
  int widest = 0;
  for (const auto& phase : params.optional) {
    widest = std::max(widest, static_cast<int>(phase.size()));
  }
  return widest;
}

}  // namespace

MultiPhaseTask::MultiPhaseTask(MultiPhaseConfig config,
                               MultiPhasePlacement placement,
                               TaskRuntimeOptions options,
                               const rt::Topology& topology)
    : config_(std::move(config)),
      placement_(std::move(placement)),
      options_(options),
      topology_(topology),
      records_(1024) {
  OptionalPool::Options pool_options;
  pool_options.termination = options_.termination;
  pool_options.fifo_priority = placement_.optional_priority;
  // placement.processor is the mandatory thread's core index; under
  // kTopologyAware the optional parts stay off it (see assignment.hpp).
  const int mandatory_core =
      placement_.processor >= 0 && placement_.processor < topology.num_cores()
          ? placement_.processor
          : -1;
  pool_options.cpus = assign_optional_parts(
      topology, options_.policy, max_parts(config_.params), mandatory_core);
  pool_options.name_prefix = config_.params.name;
  pool_options.completion_margin = options_.completion_margin;
  pool_options.wake_backend = options_.wake_backend;
  pool_ = std::make_unique<OptionalPool>(
      std::move(pool_options),
      [this](const JobContext& ctx, int part, StopToken& token) {
        if (config_.callbacks.optional) {
          config_.callbacks.optional(
              ctx, current_phase_.load(std::memory_order_acquire), part,
              token);
        }
      });
}

MultiPhaseTask::~MultiPhaseTask() { stop(); }

common::Status MultiPhaseTask::start() {
  if (started_) return common::failed_precondition("task already started");
  if (static_cast<int>(placement_.optional_deadline_offsets.size()) <
      config_.params.num_phases()) {
    return common::invalid_argument(
        "placement is missing optional deadlines for some phases");
  }
  if (config_.params.num_phases() > kMaxPhases) {
    return common::invalid_argument("too many optional phases");
  }
  started_ = true;
  active_.store(true, std::memory_order_release);
  finished_word_.store(0, std::memory_order_release);

  if (auto st = pool_->start(); !st) return st;

  rt::ThreadConfig mc;
  mc.name = config_.params.name + ".m";
  mc.fifo_priority = placement_.mandatory_priority;
  mc.affinity =
      rt::CpuSet::single(topology_.cpu_at(placement_.processor, 0));
  mandatory_thread_ =
      std::make_unique<rt::RtThread>(mc, [this] { mandatory_loop(); });
  return common::Status::ok();
}

void MultiPhaseTask::stop() {
  if (!started_) return;
  active_.store(false, std::memory_order_release);
  if (mandatory_thread_) mandatory_thread_->join();
  pool_->shutdown();
  mandatory_thread_.reset();
  started_ = false;
  mark_finished();
}

void MultiPhaseTask::mark_finished() {
  finished_word_.store(1, std::memory_order_release);
  rt::wake_word(finished_word_, std::numeric_limits<int>::max());
}

void MultiPhaseTask::wait_finished() {
  rt::wait_word(finished_word_, 0);
}

void MultiPhaseTask::mandatory_loop() {
  rt::PeriodicClock clock(config_.params.period, options_.initial_offset);
  clock.start();

  // num_jobs counts EXECUTED jobs; releases skipped by overruns do not.
  const long max_jobs = config_.num_jobs;
  long executed = 0;
  while (active_.load(std::memory_order_acquire)) {
    if (max_jobs > 0 && executed >= max_jobs) break;
    const Nanos release = clock.wait_next_release();
    if (!active_.load(std::memory_order_acquire)) break;
    run_one_job(clock.job_index(), release);
    ++executed;
  }

  mark_finished();
}

void MultiPhaseTask::run_one_job(common::JobId job_index, Nanos release) {
  const auto& params = config_.params;
  const int segments = params.num_segments();
  const int phases = params.num_phases();

  MultiPhaseJobRecord rec;
  rec.job = job_index;
  rec.release = release;
  rec.deadline = release + params.effective_deadline();

  JobContext ctx;
  ctx.job = job_index;
  ctx.release = release;
  ctx.deadline = rec.deadline;

  for (int segment = 0; segment < segments; ++segment) {
    if (config_.callbacks.mandatory) {
      try {
        config_.callbacks.mandatory(ctx, segment);
      } catch (const std::exception& e) {
        callback_errors_.fetch_add(1, std::memory_order_relaxed);
        common::global_logger().error("%s: exception in segment %d: %s",
                                      params.name.c_str(), segment, e.what());
      }
    }

    if (segment >= phases) continue;  // no optional phase after this one
    const auto parts = static_cast<int>(
        params.optional[static_cast<size_t>(segment)].size());
    PhaseOutcome outcome;
    const Nanos abs_od =
        release +
        placement_.optional_deadline_offsets[static_cast<size_t>(segment)];
    if (parts > 0 && common::monotonic_now() < abs_od) {
      current_phase_.store(segment, std::memory_order_release);
      ctx.optional_deadline = abs_od;
      const auto round = pool_->run_round(ctx, parts);
      outcome.completed = round.completed;
      outcome.terminated = round.terminated;
    } else {
      // The segment overran its phase's optional deadline: the whole
      // phase is discarded and the next mandatory segment runs at once.
      outcome.discarded = parts;
    }
    rec.phases.push_back(outcome);
  }

  rec.finished = common::monotonic_now();
  rec.deadline_met = rec.finished <= rec.deadline;
  if (!records_.try_push(rec)) {
    records_dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::vector<MultiPhaseJobRecord> MultiPhaseTask::drain_records() {
  std::vector<MultiPhaseJobRecord> out;
  while (auto rec = records_.try_pop()) out.push_back(*rec);
  return out;
}

}  // namespace rtseed::core
