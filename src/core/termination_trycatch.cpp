// try-catch termination (Table I row 3).
//
// The deadline timer's signal handler throws; the exception unwinds out of
// the optional part into the catch below.  This terminates at any time,
// BUT the kernel delivered the signal with itself added to the thread's
// mask, and unwinding out of the handler skips sigreturn — so the signal
// stays blocked and the NEXT job's deadline timer never interrupts.  That
// defect is exactly what the paper's Table I records, and tests assert it
// via repair_signal_mask_after_trycatch().
//
// This translation unit is compiled with -fnon-call-exceptions and
// -fasynchronous-unwind-tables so g++ permits throwing across the
// asynchronous signal frame.  The strategy is reproduced for the Table-I
// experiment; production users should use kSigjmp.
#include <csignal>

#include "core/termination.hpp"
#include "fault/injector.hpp"
#include "rt/oneshot_timer.hpp"
#include "rt/signal_guard.hpp"

namespace rtseed::core {

int trycatch_signal() { return SIGRTMIN + 4; }

bool repair_signal_mask_after_trycatch() {
  const bool was_blocked = rt::is_signal_blocked(trycatch_signal());
  (void)rt::unblock_signal(trycatch_signal());
  return was_blocked;
}

namespace detail {
namespace {

struct DeadlineExpired {};

thread_local volatile sig_atomic_t t_armed = 0;

[[noreturn]] void throwing_handler(int /*signo*/) {
  t_armed = 0;
  throw DeadlineExpired{};
}

void install_handler_once() {
  static const bool installed = [] {
    struct sigaction act {};
    act.sa_handler = throwing_handler;
    sigemptyset(&act.sa_mask);
    act.sa_flags = 0;
    return sigaction(trycatch_signal(), &act, nullptr) == 0;
  }();
  (void)installed;
}

rt::OneShotTimer& thread_timer() {
  thread_local rt::OneShotTimer timer;
  if (!timer.created()) (void)timer.create(trycatch_signal());
  return timer;
}

}  // namespace

TerminationResult run_trycatch(Nanos abs_deadline, OptionalBodyRef body,
                               bool repair_signal_mask) {
  install_handler_once();
  (void)rt::unblock_signal(trycatch_signal());
  auto& timer = thread_timer();

  TerminationResult result;
  StopToken token(abs_deadline);
  try {
    t_armed = 1;
    if (!fault::try_fire(fault::InjectPoint::kTimerMisfire)) {
      (void)timer.arm_absolute(abs_deadline);
    }
    body(token);
    t_armed = 0;
    (void)timer.disarm();
    result.outcome = OptionalOutcome::kCompleted;
  } catch (const DeadlineExpired&) {
    (void)timer.disarm();
    result.outcome = OptionalOutcome::kTerminated;
    if (repair_signal_mask) {
      // The Table-I defect, fixed: unwinding out of the handler skipped
      // sigreturn, so undo the kernel's entry-time block here.
      (void)rt::unblock_signal(trycatch_signal());
    }
    // else: paper-faithful — the signal stays blocked until someone calls
    // repair_signal_mask_after_trycatch().
  }
  result.finished_at = common::monotonic_now();
  return result;
}

}  // namespace detail
}  // namespace rtseed::core
