// User-facing task description: timing parameters (the imprecise model)
// plus the three part callbacks the paper exposes as class Task's
// execMandatory / execOptional / execWindup member functions (§IV-C).
#pragma once

#include <string>

#include "common/arena.hpp"
#include "common/inplace_function.hpp"
#include "core/termination.hpp"
#include "sched/task_model.hpp"

namespace rtseed::core {

using common::JobId;
using common::Nanos;

/// Timing context of the current job, passed to every callback.
/// All times are absolute CLOCK_MONOTONIC nanoseconds.
struct JobContext {
  JobId job = 0;               ///< 0-based job index
  Nanos release = 0;           ///< this job's release time
  Nanos deadline = 0;          ///< release + Dᵢ
  Nanos optional_deadline = 0; ///< release + ODᵢ (computed offline)
  /// Per-part scratch, owned by the executing worker's slot and recycled
  /// (reset, O(1), no frees) before each part.  Bodies that need dynamic-
  /// looking storage bump-allocate here instead of touching the heap; the
  /// pointer is null for callbacks outside an optional part (mandatory /
  /// wind-up) and when the pool was configured with scratch_bytes = 0.
  common::Arena* scratch = nullptr;
};

/// The three parts of a parallel-extended imprecise task.  Inline-storage
/// callables (not std::function): assignment happens on the setup path
/// but a capture that outgrows the inline capacity would silently move
/// construction cost — and with std::function, a potential allocation —
/// onto copies made near the hot path, so oversize is a compile error.
struct TaskCallbacks {
  /// Mandatory part — e.g. obtain exchange data (paper §II-A).
  common::InplaceFunction<void(const JobContext&), 64> mandatory;
  /// k-th parallel optional part — e.g. technical/fundamental analysis.
  /// May be abandoned at any instruction under kSigjmp/kTryCatch; must
  /// poll the token under kPeriodicCheck.  Must not acquire resources.
  common::InplaceFunction<void(const JobContext&, int part_index, StopToken&),
                          64>
      optional;
  /// Wind-up part — e.g. collect results and emit the trading decision.
  common::InplaceFunction<void(const JobContext&), 64> windup;
};

struct TaskConfig {
  /// Timing model; params.name doubles as the task/thread name.
  sched::ImpreciseTaskParams params;
  TaskCallbacks callbacks;
  /// Number of jobs to run; 0 = run until Runtime::stop().
  long num_jobs = 0;
};

}  // namespace rtseed::core
