// User-facing task description: timing parameters (the imprecise model)
// plus the three part callbacks the paper exposes as class Task's
// execMandatory / execOptional / execWindup member functions (§IV-C).
#pragma once

#include <functional>
#include <string>

#include "core/termination.hpp"
#include "sched/task_model.hpp"

namespace rtseed::core {

using common::JobId;
using common::Nanos;

/// Timing context of the current job, passed to every callback.
/// All times are absolute CLOCK_MONOTONIC nanoseconds.
struct JobContext {
  JobId job = 0;               ///< 0-based job index
  Nanos release = 0;           ///< this job's release time
  Nanos deadline = 0;          ///< release + Dᵢ
  Nanos optional_deadline = 0; ///< release + ODᵢ (computed offline)
};

/// The three parts of a parallel-extended imprecise task.
struct TaskCallbacks {
  /// Mandatory part — e.g. obtain exchange data (paper §II-A).
  std::function<void(const JobContext&)> mandatory;
  /// k-th parallel optional part — e.g. technical/fundamental analysis.
  /// May be abandoned at any instruction under kSigjmp/kTryCatch; must
  /// poll the token under kPeriodicCheck.  Must not acquire resources.
  std::function<void(const JobContext&, int part_index, StopToken&)> optional;
  /// Wind-up part — e.g. collect results and emit the trading decision.
  std::function<void(const JobContext&)> windup;
};

struct TaskConfig {
  /// Timing model; params.name doubles as the task/thread name.
  sched::ImpreciseTaskParams params;
  TaskCallbacks callbacks;
  /// Number of jobs to run; 0 = run until Runtime::stop().
  long num_jobs = 0;
};

}  // namespace rtseed::core
