#include "core/runtime.hpp"

#include <cstdio>

#include "common/rt_logger.hpp"
#include "fault/injector.hpp"
#include "rt/memory_lock.hpp"

namespace rtseed::core {

namespace {

common::u64 telemetry_clock_thunk(void* ctx) {
  return static_cast<obs::Telemetry*>(ctx)->now();
}

}  // namespace

Runtime::Runtime(RuntimeOptions options) : options_(std::move(options)) {
  if (options_.telemetry.enabled) {
    telemetry_ = std::make_unique<obs::Telemetry>(options_.telemetry);
    control_trace_ = telemetry_->register_thread("runtime");
    // Stamp injector fire records with the event stream's clock so the
    // attribution join (obs/attribution.hpp) shares one time base.
    if (fault::Injector* injector = fault::active_injector()) {
      injector->set_timestamp_source(&telemetry_clock_thunk,
                                     telemetry_.get());
    }
  }
}

Runtime::~Runtime() { stop(); }

common::Status Runtime::admit(TaskConfig config) {
  if (started_) {
    return common::failed_precondition("cannot admit tasks after start()");
  }
  if (config.params.name.empty()) {
    config.params.name = "task" + std::to_string(configs_.size() + 1);
  }
  if (auto st = config.params.validate(); !st) return st;
  configs_.push_back(std::move(config));
  plan_.reset();  // invalidate any previous analysis
  return common::Status::ok();
}

common::Expected<sched::PRmwpPlan> Runtime::analyze() {
  if (configs_.empty()) {
    return common::failed_precondition("no tasks admitted");
  }
  if (plan_) return *plan_;

  sched::TaskSet set;
  for (const auto& config : configs_) set.add(config.params);
  auto plan = sched::plan_p_rmwp(set, options_.topology.num_cores(),
                                 options_.analysis);
  if (!plan.schedulable) {
    return common::failed_precondition("task set not P-RMWP schedulable: " +
                                       plan.diagnostics);
  }
  plan_ = std::make_unique<sched::PRmwpPlan>(std::move(plan));
  return *plan_;
}

common::Status Runtime::start() {
  if (started_) return common::failed_precondition("already started");
  auto plan = analyze();
  if (!plan) return plan.status();

  if (options_.lock_memory) {
    if (auto st = rt::lock_all_memory(); !st) {
      common::global_logger().warn("memory locking unavailable: %s",
                                   st.to_string().c_str());
    }
  }

  for (size_t i = 0; i < configs_.size(); ++i) {
    const auto& task_plan = plan->tasks[i];
    TaskPlacement placement;
    placement.processor = task_plan.processor;
    placement.mandatory_priority = task_plan.mandatory_priority;
    placement.optional_priority = task_plan.optional_priority;
    placement.optional_deadline_offset = task_plan.optional_deadline;

    TaskRuntimeOptions rt_options;
    rt_options.termination = options_.termination;
    rt_options.policy = options_.policy;
    rt_options.completion_margin = options_.completion_margin;
    rt_options.initial_offset = options_.initial_offset;
    rt_options.wake_backend = options_.wake_backend;
    rt_options.watchdog = options_.watchdog;
    rt_options.breaker = options_.breaker;
    rt_options.repair_signal_mask = options_.repair_signal_mask;

    auto task = std::make_unique<ImpreciseTask>(
        static_cast<common::TaskId>(i), configs_[i], placement, rt_options,
        options_.topology);
    if (options_.mirror_queues) {
      task->set_transition_observer(
          [this](common::TaskId id, TaskTransition tr, Nanos now) {
            on_transition(id, tr, now);
          });
    }
    if (options_.on_deadline_miss) {
      task->set_miss_observer(options_.on_deadline_miss);
    }
    if (options_.on_budget_overrun) {
      task->set_overrun_observer(options_.on_budget_overrun);
    }
    if (telemetry_) task->set_telemetry(telemetry_.get());
    tasks_.push_back(std::move(task));
  }
  if (options_.supervisor.enabled) {
    supervisor_ = std::make_unique<fault::Supervisor>(options_.supervisor);
    for (size_t i = 0; i < tasks_.size(); ++i) {
      supervisor_->watch(tasks_[i]->pool(), static_cast<common::TaskId>(i),
                         configs_[i].params.name);
    }
    if (telemetry_) supervisor_->set_telemetry(telemetry_.get());
  }
  for (auto& task : tasks_) {
    if (auto st = task->start(); !st) {
      stop();
      return st;
    }
  }
  if (supervisor_) {
    if (auto st = supervisor_->start(); !st) {
      common::global_logger().warn("supervisor unavailable: %s",
                                   st.to_string().c_str());
    }
  }
  started_ = true;
  if (telemetry_) {
    telemetry_->metrics()
        .gauge("rtseed_rt_degraded",
               "1 when SCHED_FIFO or affinity was denied (best-effort run)")
        ->set((!rt::rt_capabilities().sched_fifo ||
               !rt::rt_capabilities().affinity)
                  ? 1.0
                  : 0.0);
    control_trace_->emit({telemetry_->now(), common::kInvalidTask, 0, 0,
                          obs::EventKind::kRuntimeStart});
  }
  return common::Status::ok();
}

void Runtime::wait_all_finished() {
  for (auto& task : tasks_) {
    if (task->config().num_jobs > 0) task->wait_finished();
  }
}

void Runtime::stop() {
  if (started_ && control_trace_ != nullptr) {
    control_trace_->emit({telemetry_->now(), common::kInvalidTask, 0, 0,
                          obs::EventKind::kRuntimeStop});
  }
  // Supervisor first: its kill/respawn paths must never race the pools'
  // shutdown joins.
  if (supervisor_) supervisor_->stop();
  for (auto& task : tasks_) task->stop();
}

obs::TelemetrySnapshot Runtime::telemetry_snapshot() {
  if (!telemetry_) return {};
  return telemetry_->snapshot();
}

RuntimeReport Runtime::stop_and_report() {
  RuntimeReport report;
  report.rt_degraded = !rt::rt_capabilities().sched_fifo ||
                       !rt::rt_capabilities().affinity;
  if (supervisor_) {
    supervisor_->stop();
    report.supervisor = supervisor_->stats();
  }
  for (size_t i = 0; i < tasks_.size(); ++i) {
    auto& task = *tasks_[i];
    task.stop();
    TaskReport tr;
    tr.name = configs_[i].params.name;
    if (plan_) tr.plan = plan_->tasks[i];
    tr.records = task.drain_records();
    tr.qos = summarize_qos(tr.records);
    tr.overheads = summarize_overheads(tr.records);
    tr.dropped_records = task.dropped_records();
    tr.budget_overruns = task.budget_overruns();
    tr.wake_retries = task.pool()->wake_retries();
    for (const auto& rec : tr.records) {
      if (rec.aborted) ++tr.jobs_aborted;
    }
    if (const auto* breaker = task.breaker()) {
      tr.breaker_transitions = breaker->transitions();
      tr.jobs_shed = breaker->jobs_shed();
      tr.breaker_shed_level = breaker->shed_level();
    }
    report.tasks.push_back(std::move(tr));
  }
  supervisor_.reset();
  tasks_.clear();
  started_ = false;
  return report;
}

void Runtime::on_transition(common::TaskId task, TaskTransition transition,
                            Nanos now) {
  const auto& plan = plan_->tasks[static_cast<size_t>(task)];
  std::lock_guard lock(queues_mutex_);
  queues_.remove(task);
  switch (transition) {
    case TaskTransition::kReleased:
    case TaskTransition::kWindupStarted:
    case TaskTransition::kOptionalsDiscarded:
      queues_.enqueue(task, plan.mandatory_priority);
      break;
    case TaskTransition::kOptionalsStarted:
      queues_.enqueue(task, plan.optional_priority);
      break;
    case TaskTransition::kJobFinished:
      queues_.sleep_until(
          task, now + configs_[static_cast<size_t>(task)].params.period);
      break;
  }
}

Runtime::QueueSnapshot Runtime::queue_snapshot() const {
  std::lock_guard lock(queues_mutex_);
  QueueSnapshot snap;
  snap.hpq = queues_.size(QueueKind::kHpq);
  snap.rtq = queues_.size(QueueKind::kRtq);
  snap.nrtq = queues_.size(QueueKind::kNrtq);
  snap.sq = queues_.size(QueueKind::kSq);
  return snap;
}

std::string RuntimeReport::to_string() const {
  std::string out;
  char line[256];
  for (const auto& task : tasks) {
    std::snprintf(line, sizeof(line),
                  "%s: proc=%d prio=%d/%d OD=%s  %s\n", task.name.c_str(),
                  task.plan.processor, task.plan.mandatory_priority,
                  task.plan.optional_priority,
                  common::format_duration(task.plan.optional_deadline).c_str(),
                  task.qos.to_string().c_str());
    out += line;
    std::snprintf(line, sizeof(line),
                  "  overheads[us]: dm{%s} db{%s} ds{%s} de{%s}\n",
                  task.overheads.delta_m.to_string().c_str(),
                  task.overheads.delta_b.to_string().c_str(),
                  task.overheads.delta_s.to_string().c_str(),
                  task.overheads.delta_e.to_string().c_str());
    out += line;
    if (task.budget_overruns > 0 || task.jobs_aborted > 0 ||
        task.wake_retries > 0 || task.breaker_transitions > 0 ||
        task.jobs_shed > 0) {
      std::snprintf(line, sizeof(line),
                    "  resilience: overruns=%ld aborted=%ld wake-retries=%ld "
                    "breaker{transitions=%llu shed-jobs=%llu level=%d}\n",
                    task.budget_overruns, task.jobs_aborted, task.wake_retries,
                    static_cast<unsigned long long>(task.breaker_transitions),
                    static_cast<unsigned long long>(task.jobs_shed),
                    task.breaker_shed_level);
      out += line;
    }
  }
  if (supervisor.stalls_detected > 0 || supervisor.forced > 0 ||
      supervisor.killed > 0 || supervisor.respawned > 0) {
    std::snprintf(line, sizeof(line),
                  "supervisor: stalls=%llu forced=%llu killed=%llu "
                  "respawned=%llu\n",
                  static_cast<unsigned long long>(supervisor.stalls_detected),
                  static_cast<unsigned long long>(supervisor.forced),
                  static_cast<unsigned long long>(supervisor.killed),
                  static_cast<unsigned long long>(supervisor.respawned));
    out += line;
  }
  if (rt_degraded) {
    out += "(real-time degraded: SCHED_FIFO or affinity unavailable)\n";
  }
  return out;
}

}  // namespace rtseed::core
