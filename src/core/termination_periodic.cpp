// Periodic-check termination (Table I row 2): no timer — the body itself
// polls StopToken::should_stop() and returns when the optional deadline has
// passed.  Termination latency is therefore bounded only by the body's
// polling period, which is why the paper rejects this strategy for QoS.
#include "core/termination.hpp"

namespace rtseed::core::detail {

TerminationResult run_periodic_check(Nanos abs_deadline,
                                     OptionalBodyRef body) {
  StopToken token(abs_deadline);
  body(token);

  TerminationResult result;
  result.finished_at = common::monotonic_now();
  // If the body returned past the deadline it stopped because of the token
  // (or too late either way): count it as terminated, not completed.
  result.outcome = result.finished_at >= abs_deadline
                       ? OptionalOutcome::kTerminated
                       : OptionalOutcome::kCompleted;
  return result;
}

}  // namespace rtseed::core::detail
