#include "core/termination.hpp"

namespace rtseed::core {

const char* termination_strategy_name(TerminationStrategy strategy) {
  switch (strategy) {
    case TerminationStrategy::kSigjmp:
      return "sigsetjmp/siglongjmp";
    case TerminationStrategy::kPeriodicCheck:
      return "periodic-check";
    case TerminationStrategy::kTryCatch:
      return "try-catch";
  }
  return "?";
}

const char* optional_outcome_name(OptionalOutcome outcome) {
  switch (outcome) {
    case OptionalOutcome::kCompleted:
      return "completed";
    case OptionalOutcome::kTerminated:
      return "terminated";
    case OptionalOutcome::kDiscarded:
      return "discarded";
  }
  return "?";
}

TerminationResult run_with_deadline(TerminationStrategy strategy,
                                    Nanos abs_deadline, OptionalBodyRef body,
                                    const TerminationOptions& options) {
  switch (strategy) {
    case TerminationStrategy::kSigjmp:
      return detail::run_sigjmp(abs_deadline, body);
    case TerminationStrategy::kPeriodicCheck:
      return detail::run_periodic_check(abs_deadline, body);
    case TerminationStrategy::kTryCatch:
      return detail::run_trycatch(abs_deadline, body,
                                  options.repair_signal_mask);
  }
  return {};
}

}  // namespace rtseed::core
