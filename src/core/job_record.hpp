// Per-job measurement record.  Produced on the mandatory thread, moved off
// the real-time path through an SPSC ring, aggregated by the Runtime.
//
// The four overheads of the paper's evaluation (§V-B, Fig. 9) derive from
// these timestamps:
//   Δm = mandatory_start − release            (begin mandatory part)
//   Δb = signal_end − signal_start            (begin parallel optional parts:
//                                              the pthread_cond_signal loop)
//   Δs = first_optional_start − signal_end    (switch mandatory→optional)
//   Δe = windup_start − optional_deadline     (end parallel optional parts;
//                                              meaningful when they overran)
#pragma once

#include "common/time.hpp"
#include "common/types.hpp"

namespace rtseed::core {

using common::JobId;
using common::Nanos;

struct JobRecord {
  JobId job = 0;
  Nanos release = 0;
  Nanos deadline = 0;
  Nanos optional_deadline = 0;

  Nanos mandatory_start = 0;
  Nanos mandatory_end = 0;
  Nanos signal_start = 0;         ///< 0 when optionals were discarded
  Nanos signal_end = 0;
  Nanos first_optional_start = 0; ///< 0 when none started
  Nanos windup_start = 0;
  Nanos windup_end = 0;

  int optional_completed = 0;
  int optional_terminated = 0;
  int optional_discarded = 0;
  /// Optional parts this job was not allowed to start — withheld by the
  /// overload circuit breaker or by the budget-overrun policy (distinct
  /// from optional_discarded, where the MANDATORY part ran past the OD).
  int optional_shed = 0;

  bool optionals_ran = false;
  bool deadline_met = false;
  /// Budget watchdog verdicts (DESIGN.md §9.2): the part ran past
  /// WCET × factor + slack.
  bool mandatory_overrun = false;
  bool windup_overrun = false;
  /// The job was cut short at a checkpoint by OverrunPolicy::kAbortJob or
  /// kDemoteThread (its wind-up part never ran).
  bool aborted = false;

  Nanos delta_m() const { return mandatory_start - release; }
  Nanos delta_b() const {
    return optionals_ran ? signal_end - signal_start : 0;
  }
  Nanos delta_s() const {
    return (optionals_ran && first_optional_start > 0)
               ? first_optional_start - signal_end
               : 0;
  }
  /// Only meaningful when at least one optional part overran its deadline.
  Nanos delta_e() const {
    return (optionals_ran && optional_terminated > 0)
               ? windup_start - optional_deadline
               : 0;
  }
};

/// Task-level state transitions, mirrored into the user-space ReadyQueues
/// (paper Figs. 4/5) when an observer is attached.
enum class TaskTransition {
  kReleased,           ///< job released: task enters RTQ (mandatory part)
  kOptionalsStarted,   ///< mandatory done: task's optionals enter NRTQ,
                       ///< mandatory thread sleeps until OD (SQ)
  kOptionalsDiscarded, ///< mandatory ran past OD: straight to wind-up
  kWindupStarted,      ///< OD expired: task re-enters RTQ (wind-up part)
  kJobFinished,        ///< wind-up done: task sleeps until next release (SQ)
};

}  // namespace rtseed::core
