// User-space mirror of RT-Seed's ready-queue structure (paper Figs. 4, 5).
//
// On Linux the kernel's per-CPU SCHED_FIFO runqueues do the actual
// dispatching; RT-Seed only sets priorities, pins threads, and sleeps them.
// This class makes the paper's logical queue structure explicit so it can
// be (a) asserted against in tests, (b) reported by the runtime, and
// (c) used as the *actual* dispatcher inside the discrete-event simulator:
//
//   HPQ   priority 99        highest-priority task (e.g. RM-US heavy)
//   RTQ   priorities [50,98] tasks ready to run mandatory or wind-up parts,
//                            rate-monotonic order
//   NRTQ  priorities [1,49]  tasks ready to run optional parts, RM order
//   SQ    (no priority)      tasks sleeping until OD or next release,
//                            sorted by increasing wake-up time
//
// Each priority level is a FIFO (the kernel uses a double circular linked
// list; a deque is the value-semantic equivalent).
#pragma once

#include <array>
#include <deque>
#include <optional>
#include <vector>

#include "common/time.hpp"
#include "common/types.hpp"

namespace rtseed::core {

using common::Nanos;
using common::TaskId;
using common::usize;

enum class QueueKind { kHpq, kRtq, kNrtq, kSq };

const char* queue_kind_name(QueueKind kind);

/// Which band a SCHED_FIFO priority belongs to (SQ is not priority-mapped).
QueueKind queue_for_priority(int priority);

class ReadyQueues {
 public:
  ReadyQueues();

  /// Enqueues `task` at `priority` (tail of that FIFO level).
  /// Priority selects HPQ/RTQ/NRTQ per the band map.
  void enqueue(TaskId task, int priority);

  /// Removes `task` wherever it is queued; false when absent.
  bool remove(TaskId task);

  /// Highest-priority ready task (HPQ, then RTQ, then NRTQ), without
  /// removing it.
  std::optional<TaskId> peek_highest() const;

  /// Pops and returns the highest-priority ready task.
  std::optional<TaskId> pop_highest();

  /// Sleep queue, ordered by increasing wake time (paper: "sorted by
  /// increasing release time order").
  void sleep_until(TaskId task, Nanos wake_time);

  /// Earliest wake time in SQ.
  std::optional<Nanos> next_wake_time() const;

  /// Pops every task whose wake time is <= now.
  std::vector<TaskId> pop_expired(Nanos now);

  bool contains(TaskId task, QueueKind kind) const;
  usize size(QueueKind kind) const;
  bool empty() const;

 private:
  struct SleepEntry {
    Nanos wake_time;
    TaskId task;
    bool operator<(const SleepEntry& other) const {
      if (wake_time != other.wake_time) return wake_time < other.wake_time;
      return task < other.task;
    }
  };

  static constexpr int kLevels = 100;  // priorities 0..99; 0 unused
  std::array<std::deque<TaskId>, kLevels> levels_;
  std::vector<SleepEntry> sleep_;  // kept sorted
};

}  // namespace rtseed::core
