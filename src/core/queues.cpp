#include "core/queues.hpp"

#include <algorithm>
#include <cassert>

#include "rt/priority.hpp"

namespace rtseed::core {

const char* queue_kind_name(QueueKind kind) {
  switch (kind) {
    case QueueKind::kHpq:
      return "HPQ";
    case QueueKind::kRtq:
      return "RTQ";
    case QueueKind::kNrtq:
      return "NRTQ";
    case QueueKind::kSq:
      return "SQ";
  }
  return "?";
}

QueueKind queue_for_priority(int priority) {
  if (priority == rt::kHpqPriority) return QueueKind::kHpq;
  if (rt::is_mandatory_priority(priority)) return QueueKind::kRtq;
  return QueueKind::kNrtq;
}

ReadyQueues::ReadyQueues() = default;

void ReadyQueues::enqueue(TaskId task, int priority) {
  assert(priority >= rt::kMinFifoPriority && priority <= rt::kMaxFifoPriority);
  levels_[static_cast<usize>(priority)].push_back(task);
}

bool ReadyQueues::remove(TaskId task) {
  bool removed = false;
  for (auto& level : levels_) {
    const auto end = std::remove(level.begin(), level.end(), task);
    if (end != level.end()) {
      level.erase(end, level.end());
      removed = true;
    }
  }
  const auto end = std::remove_if(
      sleep_.begin(), sleep_.end(),
      [&](const SleepEntry& e) { return e.task == task; });
  if (end != sleep_.end()) {
    sleep_.erase(end, sleep_.end());
    removed = true;
  }
  return removed;
}

std::optional<TaskId> ReadyQueues::peek_highest() const {
  for (int p = rt::kMaxFifoPriority; p >= rt::kMinFifoPriority; --p) {
    const auto& level = levels_[static_cast<usize>(p)];
    if (!level.empty()) return level.front();
  }
  return std::nullopt;
}

std::optional<TaskId> ReadyQueues::pop_highest() {
  for (int p = rt::kMaxFifoPriority; p >= rt::kMinFifoPriority; --p) {
    auto& level = levels_[static_cast<usize>(p)];
    if (!level.empty()) {
      const TaskId task = level.front();
      level.pop_front();
      return task;
    }
  }
  return std::nullopt;
}

void ReadyQueues::sleep_until(TaskId task, Nanos wake_time) {
  const SleepEntry entry{wake_time, task};
  const auto pos = std::upper_bound(sleep_.begin(), sleep_.end(), entry);
  sleep_.insert(pos, entry);
}

std::optional<Nanos> ReadyQueues::next_wake_time() const {
  if (sleep_.empty()) return std::nullopt;
  return sleep_.front().wake_time;
}

std::vector<TaskId> ReadyQueues::pop_expired(Nanos now) {
  std::vector<TaskId> expired;
  while (!sleep_.empty() && sleep_.front().wake_time <= now) {
    expired.push_back(sleep_.front().task);
    sleep_.erase(sleep_.begin());
  }
  return expired;
}

bool ReadyQueues::contains(TaskId task, QueueKind kind) const {
  switch (kind) {
    case QueueKind::kHpq: {
      const auto& level = levels_[static_cast<usize>(rt::kHpqPriority)];
      return std::find(level.begin(), level.end(), task) != level.end();
    }
    case QueueKind::kRtq: {
      for (int p = rt::kMandatoryMin; p <= rt::kMandatoryMax; ++p) {
        const auto& level = levels_[static_cast<usize>(p)];
        if (std::find(level.begin(), level.end(), task) != level.end()) {
          return true;
        }
      }
      return false;
    }
    case QueueKind::kNrtq: {
      for (int p = rt::kOptionalMin; p <= rt::kOptionalMax; ++p) {
        const auto& level = levels_[static_cast<usize>(p)];
        if (std::find(level.begin(), level.end(), task) != level.end()) {
          return true;
        }
      }
      return false;
    }
    case QueueKind::kSq: {
      return std::find_if(sleep_.begin(), sleep_.end(),
                          [&](const SleepEntry& e) {
                            return e.task == task;
                          }) != sleep_.end();
    }
  }
  return false;
}

usize ReadyQueues::size(QueueKind kind) const {
  usize count = 0;
  switch (kind) {
    case QueueKind::kHpq:
      return levels_[static_cast<usize>(rt::kHpqPriority)].size();
    case QueueKind::kRtq:
      for (int p = rt::kMandatoryMin; p <= rt::kMandatoryMax; ++p) {
        count += levels_[static_cast<usize>(p)].size();
      }
      return count;
    case QueueKind::kNrtq:
      for (int p = rt::kOptionalMin; p <= rt::kOptionalMax; ++p) {
        count += levels_[static_cast<usize>(p)].size();
      }
      return count;
    case QueueKind::kSq:
      return sleep_.size();
  }
  return 0;
}

bool ReadyQueues::empty() const {
  return size(QueueKind::kHpq) == 0 && size(QueueKind::kRtq) == 0 &&
         size(QueueKind::kNrtq) == 0 && sleep_.empty();
}

}  // namespace rtseed::core
