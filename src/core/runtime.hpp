// RT-Seed runtime facade — the middleware's public entry point.
//
//   rtseed::core::Runtime runtime(options);
//   runtime.admit(task_config);            // any number of tasks
//   auto plan = runtime.analyze();         // offline P-RMWP analysis
//   runtime.start();                       // spawn threads, begin periods
//   runtime.wait_all_finished();           // or: run, then stop()
//   auto report = runtime.stop_and_report();
//
// analyze() runs the full offline pipeline (partitioning, RM priorities,
// optional deadlines) described in §IV-B; start() realizes the plan with
// SCHED_FIFO threads and never requires kernel modifications.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/imprecise_task.hpp"
#include "core/queues.hpp"
#include "core/qos.hpp"
#include "fault/supervisor.hpp"
#include "obs/telemetry.hpp"
#include "sched/p_rmwp.hpp"

namespace rtseed::core {

struct RuntimeOptions {
  rt::Topology topology = rt::Topology::native();
  AssignmentPolicy policy = AssignmentPolicy::kOneByOne;
  TerminationStrategy termination = TerminationStrategy::kSigjmp;
  /// Mandatory↔optional handoff: futex word fast path (default) or the
  /// legacy condvar protocol (A/B baseline; see core::WakeBackend).
  WakeBackend wake_backend = WakeBackend::kAuto;
  sched::PRmwpOptions analysis;
  /// Mirror task transitions into a user-space ReadyQueues structure
  /// (observable via queue_snapshot(); small locking cost per transition).
  bool mirror_queues = false;
  /// mlockall() before spawning real-time threads (page faults inside
  /// mandatory/wind-up parts add unbounded latency).  Denial degrades
  /// gracefully, like SCHED_FIFO denial.
  bool lock_memory = false;
  /// Invoked (on the missing task's mandatory thread, so keep it cheap)
  /// whenever a job's wind-up part completes past its deadline.
  std::function<void(common::TaskId, const JobRecord&)> on_deadline_miss;
  /// Invoked (mandatory thread, keep it cheap) when a mandatory/wind-up
  /// part overran its WCET budget, after the OverrunPolicy was applied.
  std::function<void(common::TaskId, fault::BudgetPart, const JobRecord&)>
      on_budget_overrun;
  /// Per-job budget watchdog over mandatory/wind-up parts (off by default).
  fault::WatchdogConfig watchdog;
  /// Overload circuit breaker shedding optional parallelism (off by
  /// default); one breaker per task.
  fault::BreakerConfig breaker;
  /// Worker supervision: heartbeat monitoring, stall escalation, respawn
  /// of dead optional workers (off by default).
  fault::SupervisorConfig supervisor;
  /// Repair the blocked-signal defect of kTryCatch terminations between
  /// jobs (Table I row 3).  ON by default; OFF reproduces the published
  /// broken behavior (bench/table1_termination measures it explicitly).
  bool repair_signal_mask = true;
  Nanos completion_margin = common::millis(100);
  Nanos initial_offset = common::millis(10);
  /// Runtime telemetry (src/obs): per-thread event rings + metrics
  /// registry + Perfetto/Prometheus exporters.  Off by default; when off
  /// no telemetry object exists and every emit site costs one untaken
  /// branch (no locks, no allocation).
  obs::TelemetryOptions telemetry;
};

struct TaskReport {
  std::string name;
  sched::TaskPlan plan;
  QosSummary qos;
  OverheadSummary overheads;
  std::vector<JobRecord> records;
  common::u64 dropped_records = 0;

  // Resilience counters (all zero when the fault layer is off).
  long budget_overruns = 0;     ///< mandatory/wind-up budget violations
  long jobs_aborted = 0;        ///< jobs cut short by the overrun policy
  long wake_retries = 0;        ///< lost-wake recovery re-wakes
  common::u64 breaker_transitions = 0;
  common::u64 jobs_shed = 0;    ///< jobs that ran with reduced np
  int breaker_shed_level = 0;   ///< shed level at shutdown
};

struct RuntimeReport {
  std::vector<TaskReport> tasks;
  bool rt_degraded = false;  ///< some SCHED_FIFO/affinity request was denied
  fault::SupervisorStats supervisor;  ///< zeros when supervision is off
  std::string to_string() const;
};

class Runtime {
 public:
  explicit Runtime(RuntimeOptions options);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Registers a task.  FAILED_PRECONDITION once started; INVALID_ARGUMENT
  /// when the task parameters are malformed.
  common::Status admit(TaskConfig config);

  /// Runs the offline analysis over all admitted tasks.  Idempotent; also
  /// invoked lazily by start().  Fails when the set is not P-RMWP
  /// schedulable.
  common::Expected<sched::PRmwpPlan> analyze();

  /// Spawns all tasks.  FAILED_PRECONDITION when already started or when
  /// the analysis rejects the task set.
  common::Status start();

  /// Blocks until every task with a finite num_jobs has finished.
  void wait_all_finished();

  /// Stops all tasks (joining their threads) and produces the report.
  RuntimeReport stop_and_report();

  /// Stops without reporting.
  void stop();

  bool started() const { return started_; }
  int num_tasks() const { return static_cast<int>(configs_.size()); }
  const rt::Topology& topology() const { return options_.topology; }

  /// Snapshot of the mirrored queue sizes (requires mirror_queues).
  struct QueueSnapshot {
    usize hpq = 0, rtq = 0, nrtq = 0, sq = 0;
  };
  QueueSnapshot queue_snapshot() const;

  /// The telemetry hub (nullptr when RuntimeOptions::telemetry is off).
  /// Exporters take it directly: obs::render_perfetto_trace(snapshot),
  /// obs::render_prometheus(telemetry()->metrics()).
  obs::Telemetry* telemetry() { return telemetry_.get(); }

  /// Drains the event rings and returns everything collected so far
  /// (empty snapshot when telemetry is off).  Callable mid-run — the
  /// rings are SPSC, so draining never perturbs the producers.
  obs::TelemetrySnapshot telemetry_snapshot();

 private:
  void on_transition(common::TaskId task, TaskTransition transition, Nanos now);

  RuntimeOptions options_;
  std::vector<TaskConfig> configs_;
  std::unique_ptr<sched::PRmwpPlan> plan_;
  std::vector<std::unique_ptr<ImpreciseTask>> tasks_;
  /// Stopped BEFORE the tasks (its kill/respawn paths touch their pools).
  std::unique_ptr<fault::Supervisor> supervisor_;
  bool started_ = false;

  std::unique_ptr<obs::Telemetry> telemetry_;
  obs::TraceBuffer* control_trace_ = nullptr;  ///< start()/stop() events

  mutable std::mutex queues_mutex_;
  ReadyQueues queues_;
};

}  // namespace rtseed::core
