#include "core/qos.hpp"

#include <algorithm>
#include <cstdio>

namespace rtseed::core {

OverheadSummary summarize_overheads(const std::vector<JobRecord>& records) {
  std::vector<double> dm, db, ds, de;
  for (const auto& rec : records) {
    dm.push_back(common::to_micros(rec.delta_m()));
    if (rec.optionals_ran) {
      db.push_back(common::to_micros(rec.delta_b()));
      if (rec.first_optional_start > 0) {
        ds.push_back(common::to_micros(rec.delta_s()));
      }
      if (rec.optional_terminated > 0) {
        de.push_back(common::to_micros(rec.delta_e()));
      }
    }
  }
  OverheadSummary out;
  out.delta_m = common::summarize(std::move(dm));
  out.delta_b = common::summarize(std::move(db));
  out.delta_s = common::summarize(std::move(ds));
  out.delta_e = common::summarize(std::move(de));
  return out;
}

QosSummary summarize_qos(const std::vector<JobRecord>& records) {
  QosSummary out;
  double window_use_sum = 0.0;
  long window_jobs = 0;
  for (const auto& rec : records) {
    ++out.jobs;
    if (!rec.deadline_met) ++out.deadline_misses;
    out.optional_completed += rec.optional_completed;
    out.optional_terminated += rec.optional_terminated;
    out.optional_discarded += rec.optional_discarded;
    if (rec.optionals_ran && rec.first_optional_start > 0) {
      const auto window =
          static_cast<double>(rec.optional_deadline - rec.mandatory_end);
      if (window > 0) {
        const auto used = static_cast<double>(
            std::min(rec.windup_start, rec.optional_deadline) -
            rec.first_optional_start);
        window_use_sum += std::clamp(used / window, 0.0, 1.0);
        ++window_jobs;
      }
    }
  }
  out.mean_optional_window_use =
      window_jobs > 0 ? window_use_sum / static_cast<double>(window_jobs) : 0.0;
  return out;
}

std::string QosSummary::to_string() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "jobs=%ld misses=%ld optional{completed=%ld terminated=%ld "
                "discarded=%ld} window-use=%.3f",
                jobs, deadline_misses, optional_completed, optional_terminated,
                optional_discarded, mean_optional_window_use);
  return buf;
}

}  // namespace rtseed::core
