#include "core/imprecise_task.hpp"

#include <algorithm>

#include <limits>

#include "common/rt_logger.hpp"
#include "fault/injector.hpp"
#include "obs/flight_recorder.hpp"
#include "rt/futex.hpp"
#include "rt/periodic_clock.hpp"

namespace rtseed::core {

namespace {

// An exception escaping a user callback must not tear down the middleware:
// the job continues (degraded QoS / empty part), the error is counted and
// logged from the non-real-time drain.
template <typename Fn>
bool run_guarded(const char* part, const char* task, Fn&& fn) {
  try {
    fn();
    return true;
  } catch (const std::exception& e) {
    common::global_logger().error("%s: exception in %s part: %s", task, part,
                                  e.what());
  } catch (...) {
    common::global_logger().error("%s: unknown exception in %s part", task,
                                  part);
  }
  return false;
}

}  // namespace

ImpreciseTask::ImpreciseTask(common::TaskId id, TaskConfig config,
                             TaskPlacement placement,
                             TaskRuntimeOptions options,
                             const rt::Topology& topology)
    : id_(id),
      config_(std::move(config)),
      placement_(placement),
      options_(options),
      topology_(topology),
      records_(4096) {
  OptionalPool::Options pool_options;
  pool_options.termination = options_.termination;
  pool_options.fifo_priority = placement_.optional_priority;
  // kTopologyAware keeps optional parts off the mandatory thread's
  // physical core (placement.processor is a core index) and fills its LLC
  // domain first; the paper's three policies ignore the hint.
  const int mandatory_core =
      placement_.processor >= 0 && placement_.processor < topology.num_cores()
          ? placement_.processor
          : -1;
  pool_options.cpus =
      assign_optional_parts(topology, options_.policy,
                            config_.params.num_optional(), mandatory_core);
  pool_options.name_prefix = config_.params.name;
  pool_options.completion_margin = options_.completion_margin;
  pool_options.wake_backend = options_.wake_backend;
  pool_options.repair_signal_mask = options_.repair_signal_mask;
  pool_ = std::make_unique<OptionalPool>(
      std::move(pool_options),
      [this](const JobContext& ctx, int part, StopToken& token) {
        if (config_.callbacks.optional) {
          config_.callbacks.optional(ctx, part, token);
        }
      });
  if (options_.breaker.enabled) {
    breaker_ = std::make_unique<fault::CircuitBreaker>(options_.breaker);
  }
}

ImpreciseTask::~ImpreciseTask() { stop(); }

void ImpreciseTask::set_telemetry(obs::Telemetry* telemetry) {
  telemetry_ = telemetry;
  if (telemetry_ == nullptr) return;
  telemetry_->set_task_name(id_, config_.params.name);
  task_metrics_ = telemetry_->register_task_metrics(
      config_.params.name, termination_strategy_name(options_.termination));
  pool_->set_telemetry(telemetry_, id_);
}

void ImpreciseTask::emit(obs::EventKind kind, JobId job, common::i32 arg) {
  if (trace_ == nullptr) return;  // telemetry disabled: one untaken branch
  trace_->emit({telemetry_->now(), id_, job, arg, kind});
}

void ImpreciseTask::record_overheads(const JobRecord& rec) {
  if (task_metrics_.delta_m == nullptr) return;
  // Tail histograms record nanoseconds (JobRecord timestamps are ns).
  task_metrics_.delta_m->record(static_cast<common::u64>(rec.delta_m()));
  if (rec.optionals_ran) {
    task_metrics_.delta_b->record(static_cast<common::u64>(rec.delta_b()));
    if (rec.first_optional_start > 0) {
      task_metrics_.delta_s->record(static_cast<common::u64>(rec.delta_s()));
    }
    // Δe is only meaningful when at least one part overran its deadline
    // and had to be terminated (JobRecord::delta_e()).
    if (rec.optional_terminated > 0) {
      task_metrics_.delta_e->record(static_cast<common::u64>(rec.delta_e()));
    }
  }
  if (rec.windup_end >= rec.release) {
    task_metrics_.response_time->record(
        static_cast<common::u64>(rec.windup_end - rec.release));
  }
}

common::CpuId ImpreciseTask::optional_cpu(int part_index) const {
  return pool_->cpu(part_index);
}

common::Status ImpreciseTask::start() {
  if (started_) return common::failed_precondition("task already started");
  started_ = true;
  active_.store(true, std::memory_order_release);
  finished_word_.store(0, std::memory_order_release);

  // Optional threads first: they park in cond_wait before any job runs.
  if (auto st = pool_->start(); !st) return st;

  rt::ThreadConfig mc;
  mc.name = config_.params.name + ".m";
  mc.fifo_priority = placement_.mandatory_priority;
  mc.affinity =
      rt::CpuSet::single(topology_.cpu_at(placement_.processor, 0));
  mandatory_thread_ =
      std::make_unique<rt::RtThread>(mc, [this] { mandatory_loop(); });
  return common::Status::ok();
}

void ImpreciseTask::stop() {
  if (!started_) return;
  active_.store(false, std::memory_order_release);
  if (mandatory_thread_) mandatory_thread_->join();
  pool_->shutdown();
  mandatory_thread_.reset();
  started_ = false;
  mark_finished();
}

void ImpreciseTask::mark_finished() {
  finished_word_.store(1, std::memory_order_release);
  rt::wake_word(finished_word_, std::numeric_limits<int>::max());
}

void ImpreciseTask::wait_finished() {
  rt::wait_word(finished_word_, 0);
}

void ImpreciseTask::notify_transition(TaskTransition transition, Nanos now) {
  if (observer_) observer_(id_, transition, now);
}

void ImpreciseTask::mandatory_loop() {
  // Register the event ring on the thread's setup path, before the first
  // release: run_one_job then never locks or allocates to emit.
  if (telemetry_ != nullptr) {
    trace_ = telemetry_->register_thread(
        config_.params.name + ".m",
        topology_.cpu_at(placement_.processor, 0));
    pool_->set_caller_trace(trace_);
  }

  // The budget watchdog's timer must be created on the thread it targets.
  if (options_.watchdog.enabled) {
    if (auto st = watchdog_.init(); !st) {
      common::global_logger().warn("%s: budget watchdog unavailable: %s",
                                   config_.params.name.c_str(),
                                   st.to_string().c_str());
    }
  }

  rt::PeriodicClock clock(config_.params.period, options_.initial_offset);
  clock.start();

  // num_jobs counts EXECUTED jobs (the paper: "the number of jobs
  // executed in task τ1 is set to 100"): releases skipped because a
  // previous job overran do not count.
  const long max_jobs = config_.num_jobs;
  long executed = 0;
  while (active_.load(std::memory_order_acquire)) {
    if (max_jobs > 0 && executed >= max_jobs) break;
    const Nanos release = clock.wait_next_release();
    if (!active_.load(std::memory_order_acquire)) break;
    run_one_job(clock.job_index(), release);
    ++executed;
  }

  mark_finished();
}

bool ImpreciseTask::handle_budget_overrun(fault::BudgetPart part,
                                          JobRecord& rec) {
  const fault::OverrunPolicy policy = options_.watchdog.policy;
  budget_overruns_.fetch_add(1, std::memory_order_relaxed);
  if (part == fault::BudgetPart::kMandatory) {
    rec.mandatory_overrun = true;
  } else {
    rec.windup_overrun = true;
  }
  emit(obs::EventKind::kBudgetOverrun, rec.job, static_cast<common::i32>(part));
  if (task_metrics_.budget_overruns) task_metrics_.budget_overruns->increment();
  common::global_logger().warn("%s: %s budget overrun on job %ld (policy %s)",
                               config_.params.name.c_str(),
                               fault::budget_part_name(part), rec.job,
                               fault::overrun_policy_name(policy));
  const bool abort = policy == fault::OverrunPolicy::kAbortJob ||
                     policy == fault::OverrunPolicy::kDemoteThread;
  if (policy == fault::OverrunPolicy::kDemoteThread && !demoted_) {
    // The last rung: a task that keeps lying about its WCET loses its
    // right to preempt well-behaved tasks.  Once per task lifetime.
    demoted_ = true;
    if (rt::demote_current_thread()) {
      common::global_logger().warn("%s: demoted mandatory thread to %s",
                                   config_.params.name.c_str(), "SCHED_OTHER");
    }
  }
  if (abort) {
    rec.aborted = true;
    if (task_metrics_.jobs_aborted) task_metrics_.jobs_aborted->increment();
    // The job is being cut short: preserve the recent event history
    // before the abort path tears the in-flight state down.
    obs::flight_trigger("budget-overrun");
  }
  if (overrun_observer_) {
    if (!run_guarded("overrun-observer", config_.params.name.c_str(),
                     [&] { overrun_observer_(id_, part, rec); })) {
      callback_errors_.fetch_add(1, std::memory_order_relaxed);
      if (task_metrics_.callback_errors) {
        task_metrics_.callback_errors->increment();
      }
    }
  }
  return abort;
}

void ImpreciseTask::run_one_job(JobId job_index, Nanos release) {
  const auto& params = config_.params;
  const int np = params.num_optional();

  JobRecord rec;
  rec.job = job_index;
  rec.release = release;
  rec.deadline = release + params.effective_deadline();
  rec.optional_deadline = release + placement_.optional_deadline_offset;

  rec.mandatory_start = common::monotonic_now();
  notify_transition(TaskTransition::kReleased, rec.mandatory_start);
  emit(obs::EventKind::kJobRelease, job_index);
  if (task_metrics_.jobs_released) task_metrics_.jobs_released->increment();

  JobContext ctx;
  ctx.job = job_index;
  ctx.release = release;
  ctx.deadline = rec.deadline;
  ctx.optional_deadline = rec.optional_deadline;

  emit(obs::EventKind::kMandatoryBegin, job_index);
  // Budget watchdog checkpoint protocol: arm for the part's budget, run
  // the body, disarm at the checkpoint and apply the overrun ladder.
  const bool watchdog_on = options_.watchdog.enabled && watchdog_.ready();
  if (watchdog_on) {
    watchdog_.arm(rec.mandatory_start +
                  options_.watchdog.budget_for(params.mandatory));
  }
  if (config_.callbacks.mandatory) {
    if (!run_guarded("mandatory", params.name.c_str(),
                     [&] { config_.callbacks.mandatory(ctx); })) {
      callback_errors_.fetch_add(1, std::memory_order_relaxed);
      if (task_metrics_.callback_errors) {
        task_metrics_.callback_errors->increment();
      }
    }
  }
  // Chaos: the body burns past its declared WCET — the violation the
  // watchdog exists to catch (the budget signal interrupts the sleep; the
  // EINTR-safe retry keeps burning, as a looping body would).
  if (fault::try_fire(fault::InjectPoint::kBodyOverrun)) {
    rt::sleep_for(fault::injected_overrun_ns());
  }
  rec.mandatory_end = common::monotonic_now();
  emit(obs::EventKind::kMandatoryEnd, job_index);
  bool abort_job = false;
  if (watchdog_on && watchdog_.disarm()) {
    abort_job = handle_budget_overrun(fault::BudgetPart::kMandatory, rec);
  }

  // Effective parallelism this job may use: the breaker sheds np under
  // sustained overload, and every overrun policy above kLogOnly denies an
  // overrunning job its optional parts.
  int allowed_np = np;
  if (abort_job ||
      (rec.mandatory_overrun &&
       options_.watchdog.policy != fault::OverrunPolicy::kLogOnly)) {
    allowed_np = 0;
  }
  if (breaker_ != nullptr && allowed_np > 0) {
    allowed_np = breaker_->allowed_np(allowed_np);
  }
  rec.optional_shed = np - allowed_np;
  if (rec.optional_shed > 0) {
    emit(obs::EventKind::kOptionalShed, job_index, rec.optional_shed);
    if (task_metrics_.optional_shed) {
      task_metrics_.optional_shed->add(
          static_cast<common::u64>(rec.optional_shed));
    }
  }

  // Optional parts run only when the mandatory part completed by the
  // optional deadline; otherwise they are DISCARDED (Fig. 1).
  const bool mandatory_on_time = rec.mandatory_end < rec.optional_deadline;
  const bool run_optionals = allowed_np > 0 && mandatory_on_time;
  if (run_optionals) {
    rec.optionals_ran = true;
    const auto round = pool_->run_round(ctx, allowed_np);
    notify_transition(TaskTransition::kOptionalsStarted, round.signal_end);
    rec.signal_start = round.signal_start;
    rec.signal_end = round.signal_end;
    rec.first_optional_start = round.first_part_start;
    rec.optional_completed = round.completed;
    rec.optional_terminated = round.terminated;
    if (task_metrics_.optional_completed) {
      task_metrics_.optional_completed->add(
          static_cast<common::u64>(round.completed));
      task_metrics_.optional_terminated->add(
          static_cast<common::u64>(round.terminated));
    }
  } else {
    // Not started at all: discarded when the mandatory part ran past the
    // OD (the paper's path); shed (counted above) when the breaker or the
    // overrun policy withheld them.  The queue mirror sees the same
    // transition either way — the task skips straight to wind-up.
    if (!mandatory_on_time) {
      rec.optional_discarded = np;
      if (task_metrics_.optional_discarded) {
        task_metrics_.optional_discarded->add(static_cast<common::u64>(np));
      }
      emit(obs::EventKind::kOptionalsDiscarded, job_index, np);
    }
    notify_transition(TaskTransition::kOptionalsDiscarded, rec.mandatory_end);
  }

  rec.windup_start = common::monotonic_now();
  notify_transition(TaskTransition::kWindupStarted, rec.windup_start);
  emit(obs::EventKind::kWindupBegin, job_index);
  if (!abort_job && config_.callbacks.windup) {
    if (watchdog_on) {
      watchdog_.arm(rec.windup_start +
                    options_.watchdog.budget_for(params.windup));
    }
    if (!run_guarded("wind-up", params.name.c_str(),
                     [&] { config_.callbacks.windup(ctx); })) {
      callback_errors_.fetch_add(1, std::memory_order_relaxed);
      if (task_metrics_.callback_errors) {
        task_metrics_.callback_errors->increment();
      }
    }
  }
  rec.windup_end = common::monotonic_now();
  emit(obs::EventKind::kWindupEnd, job_index);
  if (!abort_job && watchdog_on && watchdog_.disarm()) {
    // The job is over either way; the ladder's containment here is the
    // counting (and, at the last rung, the demotion).
    (void)handle_budget_overrun(fault::BudgetPart::kWindup, rec);
  }
  rec.deadline_met = rec.windup_end <= rec.deadline;
  if (breaker_ != nullptr) {
    if (auto tr = breaker_->record_job(rec.deadline_met, rec.windup_end)) {
      const obs::EventKind kind =
          tr->to == fault::CircuitBreaker::State::kOpen
              ? obs::EventKind::kBreakerTrip
              : (tr->to == fault::CircuitBreaker::State::kHalfOpen
                     ? obs::EventKind::kBreakerProbe
                     : obs::EventKind::kBreakerRestore);
      emit(kind, job_index, tr->shed_level);
      if (task_metrics_.breaker_transitions) {
        task_metrics_.breaker_transitions->increment();
      }
      if (kind == obs::EventKind::kBreakerTrip) {
        obs::flight_trigger("breaker-trip");
      }
      common::global_logger().warn(
          "%s: breaker %s -> %s (shed level %d, miss rate %.2f)",
          params.name.c_str(), fault::breaker_state_name(tr->from),
          fault::breaker_state_name(tr->to), tr->shed_level,
          breaker_->miss_rate());
    }
    if (task_metrics_.breaker_state) {
      task_metrics_.breaker_state->set(
          static_cast<double>(static_cast<int>(breaker_->state())));
      task_metrics_.breaker_shed_level->set(
          static_cast<double>(breaker_->shed_level()));
    }
  }
  notify_transition(TaskTransition::kJobFinished, rec.windup_end);
  emit(obs::EventKind::kJobFinish, job_index);
  if (task_metrics_.jobs_completed) {
    task_metrics_.jobs_completed->increment();
  }
  if (!rec.deadline_met) {
    // arg carries the lateness in microseconds so the attribution layer
    // can tell whether a single phase (e.g. wake latency) explains the
    // whole miss without needing the task parameters.
    const auto lateness_us = std::min<common::i64>(
        (rec.windup_end - rec.deadline) / 1000,
        std::numeric_limits<common::i32>::max());
    emit(obs::EventKind::kDeadlineMiss, job_index,
         static_cast<common::i32>(lateness_us));
    if (task_metrics_.deadline_misses) {
      task_metrics_.deadline_misses->increment();
    }
  }
  if (!rec.deadline_met && miss_observer_) {
    if (!run_guarded("miss-observer", params.name.c_str(),
                     [&] { miss_observer_(id_, rec); })) {
      callback_errors_.fetch_add(1, std::memory_order_relaxed);
      if (task_metrics_.callback_errors) {
        task_metrics_.callback_errors->increment();
      }
    }
  }
  record_overheads(rec);

  if (!records_.try_push(rec)) {
    records_dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::vector<JobRecord> ImpreciseTask::drain_records() {
  std::vector<JobRecord> out;
  while (auto rec = records_.try_pop()) out.push_back(*rec);
  return out;
}

}  // namespace rtseed::core
