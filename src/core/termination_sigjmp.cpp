// The paper's recommended termination path (Fig. 7), modernized:
//   sigsetjmp(buf, 1)            — save stack context AND signal mask
//   arm one-shot deadline timer  — SIGEV_THREAD_ID to this thread
//   body()                        — the optional part
//   disarm                        — completed before the deadline
// and, on expiry, the handler siglongjmp's to the checkpoint, restoring
// the mask so the *next* job's timer can fire again (Table I row 1).
//
// The paper indexes jmp_buf by sched_getcpu(); we use a thread_local
// buffer, which is equivalent when threads are pinned and remains correct
// when they are not (e.g. in unprivileged containers).
#include <csetjmp>
#include <csignal>

#include "core/termination.hpp"
#include "fault/injector.hpp"
#include "rt/oneshot_timer.hpp"
#include "rt/signal_guard.hpp"

namespace rtseed::core {

int sigjmp_signal() { return SIGRTMIN + 3; }

namespace detail {
namespace {

thread_local sigjmp_buf t_checkpoint;
thread_local volatile sig_atomic_t t_armed = 0;

void deadline_handler(int /*signo*/) {
  // A late expiry (body already returned, disarm racing the signal) must
  // not longjmp into a dead frame.
  if (t_armed != 0) {
    t_armed = 0;
    siglongjmp(t_checkpoint, 1);
  }
}

void install_handler_once() {
  static const bool installed = [] {
    struct sigaction act {};
    act.sa_handler = deadline_handler;
    sigemptyset(&act.sa_mask);
    act.sa_flags = 0;
    return sigaction(sigjmp_signal(), &act, nullptr) == 0;
  }();
  (void)installed;
}

// One timer per optional thread, created lazily and deleted at thread exit.
rt::OneShotTimer& thread_timer() {
  thread_local rt::OneShotTimer timer;
  if (!timer.created()) (void)timer.create(sigjmp_signal());
  return timer;
}

}  // namespace
}  // namespace detail

void ensure_sigjmp_handler_installed() { detail::install_handler_once(); }

namespace detail {

TerminationResult run_sigjmp(Nanos abs_deadline, OptionalBodyRef body) {
  install_handler_once();
  (void)rt::unblock_signal(sigjmp_signal());
  auto& timer = thread_timer();

  TerminationResult result;
  StopToken token(abs_deadline);

  // savesigs=1: the current signal mask is part of the checkpoint, so the
  // siglongjmp return path restores it (Table I: "Signal Mask Restoration").
  if (sigsetjmp(t_checkpoint, 1) == 0) {
    t_armed = 1;
    // Chaos: the deadline timer silently fails to arm.  t_armed stays 1,
    // so the supervisor's stage-2 escalation (pthread_kill with this
    // signal) still lands in the handler and terminates the stuck part.
    if (!fault::try_fire(fault::InjectPoint::kTimerMisfire)) {
      (void)timer.arm_absolute(abs_deadline);
    }
    body(token);
    // Completed: quench the race between "body returned" and "timer fired".
    t_armed = 0;
    (void)timer.disarm();
    result.outcome = OptionalOutcome::kCompleted;
  } else {
    // Landed here from the handler: the optional part was terminated at the
    // optional deadline.
    result.outcome = OptionalOutcome::kTerminated;
  }
  result.finished_at = common::monotonic_now();
  return result;
}

}  // namespace detail
}  // namespace rtseed::core
