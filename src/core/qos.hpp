// QoS and overhead accounting over per-job records.
//
// In the imprecise computation model, QoS is delivered by optional-part
// execution time: "the longer the optional part of each task takes to
// execute, the higher its QoS" (§II-A).  A task's QoS ratio for a job is
// the optional execution time actually obtained divided by the window
// available ([mandatory end, OD] x np); completed parts count fully.
#pragma once

#include <string>
#include <vector>

#include "common/stats.hpp"
#include "core/job_record.hpp"

namespace rtseed::core {

struct OverheadSummary {
  common::Summary delta_m;  ///< begin mandatory part (Fig. 10)
  common::Summary delta_b;  ///< begin parallel optional parts (Fig. 12)
  common::Summary delta_s;  ///< switch mandatory -> optional (Fig. 11)
  common::Summary delta_e;  ///< end parallel optional parts (Fig. 13)
};

struct QosSummary {
  long jobs = 0;
  long deadline_misses = 0;
  long optional_completed = 0;
  long optional_terminated = 0;
  long optional_discarded = 0;
  /// Mean fraction of the optional window actually spent executing
  /// optional parts (1.0 = full QoS), over jobs whose optionals ran.
  double mean_optional_window_use = 0.0;

  std::string to_string() const;
};

/// Overheads in microseconds (the unit of the paper's Figs. 10-13).
OverheadSummary summarize_overheads(const std::vector<JobRecord>& records);

QosSummary summarize_qos(const std::vector<JobRecord>& records);

}  // namespace rtseed::core
