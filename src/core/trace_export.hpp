// Chrome trace-event export of per-job records.
//
// Drop the output of a run into chrome://tracing (or Perfetto) and see
// every job's mandatory part, optional window, and wind-up part on a
// timeline, with the optional deadline marked — the visual counterpart of
// the paper's Figs. 6 and 9.
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "core/job_record.hpp"

namespace rtseed::core {

struct TaskTrace {
  std::string name;
  std::vector<JobRecord> records;
};

/// Renders trace-event JSON (the "traceEvents" array format).  Durations
/// are microseconds, anchored so the earliest release is t = 0.
std::string render_chrome_trace(const std::vector<TaskTrace>& tasks);

/// Writes render_chrome_trace() to `path`.
common::Status write_chrome_trace(const std::string& path,
                                  const std::vector<TaskTrace>& tasks);

}  // namespace rtseed::core
