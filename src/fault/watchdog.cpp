#include "fault/watchdog.hpp"

#include <csignal>

#include "rt/signal_guard.hpp"

namespace rtseed::fault {

const char* overrun_policy_name(OverrunPolicy policy) {
  switch (policy) {
    case OverrunPolicy::kLogOnly:
      return "log-only";
    case OverrunPolicy::kSkipOptionals:
      return "skip-optionals";
    case OverrunPolicy::kAbortJob:
      return "abort-job";
    case OverrunPolicy::kDemoteThread:
      return "demote-thread";
  }
  return "?";
}

const char* budget_part_name(BudgetPart part) {
  switch (part) {
    case BudgetPart::kMandatory:
      return "mandatory";
    case BudgetPart::kWindup:
      return "wind-up";
  }
  return "?";
}

int watchdog_signal() { return SIGRTMIN + 5; }

namespace {

// The flag is thread-local: the timer delivers with SIGEV_THREAD_ID to
// exactly the thread that armed it, so each mandatory thread observes only
// its own overruns.
thread_local volatile sig_atomic_t t_budget_expired = 0;

void budget_handler(int /*signo*/) { t_budget_expired = 1; }

bool install_handler_once() {
  static const bool installed = [] {
    struct sigaction act {};
    act.sa_handler = budget_handler;
    sigemptyset(&act.sa_mask);
    act.sa_flags = 0;
    return sigaction(watchdog_signal(), &act, nullptr) == 0;
  }();
  return installed;
}

}  // namespace

common::Status BudgetWatchdog::init() {
  if (init_) return common::Status::ok();
  if (!install_handler_once()) {
    return common::internal_error("cannot install budget watchdog handler");
  }
  (void)rt::unblock_signal(watchdog_signal());
  if (auto st = timer_.create(watchdog_signal()); !st) return st;
  init_ = true;
  return common::Status::ok();
}

void BudgetWatchdog::arm(Nanos abs_deadline) {
  if (!init_) return;
  t_budget_expired = 0;
  (void)timer_.arm_absolute(abs_deadline);
}

bool BudgetWatchdog::disarm() {
  if (!init_) return false;
  (void)timer_.disarm();
  const bool expired = t_budget_expired != 0;
  t_budget_expired = 0;
  return expired;
}

bool BudgetWatchdog::fired() const {
  return init_ && t_budget_expired != 0;
}

}  // namespace rtseed::fault
