#include "fault/breaker.hpp"

#include <algorithm>

namespace rtseed::fault {

const char* breaker_state_name(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed:
      return "closed";
    case CircuitBreaker::State::kOpen:
      return "open";
    case CircuitBreaker::State::kHalfOpen:
      return "half-open";
  }
  return "?";
}

CircuitBreaker::CircuitBreaker(BreakerConfig config)
    : config_([&] {
        BreakerConfig c = config;
        c.window = std::max(1, c.window);
        c.min_samples = std::clamp(c.min_samples, 1, c.window);
        c.probe_jobs = std::max(1, c.probe_jobs);
        c.max_shed_level = std::clamp(c.max_shed_level, 1, 31);
        return c;
      }()),
      ring_(static_cast<common::usize>(config_.window), false) {}

int CircuitBreaker::allowed_np(int requested) const {
  if (state_.load(std::memory_order_relaxed) != State::kOpen) {
    return requested;  // closed and half-open probe at full parallelism
  }
  return requested >> shed_level_.load(std::memory_order_relaxed);
}

double CircuitBreaker::miss_rate() const {
  const int samples = window_samples_.load(std::memory_order_relaxed);
  if (samples == 0) return 0.0;
  return static_cast<double>(window_misses_.load(std::memory_order_relaxed)) /
         static_cast<double>(samples);
}

void CircuitBreaker::clear_window() {
  std::fill(ring_.begin(), ring_.end(), false);
  ring_pos_ = 0;
  window_misses_.store(0, std::memory_order_relaxed);
  window_samples_.store(0, std::memory_order_relaxed);
}

void CircuitBreaker::push(bool miss) {
  const int samples = window_samples_.load(std::memory_order_relaxed);
  if (samples < config_.window) {
    window_samples_.store(samples + 1, std::memory_order_relaxed);
  } else if (ring_[static_cast<common::usize>(ring_pos_)]) {
    window_misses_.fetch_sub(1, std::memory_order_relaxed);
  }
  ring_[static_cast<common::usize>(ring_pos_)] = miss;
  if (miss) window_misses_.fetch_add(1, std::memory_order_relaxed);
  ring_pos_ = (ring_pos_ + 1) % config_.window;
}

CircuitBreaker::Transition CircuitBreaker::transition_to(State to,
                                                         int shed_level) {
  Transition tr;
  tr.from = state_.load(std::memory_order_relaxed);
  tr.to = to;
  tr.shed_level = shed_level;
  state_.store(to, std::memory_order_relaxed);
  shed_level_.store(shed_level, std::memory_order_relaxed);
  transitions_.fetch_add(1, std::memory_order_relaxed);
  clear_window();
  return tr;
}

std::optional<CircuitBreaker::Transition> CircuitBreaker::record_job(
    bool deadline_met, Nanos now) {
  if (!config_.enabled) return std::nullopt;
  const State state = state_.load(std::memory_order_relaxed);
  push(!deadline_met);

  switch (state) {
    case State::kClosed: {
      if (window_samples_.load(std::memory_order_relaxed) >=
              config_.min_samples &&
          miss_rate() >= config_.trip_threshold) {
        const int level = std::min(
            shed_level_.load(std::memory_order_relaxed) + 1,
            config_.max_shed_level);
        opened_at_ = now;
        return transition_to(State::kOpen, level);
      }
      return std::nullopt;
    }
    case State::kOpen: {
      jobs_shed_.fetch_add(1, std::memory_order_relaxed);
      if (now - opened_at_ >= config_.cooldown) {
        probe_seen_ = 0;
        return transition_to(State::kHalfOpen,
                             shed_level_.load(std::memory_order_relaxed));
      }
      return std::nullopt;
    }
    case State::kHalfOpen: {
      ++probe_seen_;
      if (probe_seen_ < config_.probe_jobs) return std::nullopt;
      if (miss_rate() <= config_.restore_threshold) {
        return transition_to(State::kClosed, 0);  // full restore
      }
      // Probe failed: re-open, one level deeper.
      const int level =
          std::min(shed_level_.load(std::memory_order_relaxed) + 1,
                   config_.max_shed_level);
      opened_at_ = now;
      return transition_to(State::kOpen, level);
    }
  }
  return std::nullopt;
}

}  // namespace rtseed::fault
