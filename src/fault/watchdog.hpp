// Per-job budget watchdogs for the mandatory and wind-up parts.
//
// RT-Seed's D = T guarantee silently assumes the WCETs given to the
// offline analysis hold at run time.  The watchdog makes a violation an
// EVENT instead of a silent erosion of the guarantee: before a mandatory
// or wind-up part runs, a one-shot CLOCK_MONOTONIC timer (rt::OneShotTimer,
// the same machinery as the paper's optional-deadline timer) is armed for
// the part's budget; if the body is still running when it fires, a
// dedicated real-time signal sets a per-thread flag that the middleware
// observes at the next checkpoint (part end) and answers with the
// configured OverrunPolicy.
//
// The handler only stores a flag — no longjmp, no unwinding — so the
// watchdog composes with every termination strategy and stays safe under
// ThreadSanitizer.  Containment (skipping optionals, aborting the job,
// demoting the thread) happens at checkpoints on the mandatory thread,
// never asynchronously inside the user's body.
#pragma once

#include "common/status.hpp"
#include "common/time.hpp"
#include "rt/oneshot_timer.hpp"

namespace rtseed::fault {

using common::Nanos;

/// Escalation ladder applied when a budget overruns (pick one rung;
/// every rung includes the counting/logging of the rungs above it).
enum class OverrunPolicy {
  kLogOnly,       ///< count + log, change nothing
  kSkipOptionals, ///< overrunning job loses its optional parts (shed QoS)
  kAbortJob,      ///< abort the job at the next checkpoint (skip the rest)
  kDemoteThread,  ///< also demote the thread out of the RT band
};

const char* overrun_policy_name(OverrunPolicy policy);

/// Which part's budget overran.
enum class BudgetPart { kMandatory, kWindup };

const char* budget_part_name(BudgetPart part);

struct WatchdogConfig {
  bool enabled = false;
  OverrunPolicy policy = OverrunPolicy::kSkipOptionals;
  /// Budget = WCET × budget_factor + budget_slack.  The factor leaves
  /// headroom above the analyzed WCET so the watchdog flags genuine
  /// violations, not measurement jitter.
  double budget_factor = 1.5;
  Nanos budget_slack = common::millis(1);

  Nanos budget_for(Nanos wcet) const {
    return static_cast<Nanos>(static_cast<double>(wcet) * budget_factor) +
           budget_slack;
  }
};

/// The signal used for budget expiry (distinct from the optional-deadline
/// signals so an OD termination never masks a budget overrun).
int watchdog_signal();

/// Per-thread watchdog.  init() and every arm/disarm must run on the
/// owning (mandatory) thread — the timer targets the calling thread.
class BudgetWatchdog {
 public:
  BudgetWatchdog() = default;
  BudgetWatchdog(const BudgetWatchdog&) = delete;
  BudgetWatchdog& operator=(const BudgetWatchdog&) = delete;

  /// Installs the (process-wide) flag-setting handler and creates this
  /// thread's timer.  Idempotent.
  common::Status init();

  /// Arms for the absolute CLOCK_MONOTONIC deadline `abs_deadline`.
  void arm(Nanos abs_deadline);

  /// Disarms; returns true when the budget expired while armed (the
  /// checkpoint check).  Clears the flag.
  bool disarm();

  /// Polls the expiry flag without disarming (mid-part checkpoints).
  bool fired() const;

  bool ready() const { return init_; }

 private:
  rt::OneShotTimer timer_;
  bool init_ = false;
};

}  // namespace rtseed::fault
