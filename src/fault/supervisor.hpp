// Worker supervision: a low-priority thread that watches per-worker
// heartbeat words and recovers stalled or dead optional workers.
//
// Each optional worker publishes three plain atomics on its slot (zero
// cost on the hot path — two relaxed stores per part): a heartbeat
// sequence, the absolute deadline of the part it is running, and when it
// started.  The supervisor polls those words from OUTSIDE the real-time
// band (best-effort priority, so it can never preempt a wind-up part) and
// escalates in stages:
//
//   stage 1 (stall_grace past the part's deadline): raise the slot-owned
//     force flag — the lock-free forcing path the mandatory thread already
//     uses, observed by StopToken::forced();
//   stage 2 (kill_grace later): deliver the termination signal directly to
//     the stuck worker thread (covers a misfired optional-deadline timer
//     under kSigjmp, where the body polls nothing);
//   dead worker (thread exited): join the corpse and respawn it with the
//     plan's affinity and priority, so the pool never loses parallelism
//     permanently.
//
// The pool side of this contract is the SupervisedPool interface,
// implemented by core::OptionalPool.  Stop the supervisor BEFORE shutting
// down the pools it watches.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/time.hpp"
#include "obs/telemetry.hpp"
#include "rt/thread.hpp"

namespace rtseed::fault {

using common::Nanos;

/// Snapshot of one worker, read from its heartbeat words.
struct WorkerHealth {
  bool alive = false;        ///< thread is running
  bool busy = false;         ///< currently executing a part
  Nanos busy_since = 0;      ///< when the running part was received
  Nanos busy_deadline = 0;   ///< absolute deadline of the running part
  common::u64 heartbeat = 0; ///< bumps on every part start/end
};

/// What the supervisor needs from a worker pool (core::OptionalPool).
class SupervisedPool {
 public:
  virtual ~SupervisedPool() = default;

  virtual int worker_count() const = 0;
  virtual WorkerHealth worker_health(int worker) const = 0;

  /// Stage-1 escalation: raise the worker's slot-owned force flag.
  virtual void force_worker(int worker) = 0;

  /// Stage-2 escalation: deliver the termination signal to the worker
  /// thread.  False when the pool's termination strategy has no safe
  /// signal path (e.g. periodic-check).
  virtual bool kill_worker(int worker) = 0;

  /// Joins a dead worker's thread and respawns it with the original
  /// affinity/priority.  False when nothing was respawned.
  virtual bool respawn_worker(int worker) = 0;
};

struct SupervisorConfig {
  bool enabled = false;
  Nanos poll_interval = common::millis(2);
  /// Grace past a part's deadline before stage-1 forcing — covers the
  /// pool's own force-after-margin path racing this one (both are
  /// idempotent relaxed stores).
  Nanos stall_grace = common::millis(20);
  /// After forcing, how long before stage-2 signal delivery.
  Nanos kill_grace = common::millis(20);
  bool respawn_dead = true;
  /// SCHED_FIFO priority of the supervisor thread; 0 = best-effort
  /// (default: supervision must never preempt the RT band).
  int fifo_priority = 0;
};

struct SupervisorStats {
  common::u64 stalls_detected = 0;
  common::u64 forced = 0;
  common::u64 killed = 0;
  common::u64 respawned = 0;
};

class Supervisor {
 public:
  explicit Supervisor(SupervisorConfig config);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Registers a pool to watch (before start()).  `pool` must outlive the
  /// supervisor's run; `task` labels emitted events/metrics.
  void watch(SupervisedPool* pool, common::TaskId task, std::string name);

  /// Attaches telemetry (before start()): the supervisor registers its
  /// own event ring and counters.
  void set_telemetry(obs::Telemetry* telemetry);

  common::Status start();

  /// Stops and joins the supervisor thread.  Call before shutting down
  /// watched pools.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  SupervisorStats stats() const;

 private:
  struct WorkerWatch {
    // Escalation state per worker: reset when the busy window changes.
    Nanos observed_busy_since = 0;
    Nanos forced_at = 0;
    bool forced = false;
    bool killed = false;
  };
  struct PoolWatch {
    SupervisedPool* pool = nullptr;
    common::TaskId task = common::kInvalidTask;
    std::string name;
    std::vector<WorkerWatch> workers;
  };

  void supervisor_loop();
  void scan(PoolWatch& watch, Nanos now);

  SupervisorConfig config_;
  std::vector<PoolWatch> pools_;
  std::unique_ptr<rt::RtThread> thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint32_t> stop_word_{0};

  std::atomic<common::u64> stalls_detected_{0};
  std::atomic<common::u64> forced_{0};
  std::atomic<common::u64> killed_{0};
  std::atomic<common::u64> respawned_{0};

  obs::Telemetry* telemetry_ = nullptr;
  obs::TraceBuffer* trace_ = nullptr;
  obs::Counter* stalls_metric_ = nullptr;
  obs::Counter* forced_metric_ = nullptr;
  obs::Counter* killed_metric_ = nullptr;
  obs::Counter* respawned_metric_ = nullptr;
};

}  // namespace rtseed::fault
