#include "fault/supervisor.hpp"

#include <utility>

#include "common/rt_logger.hpp"
#include "obs/flight_recorder.hpp"
#include "rt/futex.hpp"

namespace rtseed::fault {

Supervisor::Supervisor(SupervisorConfig config) : config_(config) {
  if (config_.poll_interval < common::micros(100)) {
    config_.poll_interval = common::micros(100);
  }
  if (config_.stall_grace < 0) config_.stall_grace = 0;
  if (config_.kill_grace < 0) config_.kill_grace = 0;
}

Supervisor::~Supervisor() { stop(); }

void Supervisor::watch(SupervisedPool* pool, common::TaskId task,
                       std::string name) {
  PoolWatch watch;
  watch.pool = pool;
  watch.task = task;
  watch.name = std::move(name);
  watch.workers.resize(static_cast<common::usize>(pool->worker_count()));
  pools_.push_back(std::move(watch));
}

void Supervisor::set_telemetry(obs::Telemetry* telemetry) {
  telemetry_ = telemetry;
}

common::Status Supervisor::start() {
  if (running()) return common::Status::ok();
  if (telemetry_ != nullptr && telemetry_->enabled()) {
    auto& metrics = telemetry_->metrics();
    stalls_metric_ = metrics.counter(
        "rtseed_supervisor_stalls_total",
        "optional workers detected running past deadline + grace");
    forced_metric_ = metrics.counter(
        "rtseed_supervisor_forced_total",
        "stage-1 recoveries: slot force flags raised by the supervisor");
    killed_metric_ = metrics.counter(
        "rtseed_supervisor_killed_total",
        "stage-2 recoveries: termination signals delivered by the supervisor");
    respawned_metric_ = metrics.counter(
        "rtseed_supervisor_respawned_total",
        "dead optional workers respawned by the supervisor");
  }
  stop_word_.store(0, std::memory_order_relaxed);
  running_.store(true, std::memory_order_release);
  rt::ThreadConfig tc;
  tc.name = "rts-supervisor";
  tc.fifo_priority = config_.fifo_priority;
  thread_ = std::make_unique<rt::RtThread>(tc, [this] { supervisor_loop(); });
  return common::Status::ok();
}

void Supervisor::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_word_.store(1, std::memory_order_release);
  rt::wake_word(stop_word_, 1);
  if (thread_ && thread_->joinable()) thread_->join();
  thread_.reset();
}

SupervisorStats Supervisor::stats() const {
  SupervisorStats s;
  s.stalls_detected = stalls_detected_.load(std::memory_order_relaxed);
  s.forced = forced_.load(std::memory_order_relaxed);
  s.killed = killed_.load(std::memory_order_relaxed);
  s.respawned = respawned_.load(std::memory_order_relaxed);
  return s;
}

void Supervisor::supervisor_loop() {
  if (telemetry_ != nullptr && telemetry_->enabled()) {
    trace_ = telemetry_->register_thread("supervisor");
  }
  while (stop_word_.load(std::memory_order_acquire) == 0) {
    const Nanos now = common::monotonic_now();
    for (auto& watch : pools_) scan(watch, now);
    (void)rt::wait_word_until(stop_word_, 0, now + config_.poll_interval);
  }
}

void Supervisor::scan(PoolWatch& watch, Nanos now) {
  const int workers = watch.pool->worker_count();
  for (int k = 0; k < workers; ++k) {
    WorkerWatch& ww = watch.workers[static_cast<common::usize>(k)];
    const WorkerHealth health = watch.pool->worker_health(k);

    if (!health.alive) {
      if (config_.respawn_dead && watch.pool->respawn_worker(k)) {
        respawned_.fetch_add(1, std::memory_order_relaxed);
        if (respawned_metric_ != nullptr) respawned_metric_->increment();
        common::global_logger().warn("supervisor: respawned dead worker %d of %s", k,
                        watch.name.c_str());
        if (trace_ != nullptr) {
          trace_->emit({telemetry_->now(), watch.task, 0, k,
                        obs::EventKind::kSupervisorRespawn});
        }
        ww = WorkerWatch{};
      }
      continue;
    }

    if (!health.busy || health.busy_deadline <= 0) {
      // Idle (or running an undeadlined part): nothing to escalate.
      ww = WorkerWatch{};
      continue;
    }

    if (ww.observed_busy_since != health.busy_since) {
      // A new part started since the last scan: restart escalation.
      ww = WorkerWatch{};
      ww.observed_busy_since = health.busy_since;
    }

    if (!ww.forced && now > health.busy_deadline + config_.stall_grace) {
      // Stage 1: the pool's own termination should have fired long ago —
      // raise the slot force flag the pool already honours.
      stalls_detected_.fetch_add(1, std::memory_order_relaxed);
      if (stalls_metric_ != nullptr) stalls_metric_->increment();
      if (trace_ != nullptr) {
        trace_->emit({telemetry_->now(), watch.task, 0, k,
                      obs::EventKind::kSupervisorStall});
      }
      watch.pool->force_worker(k);
      forced_.fetch_add(1, std::memory_order_relaxed);
      if (forced_metric_ != nullptr) forced_metric_->increment();
      common::global_logger().warn("supervisor: forced stalled worker %d of %s (%s past OD)",
                      k, watch.name.c_str(),
                      common::format_duration(now - health.busy_deadline)
                          .c_str());
      ww.forced = true;
      ww.forced_at = now;
      continue;
    }

    if (ww.forced && !ww.killed && now > ww.forced_at + config_.kill_grace) {
      // Stage 2: the force flag was ignored (body polls nothing, or the
      // OD timer misfired) — deliver the termination signal directly.
      if (watch.pool->kill_worker(k)) {
        killed_.fetch_add(1, std::memory_order_relaxed);
        if (killed_metric_ != nullptr) killed_metric_->increment();
        if (trace_ != nullptr) {
          trace_->emit({telemetry_->now(), watch.task, 0, k,
                        obs::EventKind::kSupervisorKill});
        }
        common::global_logger().warn("supervisor: killed stuck worker %d of %s", k,
                        watch.name.c_str());
        obs::flight_trigger("supervisor-kill");
      }
      ww.killed = true;
    }
  }
}

}  // namespace rtseed::fault
