// Overload circuit breaker: the imprecise model's graceful-degradation
// knob made automatic.
//
// Under sustained overload the right response in the imprecise-computation
// literature (Liu et al.) is to shed OPTIONAL quality, never to miss hard
// deadlines: the wind-up part's D = T guarantee is preserved by spending
// less of the budget on optional refinement.  The breaker automates that:
// it tracks the deadline-miss rate over a sliding window of jobs and
// downgrades the task's effective npᵢ (number of parallel optional parts
// actually signalled) when the rate trips a threshold, restoring it with
// hysteresis after a cool-down.
//
// State machine (DESIGN.md §9.3):
//
//   kClosed ── miss rate ≥ trip_threshold over ≥ min_samples ──▶ kOpen
//     ▲                                                            │
//     │                                            cooldown elapsed│
//     │                                                            ▼
//     └── probe miss rate ≤ restore_threshold ──── kHalfOpen ◀─────┘
//                        (else back to kOpen, shed one level deeper)
//
// While kOpen, allowed_np(np) = np >> shed_level (each consecutive trip
// halves the optional parallelism again, to zero).  kHalfOpen probes at
// full np; a clean probe window closes the breaker and restores full
// parallelism.
//
// Threading: record_job/allowed_np are called from the owning task's
// mandatory thread only.  State is stored in relaxed atomics so observers
// (metrics scrapes, tests) may read concurrently.
#pragma once

#include <atomic>
#include <optional>
#include <vector>

#include "common/time.hpp"
#include "common/types.hpp"

namespace rtseed::fault {

using common::Nanos;

struct BreakerConfig {
  bool enabled = false;
  /// Sliding window length, in jobs.
  int window = 32;
  /// Jobs observed before the breaker may trip (a single early miss must
  /// not shed parallelism).
  int min_samples = 8;
  /// Miss rate (misses / window samples) at which the breaker opens.
  double trip_threshold = 0.5;
  /// Miss rate over the half-open probe at or below which it closes
  /// (hysteresis: strictly lower than trip_threshold).
  double restore_threshold = 0.125;
  /// Time spent open before probing (half-open).
  Nanos cooldown = common::millis(500);
  /// Probe length, in jobs, while half-open.
  int probe_jobs = 8;
  /// Deepest shed level (np is shifted right by the level, so level L
  /// leaves np >> L parts; 31 ⇒ the ladder can reach zero for any np).
  int max_shed_level = 31;
};

class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(BreakerConfig config);

  /// Effective optional parallelism this job may use.
  int allowed_np(int requested) const;

  struct Transition {
    State from = State::kClosed;
    State to = State::kClosed;
    int shed_level = 0;
  };

  /// Records one job outcome (call once per job, mandatory thread).
  /// Returns the state transition performed, if any.
  std::optional<Transition> record_job(bool deadline_met, Nanos now);

  State state() const { return state_.load(std::memory_order_relaxed); }
  int shed_level() const {
    return shed_level_.load(std::memory_order_relaxed);
  }
  /// Miss rate over the current window (0 when empty).
  double miss_rate() const;
  common::u64 transitions() const {
    return transitions_.load(std::memory_order_relaxed);
  }
  common::u64 jobs_shed() const {
    return jobs_shed_.load(std::memory_order_relaxed);
  }

  const BreakerConfig& config() const { return config_; }

 private:
  void clear_window();
  void push(bool miss);
  Transition transition_to(State to, int shed_level);

  const BreakerConfig config_;

  // Observer-visible state (written only by the mandatory thread).
  std::atomic<State> state_{State::kClosed};
  std::atomic<int> shed_level_{0};
  std::atomic<common::u64> transitions_{0};
  std::atomic<common::u64> jobs_shed_{0};
  std::atomic<int> window_misses_{0};
  std::atomic<int> window_samples_{0};

  // Mandatory-thread-private window ring.
  std::vector<bool> ring_;
  int ring_pos_ = 0;
  int probe_seen_ = 0;
  Nanos opened_at_ = 0;
};

const char* breaker_state_name(CircuitBreaker::State state);

}  // namespace rtseed::fault
