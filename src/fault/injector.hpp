// Deterministic, seed-driven fault injection (the chaos harness of the
// resilience layer).
//
// Named injection points are compiled into the protocol hot spots (wake
// handoff, periodic release, one-shot deadline timers, blocking waits).
// Each site asks `fault::try_fire(point)`, which costs one relaxed load
// plus one untaken branch while no injector is installed — the same
// zero-cost-when-off discipline as obs telemetry — so production builds
// carry the hooks at no measurable cost.
//
// Determinism: each point keeps its own evaluation sequence number; a
// SplitMix64 hash of (seed, point, sequence) decides whether evaluation n
// of point p fires.  For a fixed seed the SET of firing sequence numbers
// per point is therefore identical across runs, regardless of thread
// interleaving — which thread draws a given sequence number may vary, but
// the injected fault COUNTS (what the chaos suite asserts against) do not
// depend on scheduling beyond how often each site is reached.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "common/time.hpp"
#include "common/types.hpp"

namespace rtseed::fault {

using common::Nanos;

enum class InjectPoint : int {
  kLostWake = 0,  ///< swallow the futex/condvar wake of a parked worker
  kDelayedWake,   ///< delay a worker wake by delay_ns (late Δs)
  kWorkerStall,   ///< worker stalls stall_ns before running its part
  kWorkerDeath,   ///< worker thread exits instead of running its part
  kBodyOverrun,   ///< mandatory/wind-up body burns overrun_ns past its WCET
  kTimerMisfire,  ///< one-shot optional-deadline timer silently fails to arm
  kEintrStorm,    ///< a blocking wait returns spuriously (as after EINTR)
  kClockJump,     ///< an absolute sleep returns early (clock anomaly)
  // Multi-process shard faults (DESIGN.md §14.5).  Appended so existing
  // chaos seeds keep firing the same sequences at the points above.
  kShardKill,      ///< supervisor SIGKILLs a live shard worker
  kHeartbeatStall, ///< worker skips heartbeat bumps (looks hung)
  kTornShmWrite,   ///< guarded segment mutation dies mid-write (odd gen)
  kJournalTruncate,///< journal append dies mid-record (torn tail)
  kCount,
};

inline constexpr int kNumInjectPoints = static_cast<int>(InjectPoint::kCount);

const char* inject_point_name(InjectPoint point);

struct InjectorConfig {
  std::uint64_t seed = 1;
  /// Per-point firing probability in [0, 1] (0 = never, 1 = every time).
  std::array<double, kNumInjectPoints> rate{};
  /// Hard cap on fires per point (< 0 = unbounded).  Keeps chaos runs
  /// bounded even at rate 1.0.
  long max_fires_per_point = -1;

  // Magnitudes of the injected faults.
  Nanos stall_ns = common::millis(30);
  Nanos delay_ns = common::micros(200);
  Nanos overrun_ns = common::millis(5);
  Nanos jump_ns = common::millis(1);

  InjectorConfig& with_rate(InjectPoint point, double r) {
    rate[static_cast<int>(point)] = r;
    return *this;
  }

  /// Moderate chaos on every point — the trading_demo --chaos preset.
  static InjectorConfig chaos(std::uint64_t seed, double r = 0.05);
};

/// One injected fault, timestamped for the attribution join
/// (obs::attribute_jobs matches fires against job windows).  The
/// timestamp comes from the installed timestamp source — the telemetry
/// clock when the runtime wired one up, 0 otherwise.
struct FireRecord {
  common::u64 timestamp = 0;
  InjectPoint point = InjectPoint::kLostWake;
};

class Injector {
 public:
  explicit Injector(InjectorConfig config);

  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;

  /// Draws the next sequence number of `point` and decides whether this
  /// evaluation fires.  Wait-free (one fetch_add + hash).
  bool fire(InjectPoint point);

  /// Stamps FireRecords with `fn(ctx)` (e.g. the telemetry clock so fires
  /// join the event stream's time base).  Install on a setup path, before
  /// threads reach injection points.  `ctx` must outlive the injector's
  /// installed window.
  using TimestampFn = common::u64 (*)(void* ctx);
  void set_timestamp_source(TimestampFn fn, void* ctx) {
    ts_ctx_ = ctx;
    ts_fn_.store(fn, std::memory_order_release);
  }

  /// Snapshot of the fires recorded so far, in firing order.  The log is
  /// bounded (kFireLogCapacity); fires past that are counted but not
  /// logged.
  std::vector<FireRecord> fire_log() const;

  common::u64 injected(InjectPoint point) const {
    return points_[static_cast<int>(point)].fired.load(
        std::memory_order_relaxed);
  }
  common::u64 evaluated(InjectPoint point) const {
    return points_[static_cast<int>(point)].seq.load(
        std::memory_order_relaxed);
  }
  common::u64 total_injected() const;

  const InjectorConfig& config() const { return config_; }

  static constexpr common::usize kFireLogCapacity = 4096;

 private:
  struct PointState {
    std::atomic<common::u64> seq{0};
    std::atomic<common::u64> fired{0};
    common::u64 threshold = 0;  ///< fire when hash < threshold
  };

  void log_fire(InjectPoint point);

  InjectorConfig config_;
  std::array<PointState, kNumInjectPoints> points_;

  // Multi-producer append-only fire log: each fire claims a slot with one
  // fetch_add and writes it unshared, then publishes it by storing the
  // slot's stamp (index + 1) with release.  fire_log() skips slots whose
  // stamp is not yet visible, so it never reads a half-written record.
  struct LogSlot {
    std::atomic<common::u64> stamp{0};
    FireRecord rec;
  };
  std::array<LogSlot, kFireLogCapacity> log_;
  std::atomic<common::u64> log_next_{0};
  std::atomic<TimestampFn> ts_fn_{nullptr};
  void* ts_ctx_ = nullptr;
};

namespace detail {
extern std::atomic<Injector*> g_injector;
}  // namespace detail

/// Installs (or, with nullptr, removes) the process-wide injector.  The
/// injector must outlive every thread that may reach an injection point
/// while it is installed.  Not an ownership transfer.
void install_injector(Injector* injector);

inline Injector* active_injector() {
  return detail::g_injector.load(std::memory_order_acquire);
}

/// The hot-path gate: one relaxed load + untaken branch when no injector
/// is installed.
inline bool try_fire(InjectPoint point) {
  Injector* injector = active_injector();
  return injector != nullptr && injector->fire(point);
}

// Magnitude helpers for sites whose fault has a duration.  Valid only
// right after try_fire returned true (the injector is still installed).
inline Nanos injected_stall_ns() {
  Injector* injector = active_injector();
  return injector != nullptr ? injector->config().stall_ns : 0;
}
inline Nanos injected_delay_ns() {
  Injector* injector = active_injector();
  return injector != nullptr ? injector->config().delay_ns : 0;
}
inline Nanos injected_overrun_ns() {
  Injector* injector = active_injector();
  return injector != nullptr ? injector->config().overrun_ns : 0;
}
inline Nanos injected_jump_ns() {
  Injector* injector = active_injector();
  return injector != nullptr ? injector->config().jump_ns : 0;
}

/// RAII install/uninstall for tests and the demo.
class ScopedInjector {
 public:
  explicit ScopedInjector(InjectorConfig config) : injector_(config) {
    install_injector(&injector_);
  }
  ~ScopedInjector() { install_injector(nullptr); }

  ScopedInjector(const ScopedInjector&) = delete;
  ScopedInjector& operator=(const ScopedInjector&) = delete;

  Injector& injector() { return injector_; }

 private:
  Injector injector_;
};

}  // namespace rtseed::fault
