#include "fault/process_supervisor.hpp"

#include <csignal>
#include <utility>

#include "common/rt_logger.hpp"
#include "fault/injector.hpp"
#include "obs/flight_recorder.hpp"
#include "rt/futex.hpp"

namespace rtseed::fault {

ProcessSupervisor::ProcessSupervisor(ProcessSupervisorConfig config)
    : config_(config) {
  if (config_.poll_interval < common::micros(100)) {
    config_.poll_interval = common::micros(100);
  }
  if (config_.stall_grace < 0) config_.stall_grace = 0;
  if (config_.term_grace < 0) config_.term_grace = 0;
  if (config_.kill_grace < 0) config_.kill_grace = 0;
}

ProcessSupervisor::~ProcessSupervisor() { stop(); }

void ProcessSupervisor::watch(SupervisedProcessGroup* group,
                              std::string name) {
  group_ = group;
  group_name_ = std::move(name);
  watches_.assign(static_cast<common::usize>(group->process_count()),
                  ProcessWatch{});
}

void ProcessSupervisor::set_telemetry(obs::Telemetry* telemetry) {
  telemetry_ = telemetry;
}

common::Status ProcessSupervisor::start() {
  if (running()) return common::Status::ok();
  if (group_ == nullptr) {
    return common::failed_precondition("no process group to watch");
  }
  if (telemetry_ != nullptr && telemetry_->enabled()) {
    auto& metrics = telemetry_->metrics();
    stalls_metric_ = metrics.counter(
        "rtseed_proc_supervisor_stalls_total",
        "shard processes whose heartbeat went silent past the grace");
    kills_metric_ = metrics.counter(
        "rtseed_proc_supervisor_kills_total",
        "SIGKILLs the process supervisor delivered (stage 3 + chaos)");
    respawns_metric_ = metrics.counter(
        "rtseed_proc_supervisor_respawns_total",
        "dead shard processes re-forked and journal-recovered");
  }
  stop_word_.store(0, std::memory_order_relaxed);
  running_.store(true, std::memory_order_release);
  rt::ThreadConfig tc;
  tc.name = "rts-procsup";
  tc.fifo_priority = config_.fifo_priority;
  thread_ = std::make_unique<rt::RtThread>(tc, [this] { supervisor_loop(); });
  return common::Status::ok();
}

void ProcessSupervisor::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_word_.store(1, std::memory_order_release);
  rt::wake_word(stop_word_, 1);
  if (thread_ && thread_->joinable()) thread_->join();
  thread_.reset();
}

ProcessSupervisorStats ProcessSupervisor::stats() const {
  ProcessSupervisorStats s;
  s.stalls_detected = stalls_detected_.load(std::memory_order_relaxed);
  s.probes = probes_.load(std::memory_order_relaxed);
  s.terms = terms_.load(std::memory_order_relaxed);
  s.kills = kills_.load(std::memory_order_relaxed);
  s.reaps = reaps_.load(std::memory_order_relaxed);
  s.respawns = respawns_.load(std::memory_order_relaxed);
  s.chaos_kills = chaos_kills_.load(std::memory_order_relaxed);
  return s;
}

void ProcessSupervisor::supervisor_loop() {
  while (stop_word_.load(std::memory_order_acquire) == 0) {
    const common::Nanos now = common::monotonic_now();
    scan(now);
    (void)rt::wait_word_until(stop_word_, 0, now + config_.poll_interval);
  }
}

void ProcessSupervisor::scan_once(common::Nanos now) { scan(now); }

void ProcessSupervisor::scan(common::Nanos now) {
  const int count = group_->process_count();
  if (watches_.size() != static_cast<common::usize>(count)) {
    watches_.assign(static_cast<common::usize>(count), ProcessWatch{});
  }

  // Chaos: SIGKILL a live worker (round-robin over the group), driving
  // the full detect → reap → respawn → journal-recover path the chaos
  // suite asserts on.
  if (config_.allow_chaos_kill && fault::try_fire(InjectPoint::kShardKill)) {
    for (int tried = 0; tried < count; ++tried) {
      const int victim = chaos_cursor_;
      chaos_cursor_ = (chaos_cursor_ + 1) % count;
      if (!group_->process_health(victim).alive) continue;
      if (group_->signal_process(victim, SIGKILL)) {
        chaos_kills_.fetch_add(1, std::memory_order_relaxed);
        kills_.fetch_add(1, std::memory_order_relaxed);
        if (kills_metric_ != nullptr) kills_metric_->increment();
        common::global_logger().warn(
            "proc-supervisor: chaos SIGKILL of shard %d of %s", victim,
            group_name_.c_str());
      }
      break;
    }
  }

  for (int k = 0; k < count; ++k) {
    ProcessWatch& pw = watches_[static_cast<common::usize>(k)];

    // Reap first: a death (clean exit, our SIGKILL, or a crash) shows up
    // in the process table before anything else.
    if (group_->reap_process(k)) {
      reaps_.fetch_add(1, std::memory_order_relaxed);
      obs::flight_trigger("shard-process-death");
    }

    const ProcessHealth health = group_->process_health(k);
    if (!health.alive) {
      if (config_.respawn_dead && group_->respawn_process(k)) {
        respawns_.fetch_add(1, std::memory_order_relaxed);
        if (respawns_metric_ != nullptr) respawns_metric_->increment();
        common::global_logger().warn(
            "proc-supervisor: respawned shard %d of %s", k,
            group_name_.c_str());
        pw = ProcessWatch{};
      }
      continue;
    }

    if (health.heartbeat != pw.last_heartbeat || pw.last_progress == 0) {
      // Progress (or first sight): restart the ladder.
      pw = ProcessWatch{};
      pw.last_heartbeat = health.heartbeat;
      pw.last_progress = now;
      continue;
    }

    const common::Nanos silent = now - pw.last_progress;
    if (!pw.probed && silent > config_.stall_grace) {
      // Stage 1: probe — existence check, and the stall goes on record.
      stalls_detected_.fetch_add(1, std::memory_order_relaxed);
      if (stalls_metric_ != nullptr) stalls_metric_->increment();
      probes_.fetch_add(1, std::memory_order_relaxed);
      (void)group_->signal_process(k, 0);
      common::global_logger().warn(
          "proc-supervisor: shard %d of %s silent for %s (probed)", k,
          group_name_.c_str(), common::format_duration(silent).c_str());
      pw.probed = true;
      pw.probed_at = now;
      continue;
    }
    if (pw.probed && !pw.termed && now > pw.probed_at + config_.term_grace) {
      // Stage 2: SIGTERM — give the drain path a chance to snapshot.
      if (group_->signal_process(k, SIGTERM)) {
        terms_.fetch_add(1, std::memory_order_relaxed);
        common::global_logger().warn(
            "proc-supervisor: SIGTERM to wedged shard %d of %s", k,
            group_name_.c_str());
      }
      pw.termed = true;
      pw.termed_at = now;
      continue;
    }
    if (pw.termed && !pw.killed && now > pw.termed_at + config_.kill_grace) {
      // Stage 3: SIGKILL — the journal makes this always safe.
      if (group_->signal_process(k, SIGKILL)) {
        kills_.fetch_add(1, std::memory_order_relaxed);
        if (kills_metric_ != nullptr) kills_metric_->increment();
        common::global_logger().warn(
            "proc-supervisor: SIGKILL to wedged shard %d of %s", k,
            group_name_.c_str());
        obs::flight_trigger("shard-process-kill");
      }
      pw.killed = true;
    }
  }
}

}  // namespace rtseed::fault
