#include "fault/injector.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace rtseed::fault {

const char* inject_point_name(InjectPoint point) {
  switch (point) {
    case InjectPoint::kLostWake:
      return "lost-wake";
    case InjectPoint::kDelayedWake:
      return "delayed-wake";
    case InjectPoint::kWorkerStall:
      return "worker-stall";
    case InjectPoint::kWorkerDeath:
      return "worker-death";
    case InjectPoint::kBodyOverrun:
      return "body-overrun";
    case InjectPoint::kTimerMisfire:
      return "timer-misfire";
    case InjectPoint::kEintrStorm:
      return "eintr-storm";
    case InjectPoint::kClockJump:
      return "clock-jump";
    case InjectPoint::kShardKill:
      return "shard-kill";
    case InjectPoint::kHeartbeatStall:
      return "heartbeat-stall";
    case InjectPoint::kTornShmWrite:
      return "torn-shm-write";
    case InjectPoint::kJournalTruncate:
      return "journal-truncate";
    case InjectPoint::kCount:
      break;
  }
  return "?";
}

InjectorConfig InjectorConfig::chaos(std::uint64_t seed, double r) {
  InjectorConfig config;
  config.seed = seed;
  config.rate.fill(r);
  // Worker death is drastic (requires a respawn each time): keep it an
  // order of magnitude rarer than the recoverable faults.
  config.rate[static_cast<int>(InjectPoint::kWorkerDeath)] = r / 10.0;
  return config;
}

namespace {

// Stateless mix of (seed, point, sequence) -> uniform u64.  Chaining two
// SplitMix64 steps avalanches the small point/sequence integers apart.
common::u64 decision_hash(common::u64 seed, int point, common::u64 seq) {
  common::u64 state = seed;
  (void)common::splitmix64(state);
  state ^= 0x9E3779B97F4A7C15ULL * static_cast<common::u64>(point + 1);
  (void)common::splitmix64(state);
  state ^= seq;
  return common::splitmix64(state);
}

common::u64 rate_to_threshold(double rate) {
  if (rate <= 0.0) return 0;
  if (rate >= 1.0) return ~0ULL;
  const double scaled = std::ldexp(rate, 64);  // rate * 2^64
  if (scaled >= 18446744073709549568.0) return ~0ULL - 1;  // largest exact u64
  return static_cast<common::u64>(scaled);
}

}  // namespace

namespace detail {
std::atomic<Injector*> g_injector{nullptr};
}  // namespace detail

void install_injector(Injector* injector) {
  detail::g_injector.store(injector, std::memory_order_release);
}

Injector::Injector(InjectorConfig config) : config_(config) {
  for (int p = 0; p < kNumInjectPoints; ++p) {
    points_[static_cast<common::usize>(p)].threshold =
        rate_to_threshold(config_.rate[static_cast<common::usize>(p)]);
  }
}

bool Injector::fire(InjectPoint point) {
  auto& state = points_[static_cast<common::usize>(static_cast<int>(point))];
  if (state.threshold == 0) {
    state.seq.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const common::u64 seq = state.seq.fetch_add(1, std::memory_order_relaxed);
  const common::u64 draw =
      decision_hash(config_.seed, static_cast<int>(point), seq);
  // threshold == ~0 means rate >= 1: always fire.
  if (draw >= state.threshold && state.threshold != ~0ULL) return false;
  if (config_.max_fires_per_point >= 0) {
    // Bounded chaos: claim a fire slot; past the cap the point goes quiet.
    common::u64 fired = state.fired.load(std::memory_order_relaxed);
    for (;;) {
      if (fired >=
          static_cast<common::u64>(config_.max_fires_per_point)) {
        return false;
      }
      if (state.fired.compare_exchange_weak(fired, fired + 1,
                                            std::memory_order_relaxed)) {
        log_fire(point);
        return true;
      }
    }
  }
  state.fired.fetch_add(1, std::memory_order_relaxed);
  log_fire(point);
  return true;
}

void Injector::log_fire(InjectPoint point) {
  const common::u64 i = log_next_.fetch_add(1, std::memory_order_relaxed);
  if (i >= kFireLogCapacity) return;  // counted but no longer logged
  auto& slot = log_[static_cast<common::usize>(i)];
  const TimestampFn fn = ts_fn_.load(std::memory_order_acquire);
  slot.rec.timestamp = fn != nullptr ? fn(ts_ctx_) : 0;
  slot.rec.point = point;
  slot.stamp.store(i + 1, std::memory_order_release);
}

std::vector<FireRecord> Injector::fire_log() const {
  const common::u64 n = std::min<common::u64>(
      log_next_.load(std::memory_order_acquire), kFireLogCapacity);
  std::vector<FireRecord> out;
  out.reserve(static_cast<common::usize>(n));
  for (common::u64 i = 0; i < n; ++i) {
    const auto& slot = log_[static_cast<common::usize>(i)];
    if (slot.stamp.load(std::memory_order_acquire) != i + 1) continue;
    out.push_back(slot.rec);
  }
  return out;
}

common::u64 Injector::total_injected() const {
  common::u64 n = 0;
  for (int p = 0; p < kNumInjectPoints; ++p) {
    n += injected(static_cast<InjectPoint>(p));
  }
  return n;
}

}  // namespace rtseed::fault
