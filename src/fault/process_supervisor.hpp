// Process supervision — fault::Supervisor's escalation ladder lifted to
// OS processes (DESIGN.md §14.5).
//
// The thread-pool Supervisor watches heartbeat words and escalates
// force → signal → respawn inside one address space.  Crash-isolated
// shard deployments need the same ladder across a process boundary: a
// shard worker bumps a heartbeat word in the SHARED segment every loop,
// and this parent-side supervisor polls those words plus waitpid, and
// escalates a silent worker in stages:
//
//   stage 1 (stall_grace without a heartbeat): PROBE — kill(pid, 0) to
//     distinguish "gone" from "wedged", and count the stall;
//   stage 2 (term_grace later): SIGTERM — the worker's drain path writes
//     a final snapshot and exits cleanly if it can still run;
//   stage 3 (kill_grace later): SIGKILL — no negotiating with a wedged
//     process holding no shared locks (the transport is lock-free and
//     the journal is append-only, so the kill is always safe);
//   reap: waitpid(WNOHANG) notices any death (clean, killed, or crashed),
//     and the group's respawn hook re-forks the shard, which recovers
//     from its journal.
//
// The group side of the contract is SupervisedProcessGroup, implemented
// by shard::ProcessShardRuntime.  Like SupervisedPool, the interface
// lives here (fault) and the implementation lives above (shard) so the
// dependency graph stays acyclic.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/time.hpp"
#include "obs/telemetry.hpp"
#include "rt/thread.hpp"

namespace rtseed::fault {

/// Snapshot of one supervised process, read from shm + the process table.
struct ProcessHealth {
  bool alive = false;         ///< forked and not yet reaped
  common::u64 heartbeat = 0;  ///< its shm heartbeat word
  common::u32 pid = 0;
};

/// What the supervisor needs from a process group
/// (shard::ProcessShardRuntime).
class SupervisedProcessGroup {
 public:
  virtual ~SupervisedProcessGroup() = default;

  virtual int process_count() const = 0;
  virtual ProcessHealth process_health(int index) const = 0;

  /// Delivers `signo` (0 = existence probe).  False when delivery failed
  /// (already gone).
  virtual bool signal_process(int index, int signo) = 0;

  /// waitpid(WNOHANG)-reaps a dead process.  True when a death was
  /// collected this call (the group marks the slot down).
  virtual bool reap_process(int index) = 0;

  /// Re-forks a reaped process (journal recovery inside).  False when
  /// nothing was respawned.
  virtual bool respawn_process(int index) = 0;
};

struct ProcessSupervisorConfig {
  common::Nanos poll_interval = common::millis(2);
  /// Heartbeat silence before stage-1 probe.
  common::Nanos stall_grace = common::millis(50);
  /// After the probe, silence before SIGTERM.
  common::Nanos term_grace = common::millis(50);
  /// After SIGTERM, silence before SIGKILL.
  common::Nanos kill_grace = common::millis(100);
  bool respawn_dead = true;
  /// Chaos: rate-gated by fault::InjectPoint::kShardKill — when it fires,
  /// the supervisor SIGKILLs a live process (round-robin), exercising
  /// the full detect → reap → respawn → recover path.
  bool allow_chaos_kill = false;
  int fifo_priority = 0;  ///< 0 = best-effort (never preempts the RT band)
};

struct ProcessSupervisorStats {
  common::u64 stalls_detected = 0;
  common::u64 probes = 0;
  common::u64 terms = 0;
  common::u64 kills = 0;
  common::u64 reaps = 0;
  common::u64 respawns = 0;
  common::u64 chaos_kills = 0;
};

class ProcessSupervisor {
 public:
  explicit ProcessSupervisor(ProcessSupervisorConfig config);
  ~ProcessSupervisor();

  ProcessSupervisor(const ProcessSupervisor&) = delete;
  ProcessSupervisor& operator=(const ProcessSupervisor&) = delete;

  /// Registers the group to watch (before start()); must outlive stop().
  void watch(SupervisedProcessGroup* group, std::string name);

  void set_telemetry(obs::Telemetry* telemetry);

  common::Status start();
  /// Stops and joins.  Call before tearing the group down.
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  ProcessSupervisorStats stats() const;

  /// One synchronous scan on the caller's thread — deterministic tests
  /// drive the ladder without the poll thread's timing.
  void scan_once(common::Nanos now);

 private:
  /// Escalation state per process; reset whenever the heartbeat moves.
  struct ProcessWatch {
    common::u64 last_heartbeat = 0;
    common::Nanos last_progress = 0;
    bool probed = false;
    common::Nanos probed_at = 0;
    bool termed = false;
    common::Nanos termed_at = 0;
    bool killed = false;
  };

  void supervisor_loop();
  void scan(common::Nanos now);

  ProcessSupervisorConfig config_;
  SupervisedProcessGroup* group_ = nullptr;
  std::string group_name_;
  std::vector<ProcessWatch> watches_;
  int chaos_cursor_ = 0;

  std::unique_ptr<rt::RtThread> thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint32_t> stop_word_{0};

  std::atomic<common::u64> stalls_detected_{0};
  std::atomic<common::u64> probes_{0};
  std::atomic<common::u64> terms_{0};
  std::atomic<common::u64> kills_{0};
  std::atomic<common::u64> reaps_{0};
  std::atomic<common::u64> respawns_{0};
  std::atomic<common::u64> chaos_kills_{0};

  obs::Telemetry* telemetry_ = nullptr;
  obs::Counter* stalls_metric_ = nullptr;
  obs::Counter* kills_metric_ = nullptr;
  obs::Counter* respawns_metric_ = nullptr;
};

}  // namespace rtseed::fault
