// Naive std::map reference order book — the differential-testing oracle
// for BitmapBook (tests/lob/test_fuzz_flow.cpp, tests/lob/fuzz_flow).
//
// Same externally observable semantics as BitmapBook — same price band,
// same capacity cap, same arrival-seq assignment, same matching and
// replace rules, same digest() traversal — implemented with the most
// obviously correct containers available (ordered maps of FIFO deques).
// It allocates freely and is orders of magnitude slower; it exists only
// so the two implementations can disagree loudly.  Any divergence in
// trade tape or digest over identical input is a bug in exactly one of
// them.
#pragma once

#include <deque>
#include <map>
#include <unordered_map>

#include "lob/book.hpp"  // BookConfig + digest_mix (the shared contract)

namespace rtseed::lob {

class ReferenceBook {
 public:
  explicit ReferenceBook(BookConfig config = {}) : config_(config) {}

  SubmitResult add_limit(Side side, PriceTicks price, Qty qty,
                         TradeSink* tape, u64 cookie = 0);
  SubmitResult add_market(Side side, Qty qty, TradeSink* tape);
  AmendResult cancel(OrderId id);
  AmendResult replace(OrderId id, PriceTicks new_price, Qty new_qty,
                      TradeSink* tape, SubmitResult* readd);

  BookTop top() const;
  usize open_orders() const { return locators_.size(); }
  u64 digest() const;

 private:
  struct RefOrder {
    u64 id = 0;
    u64 seq = 0;
    u64 cookie = 0;
    Qty open = 0;
  };
  /// Bids keyed descending so .begin() is the best level on both sides.
  using BidMap = std::map<PriceTicks, std::deque<RefOrder>, std::greater<>>;
  using AskMap = std::map<PriceTicks, std::deque<RefOrder>>;

  struct Locator {
    Side side = Side::kBid;
    PriceTicks price = 0;
  };

  bool in_band(PriceTicks price) const {
    return price >= config_.min_tick &&
           price < config_.min_tick + config_.num_levels;
  }

  Qty match(Side taker_side, PriceTicks limit, bool is_market, Qty qty,
            u64 taker_seq, TradeSink* tape);

  BookConfig config_;
  BidMap bids_;
  AskMap asks_;
  std::unordered_map<u64, Locator> locators_;  ///< open order id -> level
  u64 next_id_ = 0;
  u64 next_seq_ = 0;
};

}  // namespace rtseed::lob
