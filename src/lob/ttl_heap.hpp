// Fixed-capacity TTL min-heap: (expiry time, order handle) pairs,
// earliest first (DESIGN.md §13).
//
// Expiry uses LAZY deletion: cancels/fills/replaces never search the
// heap.  A popped entry whose order has since died (or whose slot was
// recycled — the handle's generation bits detect both) is simply
// discarded by the caller, so the steady-state cost is O(log n) per
// push/pop and zero per cancel.  The handle is an opaque u64 — the OMS
// stores ClientOrderId values, tests can store anything.  Capacity is
// fixed at construction (one allocation); a full heap rejects the push
// and the caller counts it — same drop-and-count discipline as the
// shard transport.
#pragma once

#include <utility>

#include "common/arena.hpp"
#include "lob/types.hpp"

namespace rtseed::lob {

class TtlHeap {
 public:
  struct Entry {
    Nanos expires_at = 0;
    u64 handle = 0;  ///< opaque order handle (e.g. ClientOrderId::value)
  };

  explicit TtlHeap(usize capacity)
      : capacity_(capacity),
        entries_(common::make_aligned_array<Entry>(capacity)) {}

  usize capacity() const { return capacity_; }
  usize size() const { return size_; }
  bool empty() const { return size_ == 0; }
  u64 dropped() const { return dropped_; }

  /// False (and a drop count) when full.
  bool push(Nanos expires_at, u64 handle) {
    if (size_ == capacity_) {
      ++dropped_;
      return false;
    }
    usize i = size_++;
    entries_[i] = Entry{expires_at, handle};
    while (i > 0) {
      const usize parent = (i - 1) / 2;
      if (entries_[parent].expires_at <= entries_[i].expires_at) break;
      std::swap(entries_[parent], entries_[i]);
      i = parent;
    }
    return true;
  }

  /// Earliest entry; undefined when empty (check empty() first).
  const Entry& top() const { return entries_[0]; }

  void pop() {
    entries_[0] = entries_[--size_];
    usize i = 0;
    for (;;) {
      const usize left = 2 * i + 1;
      const usize right = left + 1;
      usize smallest = i;
      if (left < size_ &&
          entries_[left].expires_at < entries_[smallest].expires_at) {
        smallest = left;
      }
      if (right < size_ &&
          entries_[right].expires_at < entries_[smallest].expires_at) {
        smallest = right;
      }
      if (smallest == i) return;
      std::swap(entries_[i], entries_[smallest]);
      i = smallest;
    }
  }

  void clear() { size_ = 0; }

 private:
  const usize capacity_;
  common::AlignedArrayPtr<Entry> entries_;
  usize size_ = 0;
  u64 dropped_ = 0;
};

}  // namespace rtseed::lob
