#include "lob/book.hpp"

#include <cstdio>
#include <cstring>

namespace rtseed::lob {

namespace {

constexpr u32 kSideMask = 1u;
constexpr u32 kOpenBit = 2u;

inline int bsr64(u64 w) {
  assert(w != 0);
  return 63 - __builtin_clzll(w);
}
inline int bsf64(u64 w) {
  assert(w != 0);
  return __builtin_ctzll(w);
}

/// Bits of `w` strictly above / strictly below position `pos`.
inline u64 bits_above(u64 w, int pos) {
  return pos >= 63 ? 0 : (w & ~((2ULL << pos) - 1));
}
inline u64 bits_below(u64 w, int pos) {
  return pos <= 0 ? 0 : (w & ((1ULL << pos) - 1));
}

}  // namespace

BitmapBook::BitmapBook(BookConfig config) : config_(config) {
  assert(config_.num_levels > 0 && config_.max_orders > 0);
  num_groups_ = (config_.num_levels + 63) / 64;
  num_summary_ = (num_groups_ + 63) / 64;
  for (int s = 0; s < 2; ++s) {
    levels_[s] =
        common::make_aligned_array<Level>(static_cast<usize>(config_.num_levels));
    groups_[s] = std::make_unique<u64[]>(static_cast<usize>(num_groups_));
    summary_[s] = std::make_unique<u64[]>(static_cast<usize>(num_summary_));
    std::memset(groups_[s].get(), 0, sizeof(u64) * static_cast<usize>(num_groups_));
    std::memset(summary_[s].get(), 0,
                sizeof(u64) * static_cast<usize>(num_summary_));
  }
  cells_ = common::make_aligned_array<OrderCell>(config_.max_orders);
  for (usize i = 0; i + 1 < config_.max_orders; ++i) {
    cells_[i].next = static_cast<u32>(i + 1);
  }
  cells_[config_.max_orders - 1].next = kNil;
  free_head_ = 0;
}

void BitmapBook::set_bit(Side s, i32 level) {
  const int side = side_index(s);
  groups_[side][level >> 6] |= 1ULL << (level & 63);
  summary_[side][(level >> 6) >> 6] |= 1ULL << ((level >> 6) & 63);
}

void BitmapBook::clear_bit(Side s, i32 level) {
  const int side = side_index(s);
  u64& g = groups_[side][level >> 6];
  g &= ~(1ULL << (level & 63));
  if (g == 0) {
    summary_[side][(level >> 6) >> 6] &= ~(1ULL << ((level >> 6) & 63));
  }
}

i32 BitmapBook::best_level(Side s) const { return best_[side_index(s)]; }

i32 BitmapBook::scan_best(Side s) const {
  const int side = side_index(s);
  if (s == Side::kBid) {
    // Best bid = HIGHEST non-empty level: BSR over summary, BSR in group.
    for (i32 w = num_summary_ - 1; w >= 0; --w) {
      const u64 sw = summary_[side][w];
      if (sw == 0) continue;
      const i32 g = w * 64 + bsr64(sw);
      return g * 64 + bsr64(groups_[side][g]);
    }
  } else {
    // Best ask = LOWEST non-empty level: BSF twice.
    for (i32 w = 0; w < num_summary_; ++w) {
      const u64 sw = summary_[side][w];
      if (sw == 0) continue;
      const i32 g = w * 64 + bsf64(sw);
      return g * 64 + bsf64(groups_[side][g]);
    }
  }
  return -1;
}

u32 BitmapBook::acquire_slot() {
  if (free_head_ == kNil) return kNil;
  const u32 slot = free_head_;
  free_head_ = cells_[slot].next;
  ++open_orders_;
  return slot;
}

void BitmapBook::release_slot(u32 slot) {
  OrderCell& c = cells_[slot];
  c.side_and_open &= ~kOpenBit;
  if (++c.gen == 0) c.gen = 1;  // never hand out id.value == 0
  c.next = free_head_;
  c.prev = kNil;
  free_head_ = slot;
  --open_orders_;
}

u32 BitmapBook::resolve(OrderId id) const {
  const u32 slot = id.slot();
  if (!id.valid() || slot >= config_.max_orders) return kNil;
  const OrderCell& c = cells_[slot];
  if (c.gen != id.generation() || (c.side_and_open & kOpenBit) == 0) {
    return kNil;
  }
  return slot;
}

void BitmapBook::enqueue(Side side, i32 level, u32 slot) {
  Level& lvl = levels(side)[level];
  OrderCell& c = cells_[slot];
  c.prev = lvl.tail;
  c.next = kNil;
  if (lvl.tail != kNil) {
    cells_[lvl.tail].next = slot;
  } else {
    lvl.head = slot;
  }
  lvl.tail = slot;
  ++lvl.count;
}

void BitmapBook::unlink(Side side, i32 level, u32 slot) {
  Level& lvl = levels(side)[level];
  OrderCell& c = cells_[slot];
  if (c.prev != kNil) {
    cells_[c.prev].next = c.next;
  } else {
    lvl.head = c.next;
  }
  if (c.next != kNil) {
    cells_[c.next].prev = c.prev;
  } else {
    lvl.tail = c.prev;
  }
  --lvl.count;
}

Qty BitmapBook::match(Side taker_side, i32 limit_level, Qty qty, u64 taker_seq,
                      TradeSink* tape) {
  const Side maker_side = other_side(taker_side);
  const int maker = side_index(maker_side);
  Qty filled = 0;
  while (qty > 0) {
    const i32 best = best_[maker];
    if (best < 0) break;
    if (limit_level >= 0) {
      if (taker_side == Side::kBid && best > limit_level) break;
      if (taker_side == Side::kAsk && best < limit_level) break;
    }
    Level& lvl = levels(maker_side)[best];
    while (qty > 0 && lvl.head != kNil) {
      const u32 slot = lvl.head;
      OrderCell& mk = cells_[slot];
      const Qty take = mk.open < qty ? mk.open : qty;
      mk.open -= take;
      lvl.qty -= take;
      side_qty_[maker] -= take;
      qty -= take;
      filled += take;
      ++stats_.trades;
      stats_.volume += static_cast<u64>(take);
      if (tape != nullptr) {
        tape->on_trade(Trade{mk.seq, taker_seq, mk.cookie, price_of(best),
                             take, taker_side});
      }
      if (mk.open == 0) {
        unlink(maker_side, best, slot);
        release_slot(slot);
      }
    }
    if (lvl.count == 0) {
      clear_bit(maker_side, best);
      best_[maker] = scan_best(maker_side);
    }
  }
  return filled;
}

SubmitResult BitmapBook::add_limit(Side side, PriceTicks price, Qty qty,
                                   TradeSink* tape, u64 cookie) {
  SubmitResult r;
  const i32 level = level_of(price);
  if (level < 0 || qty <= 0) {
    ++stats_.band_rejects;
    return r;
  }
  const u64 seq = ++next_seq_;
  r.seq = seq;
  r.accepted = true;
  ++stats_.orders_accepted;
  r.filled = match(side, level, qty, seq, tape);
  const Qty rest = qty - r.filled;
  if (rest > 0) {
    const u32 slot = acquire_slot();
    if (slot == kNil) {
      // Table full: the unfilled remainder is dropped and counted (the
      // reference book enforces the same cap, so streams stay aligned).
      ++stats_.capacity_rejects;
      return r;
    }
    OrderCell& c = cells_[slot];
    c.price = price;
    c.open = rest;
    c.seq = seq;
    c.cookie = cookie;
    c.side_and_open = static_cast<u32>(side) | kOpenBit;
    enqueue(side, level, slot);
    Level& lvl = levels(side)[level];
    lvl.qty += rest;
    side_qty_[side_index(side)] += rest;
    set_bit(side, level);
    i32& best = best_[side_index(side)];
    if (best < 0 || (side == Side::kBid ? level > best : level < best)) {
      best = level;
    }
    r.id = OrderId::make(c.gen, slot);
    r.remaining = rest;
  }
  return r;
}

SubmitResult BitmapBook::add_market(Side side, Qty qty, TradeSink* tape) {
  SubmitResult r;
  if (qty <= 0) {
    ++stats_.band_rejects;
    return r;
  }
  const u64 seq = ++next_seq_;
  r.seq = seq;
  r.accepted = true;
  ++stats_.market_orders;
  r.filled = match(side, -1, qty, seq, tape);
  return r;  // IOC: remainder discarded, nothing rests
}

AmendResult BitmapBook::cancel(OrderId id) {
  const u32 slot = resolve(id);
  if (slot == kNil) return AmendResult::kUnknownOrder;
  const OrderCell& c = cells_[slot];
  const Side side = static_cast<Side>(c.side_and_open & kSideMask);
  const i32 level = level_of(c.price);
  Level& lvl = levels(side)[level];
  lvl.qty -= c.open;
  side_qty_[side_index(side)] -= c.open;
  unlink(side, level, slot);
  release_slot(slot);
  if (lvl.count == 0) {
    clear_bit(side, level);
    best_[side_index(side)] = scan_best(side);
  }
  ++stats_.cancels;
  return AmendResult::kOk;
}

AmendResult BitmapBook::replace(OrderId id, PriceTicks new_price, Qty new_qty,
                                TradeSink* tape, SubmitResult* readd) {
  const u32 slot = resolve(id);
  if (slot == kNil) return AmendResult::kUnknownOrder;
  OrderCell& c = cells_[slot];
  if (new_qty <= 0 || level_of(new_price) < 0) return AmendResult::kRejected;
  if (new_price == c.price && new_qty == c.open) return AmendResult::kNoChange;

  const Side side = static_cast<Side>(c.side_and_open & kSideMask);
  if (new_price == c.price && new_qty < c.open) {
    // Same-price qty decrease: edit in place, priority and seq kept
    // (the RichTraders delta rule — a shrink never queue-jumps anyone).
    const Qty delta = c.open - new_qty;
    c.open = new_qty;
    levels(side)[level_of(c.price)].qty -= delta;
    side_qty_[side_index(side)] -= delta;
    ++stats_.replaces_in_place;
    if (readd != nullptr) {
      *readd = SubmitResult{id, c.seq, 0, new_qty, true};
    }
    return AmendResult::kOk;
  }

  // Price change or qty increase: lose time priority — cancel and
  // re-enter as a fresh arrival (new seq, may cross immediately).
  const u64 cookie = c.cookie;
  const i32 level = level_of(c.price);
  Level& lvl = levels(side)[level];
  lvl.qty -= c.open;
  side_qty_[side_index(side)] -= c.open;
  unlink(side, level, slot);
  release_slot(slot);
  if (lvl.count == 0) {
    clear_bit(side, level);
    best_[side_index(side)] = scan_best(side);
  }
  ++stats_.replaces_as_new;
  const SubmitResult fresh = add_limit(side, new_price, new_qty, tape, cookie);
  if (readd != nullptr) *readd = fresh;
  return AmendResult::kOk;
}

BookTop BitmapBook::top() const {
  BookTop t;
  const i32 bid = best_[side_index(Side::kBid)];
  if (bid >= 0) {
    t.bid_price = price_of(bid);
    t.bid_qty = levels(Side::kBid)[bid].qty;
  }
  const i32 ask = best_[side_index(Side::kAsk)];
  if (ask >= 0) {
    t.ask_price = price_of(ask);
    t.ask_qty = levels(Side::kAsk)[ask].qty;
  }
  return t;
}

Qty BitmapBook::open_qty(OrderId id) const {
  const u32 slot = resolve(id);
  return slot == kNil ? 0 : cells_[slot].open;
}

PriceTicks BitmapBook::order_price(OrderId id) const {
  const u32 slot = resolve(id);
  return slot == kNil ? 0 : cells_[slot].price;
}

u64 BitmapBook::order_seq(OrderId id) const {
  const u32 slot = resolve(id);
  return slot == kNil ? 0 : cells_[slot].seq;
}

u64 BitmapBook::order_cookie(OrderId id) const {
  const u32 slot = resolve(id);
  return slot == kNil ? 0 : cells_[slot].cookie;
}

namespace {
/// Next non-empty level strictly worse than `from` (lower for bids,
/// higher for asks); -1 when none.  Group-word walk; the summary is not
/// consulted because depth queries stay near the best levels.
i32 next_worse_level(const u64* groups, i32 num_groups, Side s, i32 from) {
  i32 g = from >> 6;
  if (s == Side::kBid) {
    u64 w = bits_below(groups[g], from & 63);
    for (;;) {
      if (w != 0) return g * 64 + bsr64(w);
      if (--g < 0) return -1;
      w = groups[g];
    }
  }
  u64 w = bits_above(groups[g], from & 63);
  for (;;) {
    if (w != 0) return g * 64 + bsf64(w);
    if (++g >= num_groups) return -1;
    w = groups[g];
  }
}
}  // namespace

int BitmapBook::collect_levels(Side side, LevelView* out, int max) const {
  const u64* groups = groups_[side_index(side)].get();
  int n = 0;
  i32 lvl = best_[side_index(side)];
  while (lvl >= 0 && n < max) {
    const Level& L = levels(side)[lvl];
    out[n++] = LevelView{price_of(lvl), L.qty, L.count};
    lvl = next_worse_level(groups, num_groups_, side, lvl);
  }
  return n;
}

u64 BitmapBook::digest() const {
  u64 h = 0;
  for (const Side side : {Side::kBid, Side::kAsk}) {
    digest_mix(h, 0xABCD0000ULL + static_cast<u64>(side));
    const u64* groups = groups_[side_index(side)].get();
    i32 lvl = best_[side_index(side)];
    while (lvl >= 0) {
      const Level& L = levels(side)[lvl];
      digest_mix(h, static_cast<u64>(price_of(lvl)));
      digest_mix(h, static_cast<u64>(L.qty));
      digest_mix(h, L.count);
      for (u32 s = L.head; s != kNil; s = cells_[s].next) {
        digest_mix(h, cells_[s].seq);
        digest_mix(h, static_cast<u64>(cells_[s].open));
      }
      lvl = next_worse_level(groups, num_groups_, side, lvl);
    }
  }
  return h;
}

bool BitmapBook::check_invariants(char* why, usize why_len) const {
  const auto fail = [&](const char* fmt, auto... args) {
    if (why != nullptr && why_len > 0) {
      std::snprintf(why, why_len, fmt, args...);
    }
    return false;
  };

  usize total_orders = 0;
  for (const Side side : {Side::kBid, Side::kAsk}) {
    const int s = side_index(side);
    Qty side_total = 0;
    for (i32 lvl = 0; lvl < config_.num_levels; ++lvl) {
      const Level& L = levels(side)[lvl];
      const bool bit =
          (groups_[s][lvl >> 6] >> (lvl & 63)) & 1ULL;
      if (bit != (L.count > 0)) {
        return fail("%s level %ld: bit=%d count=%u (bitmap/list mismatch)",
                    side_name(side), static_cast<long>(price_of(lvl)),
                    bit ? 1 : 0, L.count);
      }
      Qty level_qty = 0;
      u32 n = 0;
      u64 last_seq = 0;
      u32 prev = kNil;
      for (u32 c = L.head; c != kNil; c = cells_[c].next) {
        if (++n > L.count) {
          return fail("%s level %ld: list longer than count %u",
                      side_name(side), static_cast<long>(price_of(lvl)),
                      L.count);
        }
        const OrderCell& cell = cells_[c];
        if ((cell.side_and_open & kOpenBit) == 0) {
          return fail("%s level %ld: closed cell %u on list",
                      side_name(side), static_cast<long>(price_of(lvl)), c);
        }
        if (static_cast<Side>(cell.side_and_open & kSideMask) != side) {
          return fail("cell %u on wrong side list", c);
        }
        if (cell.price != price_of(lvl)) {
          return fail("cell %u price %ld on level %ld", c,
                      static_cast<long>(cell.price),
                      static_cast<long>(price_of(lvl)));
        }
        if (cell.open <= 0) {
          return fail("cell %u open qty %ld <= 0", c,
                      static_cast<long>(cell.open));
        }
        if (cell.seq <= last_seq) {
          return fail("%s level %ld: FIFO violated (seq %llu after %llu)",
                      side_name(side), static_cast<long>(price_of(lvl)),
                      static_cast<unsigned long long>(cell.seq),
                      static_cast<unsigned long long>(last_seq));
        }
        if (cell.prev != prev) {
          return fail("cell %u prev link broken", c);
        }
        last_seq = cell.seq;
        prev = c;
        level_qty += cell.open;
      }
      if (prev != L.tail) {
        return fail("%s level %ld: tail link broken", side_name(side),
                    static_cast<long>(price_of(lvl)));
      }
      if (n != L.count) {
        return fail("%s level %ld: count %u but %u on list", side_name(side),
                    static_cast<long>(price_of(lvl)), L.count, n);
      }
      if (level_qty != L.qty) {
        return fail("%s level %ld: qty %ld but members sum %ld",
                    side_name(side), static_cast<long>(price_of(lvl)),
                    static_cast<long>(L.qty), static_cast<long>(level_qty));
      }
      side_total += L.qty;
      total_orders += n;
    }
    for (i32 g = 0; g < num_groups_; ++g) {
      const bool sbit = (summary_[s][g >> 6] >> (g & 63)) & 1ULL;
      if (sbit != (groups_[s][g] != 0)) {
        return fail("%s summary bit %d inconsistent", side_name(side), g);
      }
    }
    if (best_[s] != scan_best(side)) {
      return fail("%s best cache %d != scan %d", side_name(side), best_[s],
                  scan_best(side));
    }
    if (side_total != side_qty_[s]) {
      return fail("%s qty total %ld != tracked %ld", side_name(side),
                  static_cast<long>(side_total),
                  static_cast<long>(side_qty_[s]));
    }
  }
  if (total_orders != open_orders_) {
    return fail("open order count %zu != tracked %zu", total_orders,
                open_orders_);
  }

  // Uncrossed after matching: best bid strictly below best ask.
  const i32 bb = best_[side_index(Side::kBid)];
  const i32 ba = best_[side_index(Side::kAsk)];
  if (bb >= 0 && ba >= 0 && bb >= ba) {
    return fail("book crossed: best bid %ld >= best ask %ld",
                static_cast<long>(price_of(bb)),
                static_cast<long>(price_of(ba)));
  }

  // Free list accounts for every slot not open (bounded walk — a cycle
  // would otherwise hang the audit).
  usize free_count = 0;
  for (u32 c = free_head_; c != kNil; c = cells_[c].next) {
    if (++free_count > config_.max_orders) {
      return fail("free list cycle");
    }
    if ((cells_[c].side_and_open & kOpenBit) != 0) {
      return fail("open cell %u on free list", c);
    }
  }
  if (free_count + open_orders_ != config_.max_orders) {
    return fail("slot leak: %zu free + %zu open != %zu", free_count,
                open_orders_, config_.max_orders);
  }
  return true;
}

}  // namespace rtseed::lob
