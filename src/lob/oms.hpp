// Order management: client order records, lifecycle state machine, TTL
// expiry, pre-trade risk, and synthetic market flow over one BitmapBook
// (DESIGN.md §13).
//
// The OrderManager owns the book and is the only writer.  Two kinds of
// flow pass through it:
//
//   * CLIENT orders (submit / request_cancel / request_replace): each
//     gets a fixed-slot record driving the OrderState machine.  Risk is
//     checked pre-trade; resting orders carry cookie = the full
//     ClientOrderId value (generation included, so a recycled slot can
//     never mis-route) and maker-side executions route back to their
//     record in O(1) from the trade tape.  TTLs go into a lazy min-heap;
//     expire() sweeps them.
//   * MARKET flow (apply_flow): anonymous FlowGenerator events — the
//     background order stream client orders trade against.  Cookie 0,
//     no records, no risk accounting.
//
// Everything is allocated at construction; steady state is
// allocation-free (tests/hotpath/test_zero_alloc.cpp audits a full OMS
// round).  Single-threaded by design: one OMS per shard, mutated only
// from that shard's mandatory part.
#pragma once

#include "common/arena.hpp"
#include "lob/book.hpp"
#include "lob/flow.hpp"
#include "lob/order_state.hpp"
#include "lob/risk.hpp"
#include "lob/ttl_heap.hpp"

namespace rtseed::lob {

/// Client-order handle: same {generation, slot} packing as OrderId but a
/// distinct type — book handles and client handles live in different
/// tables and silently mixing them is exactly the bug class the split
/// prevents.
struct ClientOrderId {
  u64 value = 0;

  static constexpr ClientOrderId invalid() { return ClientOrderId{0}; }
  static constexpr ClientOrderId make(u32 generation, u32 slot) {
    return ClientOrderId{(static_cast<u64>(generation) << 32) |
                         static_cast<u64>(slot)};
  }
  constexpr u32 generation() const { return static_cast<u32>(value >> 32); }
  constexpr u32 slot() const { return static_cast<u32>(value); }
  constexpr bool valid() const { return value != 0; }
  constexpr bool operator==(const ClientOrderId& o) const {
    return value == o.value;
  }
};

enum class KillReason : u32 {
  kSupervisor = 0,  ///< middleware supervisor terminated the task
  kBreakerShed,     ///< circuit breaker shed optional work / flattened
};

struct OmsConfig {
  BookConfig book;
  RiskConfig risk;
  usize max_client_orders = 1024;
  /// TTL heap capacity; lazy deletion means dead entries linger, so size
  /// this a few times max_client_orders.
  usize ttl_capacity = 4096;
};

/// Observable client-order record.
struct ClientOrder {
  OrderId book_id;        ///< current book handle (invalid when not resting)
  OrderState state = OrderState::kPendingNew;
  Side side = Side::kBid;
  PriceTicks price = 0;
  Qty qty = 0;            ///< current order size (updated by replace)
  Qty filled = 0;         ///< cumulative executed qty
  Qty resting = 0;        ///< open qty in the book right now
  Nanos expires_at = 0;   ///< 0 = no TTL
};

/// Outcome of OrderManager::submit.  When the order reached a terminal
/// state synchronously (full fill, rejection) the record is already
/// released and `id` is stale; `state`/`filled` carry the final word.
struct SubmitOutcome {
  ClientOrderId id;
  OrderState state = OrderState::kRejected;
  RiskVerdict verdict = RiskVerdict::kOk;
  Qty filled = 0;
  Qty resting = 0;
};

/// Lifecycle event tap (tests, exec-report publication).  Called
/// synchronously for every legal transition of a client order; must not
/// allocate.
class OmsListener {
 public:
  virtual ~OmsListener() = default;
  virtual void on_order_event(ClientOrderId id, OrderEvent event,
                              OrderState state) = 0;
};

class OrderManager {
 public:
  struct Stats {
    u64 submissions = 0;
    u64 accepted = 0;
    u64 risk_rejects = 0;
    u64 book_rejects = 0;        ///< band/qty rejects at the book
    u64 capacity_truncated = 0;  ///< book table full: remainder force-canceled
    u64 taker_fills = 0;         ///< trade prints where a client was taker
    u64 maker_fills = 0;         ///< trade prints routed via cookie
    u64 cancels = 0;
    u64 replaces = 0;
    u64 replace_rejects = 0;
    u64 expired = 0;
    u64 killed_supervisor = 0;
    u64 killed_shed = 0;
    /// Indexed by OrderState; only terminal indices populated.  An order
    /// lands in exactly one bucket exactly once — the invariant
    /// tests/lob/test_order_lifecycle.cpp checks.
    u64 terminal[kNumOrderStates] = {};
  };

  explicit OrderManager(OmsConfig config = {});

  OrderManager(const OrderManager&) = delete;
  OrderManager& operator=(const OrderManager&) = delete;

  const OmsConfig& config() const { return config_; }
  const Stats& stats() const { return stats_; }
  BitmapBook& book() { return book_; }
  const BitmapBook& book() const { return book_; }
  const RiskEngine& risk() const { return risk_; }
  const OrderStateMachine& machine() const { return machine_; }
  const TtlHeap& ttl_heap() const { return ttl_; }

  void set_listener(OmsListener* listener) { listener_ = listener; }

  // ---- client flow -------------------------------------------------------
  /// Risk-checks and submits a client limit order.  `ttl` > 0 arms
  /// expiry at now + ttl.  Trades print on `tape` (may be null).
  SubmitOutcome submit(Side side, PriceTicks price, Qty qty, Nanos now,
                       Nanos ttl, TradeSink* tape);

  /// Cancel request; synchronous ack.  False for stale/terminal handles.
  bool request_cancel(ClientOrderId id);

  /// Replace request; synchronous ack or reject (order stays live on
  /// reject).  False for stale/terminal handles.
  bool request_replace(ClientOrderId id, PriceTicks new_price, Qty new_qty,
                       TradeSink* tape);

  /// Force-terminates one order (CANCELED).  False for stale handles.
  bool kill(ClientOrderId id, KillReason reason);
  /// Force-terminates every live client order; returns how many died.
  usize kill_all(KillReason reason);

  /// Sweeps TTL expiries due at `now`; returns how many orders expired.
  usize expire(Nanos now);

  // ---- market flow -------------------------------------------------------
  /// Applies one synthetic market event (anonymous flow; client records
  /// untouched except via maker fills on the tape).
  void apply_flow(const FlowEvent& event, TradeSink* tape);

  // ---- queries -----------------------------------------------------------
  /// Live record for the handle, or nullptr when stale/released.
  const ClientOrder* lookup(ClientOrderId id) const;
  usize open_client_orders() const { return open_client_orders_; }
  Qty pending_buy_qty() const { return pending_qty_[0]; }
  Qty pending_sell_qty() const { return pending_qty_[1]; }

 private:
  static constexpr u32 kNoSlot = 0xFFFFFFFFu;

  /// Trade-tape shim the book calls during OMS-initiated operations:
  /// routes maker fills (cookie != 0) into client records, feeds risk,
  /// then forwards to the caller's tape.
  class Router final : public TradeSink {
   public:
    void on_trade(const Trade& trade) override;
    OrderManager* oms = nullptr;
    TradeSink* downstream = nullptr;
  };

  struct Record {
    ClientOrder order;
    u32 gen = 1;   ///< bumped on release; never 0
    bool in_use = false;
  };

  u32 acquire_record();
  void release_record(u32 slot);
  Record* resolve(ClientOrderId id);
  const Record* resolve(ClientOrderId id) const;

  /// Applies a lifecycle event; on entering a terminal state counts it,
  /// clears pending exposure, and releases the record.
  void apply_event(u32 slot, OrderEvent event);
  void handle_trade(const Trade& trade);

  /// Picks a live victim among resting market orders for cancel/replace
  /// flow events; compacts dead handles as a side effect.  kNoSlot-like
  /// invalid id when none remain.
  OrderId pick_market_victim(u64 pick);

  OmsConfig config_;
  Stats stats_;
  BitmapBook book_;
  RiskEngine risk_;
  OrderStateMachine machine_;
  TtlHeap ttl_;
  Router router_;
  OmsListener* listener_ = nullptr;

  common::AlignedArrayPtr<Record> records_;
  std::unique_ptr<u32[]> free_stack_;
  usize free_top_ = 0;
  usize open_client_orders_ = 0;
  Qty pending_qty_[2] = {0, 0};  ///< resting client qty per side

  /// Resting anonymous market orders (victim pool for flow cancels).
  /// Sized 2× the book's order table; filled-away orders leave stale
  /// entries behind, compacted when the pool fills.
  std::unique_ptr<OrderId[]> market_live_;
  usize market_cap_ = 0;
  usize market_live_count_ = 0;

  /// Set while a client order is the active taker inside a book call so
  /// Router can attribute taker-side executions to risk.
  bool client_taker_active_ = false;
  Side client_taker_side_ = Side::kBid;
};

}  // namespace rtseed::lob
