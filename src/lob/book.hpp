// Price-time-priority limit order book with two-level bitmap price-level
// indexing (DESIGN.md §13; technique after RichTraders, SNIPPETS.md §1).
//
// Layout (one allocation each, at construction — steady state never
// touches the heap):
//
//   levels_[side]   num_levels cache-line-aligned Level buckets: FIFO
//                   list head/tail into the order table + aggregate qty.
//   groups_[side]   one u64 per 64 consecutive levels; bit k set ⟺
//                   level (group*64 + k) is non-empty.
//   summary_[side]  one bit per GROUP word; finding the best level is
//                   BSR/BSF over ≤⌈levels/4096⌉ summary words, then one
//                   BSR/BSF in the group word — two bit scans, no walk
//                   over empty prices.
//   cells_          the order table: open orders as doubly-linked FIFO
//                   nodes per level, recycled through a free list of
//                   slot indices.  OrderId = {generation, slot} so a
//                   stale handle to a recycled slot resolves to nothing.
//
// Matching: an incoming limit crosses against the opposite side's best
// levels FIFO-within-level, printing at the RESTING order's price, then
// rests any remainder.  Market orders are IOC: unfilled remainder is
// discarded.  Replace keeps time priority only for a same-price qty
// decrease (the RichTraders delta rule); any other amendment is a
// cancel + fresh arrival with a new seq.
//
// Determinism: every accepted order gets a monotonic arrival seq; the
// trade tape and digest() speak seqs, so the std::map ReferenceBook
// (lob/reference_book.hpp) produces bit-identical output for identical
// input — the contract tests/lob/test_fuzz_flow.cpp enforces over
// millions of events.
#pragma once

#include <cassert>

#include "common/arena.hpp"
#include "common/cacheline.hpp"
#include "common/status.hpp"
#include "lob/types.hpp"

namespace rtseed::lob {

struct BookConfig {
  /// Price of level 0; legal prices are [min_tick, min_tick + num_levels).
  PriceTicks min_tick = 1;
  /// Size of the indexed price band.  2^14 levels ≈ 16k ticks of range;
  /// group bitmap 2 KiB/side, summary 4 words/side.
  i32 num_levels = 1 << 14;
  /// Order-table capacity = max simultaneously open orders.
  usize max_orders = 1 << 14;
};

class BitmapBook {
 public:
  struct Stats {
    u64 orders_accepted = 0;   ///< limit arrivals that entered the book/matched
    u64 market_orders = 0;
    u64 trades = 0;
    u64 volume = 0;            ///< total qty traded
    u64 band_rejects = 0;      ///< price outside the indexed band
    u64 capacity_rejects = 0;  ///< order table full (remainder dropped)
    u64 cancels = 0;
    u64 replaces_in_place = 0; ///< qty decrease, priority kept
    u64 replaces_as_new = 0;   ///< price/qty-up, re-queued
  };

  explicit BitmapBook(BookConfig config = {});

  BitmapBook(const BitmapBook&) = delete;
  BitmapBook& operator=(const BitmapBook&) = delete;

  const BookConfig& config() const { return config_; }
  const Stats& stats() const { return stats_; }

  /// Limit order: match while crossing, rest the remainder.  Rejected
  /// outright (no fills) when the price is outside the band or qty <= 0.
  SubmitResult add_limit(Side side, PriceTicks price, Qty qty,
                         TradeSink* tape, u64 cookie = 0);

  /// Market order (IOC): match against the whole opposite side, discard
  /// any remainder.  Never rests, never occupies a table slot.
  SubmitResult add_market(Side side, Qty qty, TradeSink* tape);

  /// Removes an open order's remaining qty.
  AmendResult cancel(OrderId id);

  /// Amends price/qty.  Same-price qty decrease edits in place (priority
  /// and seq kept, *readd reports the same id); anything else cancels and
  /// re-enters as a new arrival (*readd carries the new id/seq/fills).
  AmendResult replace(OrderId id, PriceTicks new_price, Qty new_qty,
                      TradeSink* tape, SubmitResult* readd);
  u64 order_cookie(OrderId id) const;

  // ---- queries -----------------------------------------------------------
  BookTop top() const;
  bool is_open(OrderId id) const { return resolve(id) != kNil; }
  Qty open_qty(OrderId id) const;
  PriceTicks order_price(OrderId id) const;
  u64 order_seq(OrderId id) const;
  usize open_orders() const { return open_orders_; }
  Qty side_qty(Side side) const { return side_qty_[static_cast<int>(side)]; }

  /// Fills `out[0..max)` with the best `max` levels of `side` (best
  /// first); returns how many were written.  O(levels visited).
  int collect_levels(Side side, LevelView* out, int max) const;

  /// Handle of the order at the FRONT of `side`'s best-level FIFO — the
  /// next to fill.  invalid() when the side is empty.  Purely a function
  /// of book content, so a journaled workload that cancels/replaces "the
  /// front order" replays to the same victims after recovery.
  OrderId front_order(Side side) const;

  // ---- snapshot / restore (crash recovery; lob/snapshot.cpp) -------------
  //
  // save_snapshot() serializes the COMPLETE book state — the raw order
  // table (open cells, free-list links, generations) plus every scalar —
  // and restore_snapshot() rebuilds the level lists and bitmaps from the
  // cell links.  A restored book is bit-identical to the source: same
  // digest, same future slot-allocation order, same seqs.  That is the
  // property the journaled shard worker needs — replaying deltas on a
  // restored book reproduces the pre-crash book exactly.

  /// Bytes save_snapshot() writes for this book's config.
  usize snapshot_bytes() const;
  /// Serializes into `out` (>= snapshot_bytes()); returns bytes written,
  /// 0 when `cap` is too small.
  usize save_snapshot(void* out, usize cap) const;
  /// Restores from a save_snapshot() image.  The image must come from a
  /// book with an identical BookConfig (checked).
  common::Status restore_snapshot(const void* data, usize bytes);

  /// Canonical content hash: sides, levels best→worst, orders in FIFO
  /// order, (price, seq, open qty).  Two books with equal digests hold
  /// bit-identical state.  Shared contract with ReferenceBook::digest().
  u64 digest() const;

  /// Full structural audit — bitmap↔list consistency, FIFO seq order,
  /// qty conservation, best-level caches, uncrossed top.  Returns true
  /// when every invariant holds; otherwise writes a description of the
  /// first violation into `why` (when non-null).  O(book size): tests
  /// only.
  bool check_invariants(char* why, usize why_len) const;

 private:
  static constexpr u32 kNil = 0xFFFFFFFFu;

  struct OrderCell {
    PriceTicks price = 0;
    Qty open = 0;
    u64 seq = 0;
    u64 cookie = 0;
    u32 prev = kNil;
    u32 next = kNil;  ///< FIFO link when open; free-list link when free
    u32 gen = 1;      ///< bumped on release; never 0 (id.value 0 = invalid)
    u32 side_and_open = 0;  ///< bit 0 side, bit 1 open flag
  };

  struct alignas(common::kCacheLine) Level {
    Qty qty = 0;
    u32 head = kNil;
    u32 tail = kNil;
    u32 count = 0;
  };

  int side_index(Side s) const { return static_cast<int>(s); }
  i32 level_of(PriceTicks price) const {
    const i64 idx = price - config_.min_tick;
    return (idx >= 0 && idx < config_.num_levels) ? static_cast<i32>(idx) : -1;
  }
  PriceTicks price_of(i32 level) const { return config_.min_tick + level; }

  Level* levels(Side s) { return levels_[side_index(s)].get(); }
  const Level* levels(Side s) const { return levels_[side_index(s)].get(); }

  void set_bit(Side s, i32 level);
  void clear_bit(Side s, i32 level);
  /// Highest (bids) / lowest (asks) non-empty level of `s`; -1 if none.
  i32 best_level(Side s) const;
  i32 scan_best(Side s) const;

  u32 acquire_slot();
  void release_slot(u32 slot);
  /// id → open slot index, kNil for stale/dead/invalid handles.
  u32 resolve(OrderId id) const;

  void enqueue(Side side, i32 level, u32 slot);
  void unlink(Side side, i32 level, u32 slot);

  /// Matches `qty` of an incoming `taker_side` order with price limit
  /// `limit_level` (-1 = market) against the opposite side.  Returns qty
  /// filled.
  Qty match(Side taker_side, i32 limit_level, Qty qty, u64 taker_seq,
            TradeSink* tape);

  BookConfig config_;
  common::AlignedArrayPtr<Level> levels_[2];
  std::unique_ptr<u64[]> groups_[2];
  std::unique_ptr<u64[]> summary_[2];
  i32 num_groups_ = 0;
  i32 num_summary_ = 0;
  i32 best_[2] = {-1, -1};  ///< cached best level per side, -1 = empty

  common::AlignedArrayPtr<OrderCell> cells_;
  u32 free_head_ = kNil;
  usize open_orders_ = 0;
  Qty side_qty_[2] = {0, 0};
  u64 next_seq_ = 0;
  Stats stats_;
};

/// Digest mixing shared by every book implementation (and the fuzz
/// harness's tape hash): order matters, collisions are astronomically
/// unlikely, and the function is trivially portable.
inline void digest_mix(u64& h, u64 v) {
  u64 s = v + 0x9E3779B97F4A7C15ULL;
  s = (s ^ (s >> 30)) * 0xBF58476D1CE4E5B9ULL;
  s = (s ^ (s >> 27)) * 0x94D049BB133111EBULL;
  h = (h ^ (s ^ (s >> 31))) * 0x2545F4914F6CDD1DULL + 0x632BE59BD9B4E019ULL;
}

inline u64 trade_hash(u64 h, const Trade& t) {
  digest_mix(h, t.maker_seq);
  digest_mix(h, t.taker_seq);
  digest_mix(h, t.maker_cookie);
  digest_mix(h, static_cast<u64>(t.price));
  digest_mix(h, static_cast<u64>(t.qty));
  digest_mix(h, static_cast<u64>(t.taker_side));
  return h;
}

}  // namespace rtseed::lob
