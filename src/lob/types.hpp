// Core vocabulary of the limit-order-book workload (DESIGN.md §13).
//
// Prices are integer TICKS (i64), never floats: the book indexes price
// levels by tick and two implementations (bitmap book and the std::map
// reference oracle) must agree bit-for-bit, which float rounding would
// forfeit.  Dollar conversion happens once, at the reporting edge
// (RiskEngine::tick_value).
//
// Order identity is two-layered:
//   * OrderId  — a packed {u32 generation, u32 slot} handle into the
//     owning book's order table.  Slots are recycled; the generation
//     detects stale handles in O(1).  Ids are implementation-PRIVATE:
//     the bitmap book and the reference book hand out different ones.
//   * arrival seq — a per-book monotonic counter stamped on every
//     accepted order.  Both implementations assign identical seqs for
//     identical input streams, so trades and digests compare on seq,
//     making differential fuzzing implementation-agnostic.
#pragma once

#include <cstdint>

#include "common/time.hpp"
#include "common/types.hpp"

namespace rtseed::lob {

using common::i32;
using common::i64;
using common::Nanos;
using common::u32;
using common::u64;
using common::usize;

/// Price in integer ticks.
using PriceTicks = i64;
/// Quantity in integer lots.
using Qty = i64;

enum class Side : u32 { kBid = 0, kAsk = 1 };

inline constexpr Side other_side(Side s) {
  return s == Side::kBid ? Side::kAsk : Side::kBid;
}
inline constexpr const char* side_name(Side s) {
  return s == Side::kBid ? "bid" : "ask";
}

/// Packed order handle: {generation << 32 | slot index}.
struct OrderId {
  u64 value = 0;

  static constexpr OrderId invalid() { return OrderId{0}; }
  static constexpr OrderId make(u32 generation, u32 slot) {
    return OrderId{(static_cast<u64>(generation) << 32) |
                   static_cast<u64>(slot)};
  }
  constexpr u32 generation() const { return static_cast<u32>(value >> 32); }
  constexpr u32 slot() const { return static_cast<u32>(value); }
  constexpr bool valid() const { return value != 0; }
  constexpr bool operator==(const OrderId& o) const { return value == o.value; }
  constexpr bool operator!=(const OrderId& o) const { return value != o.value; }
};

/// One execution: `maker` is the resting order, `taker` the incoming one.
/// Trades always print at the MAKER's resting price (price-time priority).
/// Seqs, not OrderIds, identify the parties — seqs are deterministic
/// across book implementations (see header comment).
struct Trade {
  u64 maker_seq = 0;
  u64 taker_seq = 0;
  /// Caller-supplied tag stamped on the maker order at submission
  /// (0 = none).  The OMS uses it to route maker-side executions back to
  /// its client-order records in O(1); pure market flow leaves it 0.
  u64 maker_cookie = 0;
  PriceTicks price = 0;
  Qty qty = 0;
  Side taker_side = Side::kBid;  ///< aggressor side
};

/// Trade-tape consumer.  The book calls this synchronously inside the
/// matching loop; implementations must not allocate (the OMS hot path
/// runs under the tests/hotpath zero-allocation audit).
class TradeSink {
 public:
  virtual ~TradeSink() = default;
  virtual void on_trade(const Trade& trade) = 0;
};

/// Top-of-book snapshot.  `valid` per side: an empty side reports
/// qty == 0 and an unspecified price.
struct BookTop {
  PriceTicks bid_price = 0;
  Qty bid_qty = 0;
  PriceTicks ask_price = 0;
  Qty ask_qty = 0;

  bool has_bid() const { return bid_qty > 0; }
  bool has_ask() const { return ask_qty > 0; }
  double mid() const {
    return (static_cast<double>(bid_price) + static_cast<double>(ask_price)) /
           2.0;
  }
};

/// Aggregate view of one price level (depth queries / analytics bands).
struct LevelView {
  PriceTicks price = 0;
  Qty qty = 0;
  u32 order_count = 0;
};

/// Outcome of submitting an order to a book.
struct SubmitResult {
  OrderId id;        ///< invalid() when rejected (band / capacity)
  u64 seq = 0;       ///< arrival seq (0 when rejected)
  Qty filled = 0;    ///< qty executed while crossing
  Qty remaining = 0; ///< qty left resting (0 for IOC/market remainders)
  bool accepted = false;
};

/// Outcome of a cancel/replace request against a book.
enum class AmendResult : u32 {
  kOk = 0,
  kUnknownOrder,   ///< stale/invalid id (already dead or recycled)
  kNoChange,       ///< replace with identical price+qty: rejected as no-op
  kRejected,       ///< new params out of band / capacity
};

}  // namespace rtseed::lob
