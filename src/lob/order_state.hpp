// Order lifecycle state machine (DESIGN.md §13).
//
//   PENDING_NEW ──accept──▶ LIVE ──cancel-req──▶ PENDING_CANCEL ──ack──▶ CANCELED
//        │                   │  └─replace-req─▶ PENDING_REPLACE ─ack─▶ LIVE
//        │reject             │fill(full)                        └reject▶ LIVE
//        ▼                   ▼
//     REJECTED            FILLED        LIVE ──expire──▶ EXPIRED
//
// kKill (supervisor force-termination or breaker shed) is legal from any
// non-terminal state and lands in CANCELED.  Terminal states (FILLED,
// CANCELED, EXPIRED, REJECTED) accept NO events: the transition table is
// total, and every illegal (state, event) pair is rejected and counted —
// an order reaches a terminal state exactly once, which
// tests/lob/test_order_lifecycle.cpp enumerates exhaustively.
#pragma once

#include "common/types.hpp"

namespace rtseed::lob {

using common::u32;
using common::u64;

enum class OrderState : u32 {
  kPendingNew = 0,
  kLive,
  kPendingCancel,
  kPendingReplace,
  kFilled,
  kCanceled,
  kExpired,
  kRejected,
};
inline constexpr int kNumOrderStates = 8;

enum class OrderEvent : u32 {
  kAccept = 0,      ///< book accepted the order
  kReject,          ///< risk or book rejected it
  kPartialFill,     ///< execution, open qty remains
  kFill,            ///< execution, open qty now zero
  kCancelRequest,   ///< client asked to cancel
  kReplaceRequest,  ///< client asked to amend price/qty
  kCancelAck,       ///< book confirmed removal
  kReplaceAck,      ///< book confirmed amendment
  kReplaceReject,   ///< amendment refused; order stays live
  kExpire,          ///< TTL deadline passed
  kKill,            ///< supervisor kill or breaker shed
};
inline constexpr int kNumOrderEvents = 11;

const char* order_state_name(OrderState s);
const char* order_event_name(OrderEvent e);

inline constexpr bool is_terminal(OrderState s) {
  return s == OrderState::kFilled || s == OrderState::kCanceled ||
         s == OrderState::kExpired || s == OrderState::kRejected;
}

/// The total transition function: next state for a legal pair, or the
/// input state unchanged (and *legal == false) for an illegal one.
OrderState next_order_state(OrderState from, OrderEvent event, bool* legal);

/// Convenience wrapper owning the illegal-transition counter the OMS
/// surfaces in its stats (illegal transitions are bugs upstream — the
/// machine refuses them rather than corrupting an order's lifecycle).
class OrderStateMachine {
 public:
  /// Applies `event` to `state` in place.  Returns true and mutates on a
  /// legal transition; returns false, leaves `state` untouched, and
  /// increments the illegal counter otherwise.
  bool apply(OrderState& state, OrderEvent event) {
    bool legal = false;
    const OrderState next = next_order_state(state, event, &legal);
    if (legal) {
      state = next;
    } else {
      ++illegal_;
    }
    return legal;
  }

  u64 illegal_transitions() const { return illegal_; }

 private:
  u64 illegal_ = 0;
};

}  // namespace rtseed::lob
