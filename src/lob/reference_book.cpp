#include "lob/reference_book.hpp"

namespace rtseed::lob {

Qty ReferenceBook::match(Side taker_side, PriceTicks limit, bool is_market,
                         Qty qty, u64 taker_seq, TradeSink* tape) {
  Qty filled = 0;
  const auto fill_level = [&](PriceTicks price,
                              std::deque<RefOrder>& level) {
    while (qty > 0 && !level.empty()) {
      RefOrder& mk = level.front();
      const Qty take = mk.open < qty ? mk.open : qty;
      mk.open -= take;
      qty -= take;
      filled += take;
      if (tape != nullptr) {
        tape->on_trade(
            Trade{mk.seq, taker_seq, mk.cookie, price, take, taker_side});
      }
      if (mk.open == 0) {
        locators_.erase(mk.id);
        level.pop_front();
      }
    }
  };

  if (taker_side == Side::kBid) {
    while (qty > 0 && !asks_.empty()) {
      auto it = asks_.begin();
      if (!is_market && it->first > limit) break;
      fill_level(it->first, it->second);
      if (it->second.empty()) asks_.erase(it);
    }
  } else {
    while (qty > 0 && !bids_.empty()) {
      auto it = bids_.begin();
      if (!is_market && it->first < limit) break;
      fill_level(it->first, it->second);
      if (it->second.empty()) bids_.erase(it);
    }
  }
  return filled;
}

SubmitResult ReferenceBook::add_limit(Side side, PriceTicks price, Qty qty,
                                      TradeSink* tape, u64 cookie) {
  SubmitResult r;
  if (!in_band(price) || qty <= 0) return r;
  const u64 seq = ++next_seq_;
  r.seq = seq;
  r.accepted = true;
  r.filled = match(side, price, /*is_market=*/false, qty, seq, tape);
  const Qty rest = qty - r.filled;
  if (rest > 0) {
    if (locators_.size() >= config_.max_orders) {
      return r;  // capacity: remainder dropped, same rule as BitmapBook
    }
    const u64 id = ++next_id_;
    if (side == Side::kBid) {
      bids_[price].push_back(RefOrder{id, seq, cookie, rest});
    } else {
      asks_[price].push_back(RefOrder{id, seq, cookie, rest});
    }
    locators_[id] = Locator{side, price};
    r.id = OrderId{id};
    r.remaining = rest;
  }
  return r;
}

SubmitResult ReferenceBook::add_market(Side side, Qty qty, TradeSink* tape) {
  SubmitResult r;
  if (qty <= 0) return r;
  const u64 seq = ++next_seq_;
  r.seq = seq;
  r.accepted = true;
  r.filled = match(side, 0, /*is_market=*/true, qty, seq, tape);
  return r;
}

AmendResult ReferenceBook::cancel(OrderId id) {
  const auto loc = locators_.find(id.value);
  if (loc == locators_.end()) return AmendResult::kUnknownOrder;
  const auto erase_from = [&](auto& map) {
    auto it = map.find(loc->second.price);
    auto& level = it->second;
    for (auto o = level.begin(); o != level.end(); ++o) {
      if (o->id == id.value) {
        level.erase(o);
        break;
      }
    }
    if (level.empty()) map.erase(it);
  };
  if (loc->second.side == Side::kBid) {
    erase_from(bids_);
  } else {
    erase_from(asks_);
  }
  locators_.erase(loc);
  return AmendResult::kOk;
}

AmendResult ReferenceBook::replace(OrderId id, PriceTicks new_price,
                                   Qty new_qty, TradeSink* tape,
                                   SubmitResult* readd) {
  const auto loc = locators_.find(id.value);
  if (loc == locators_.end()) return AmendResult::kUnknownOrder;
  if (new_qty <= 0 || !in_band(new_price)) return AmendResult::kRejected;

  const Side side = loc->second.side;
  const PriceTicks price = loc->second.price;
  const auto find_order = [&](auto& map) -> RefOrder* {
    auto it = map.find(price);
    for (auto& o : it->second) {
      if (o.id == id.value) return &o;
    }
    return nullptr;
  };
  RefOrder* order =
      side == Side::kBid ? find_order(bids_) : find_order(asks_);
  if (new_price == price && new_qty == order->open) {
    return AmendResult::kNoChange;
  }
  if (new_price == price && new_qty < order->open) {
    order->open = new_qty;
    if (readd != nullptr) {
      *readd = SubmitResult{id, order->seq, 0, new_qty, true};
    }
    return AmendResult::kOk;
  }
  const u64 cookie = order->cookie;
  cancel(id);
  const SubmitResult fresh = add_limit(side, new_price, new_qty, tape, cookie);
  if (readd != nullptr) *readd = fresh;
  return AmendResult::kOk;
}

BookTop ReferenceBook::top() const {
  BookTop t;
  if (!bids_.empty()) {
    t.bid_price = bids_.begin()->first;
    for (const auto& o : bids_.begin()->second) t.bid_qty += o.open;
  }
  if (!asks_.empty()) {
    t.ask_price = asks_.begin()->first;
    for (const auto& o : asks_.begin()->second) t.ask_qty += o.open;
  }
  return t;
}

u64 ReferenceBook::digest() const {
  u64 h = 0;
  const auto mix_side = [&h](const auto& map, Side side) {
    digest_mix(h, 0xABCD0000ULL + static_cast<u64>(side));
    for (const auto& [price, level] : map) {
      Qty level_qty = 0;
      for (const auto& o : level) level_qty += o.open;
      digest_mix(h, static_cast<u64>(price));
      digest_mix(h, static_cast<u64>(level_qty));
      digest_mix(h, static_cast<u64>(level.size()));
      for (const auto& o : level) {
        digest_mix(h, o.seq);
        digest_mix(h, static_cast<u64>(o.open));
      }
    }
  };
  mix_side(bids_, Side::kBid);
  mix_side(asks_, Side::kAsk);
  return h;
}

}  // namespace rtseed::lob
