// BitmapBook snapshot/restore — the state half of journaled crash
// recovery (DESIGN.md §14.3).
//
// The image is the raw order table plus every scalar.  The level lists
// and both bitmap tiers are NOT serialized: each open cell already
// carries its side, price, and FIFO links, so restore rebuilds them in
// one O(max_orders) scan.  Keeping the image cells-only makes periodic
// snapshots cheap (a few hundred KiB, not the multi-MiB level arrays)
// while still restoring bit-identical state — including the free-list
// ORDER, so a restored book hands out the same slots, generations, and
// seqs as the original would have.  That is what lets a replayed delta
// stream converge on the exact pre-crash digest.
#include <cstring>
#include <type_traits>

#include "lob/book.hpp"

namespace rtseed::lob {

namespace {

constexpr u32 kSideMask = 1u;
constexpr u32 kOpenBit = 2u;
constexpr u64 kSnapshotMagic = 0x5254626F'6F6B5353ULL;  // "RTbookSS"

struct SnapshotHeader {
  u64 magic = 0;
  // Config echo: an image restored into a differently-shaped book would
  // silently corrupt, so the shape is checked, not trusted.
  i64 min_tick = 0;
  i64 num_levels = 0;
  u64 max_orders = 0;
  u64 free_head = 0;
  u64 open_orders = 0;
  i64 side_qty[2] = {0, 0};
  u64 next_seq = 0;
  BitmapBook::Stats stats;
};
static_assert(std::is_trivially_copyable_v<SnapshotHeader>);

}  // namespace

OrderId BitmapBook::front_order(Side side) const {
  const i32 best = best_[side_index(side)];
  if (best < 0) return OrderId::invalid();
  const u32 slot = levels(side)[best].head;
  if (slot == kNil) return OrderId::invalid();
  return OrderId::make(cells_[slot].gen, slot);
}

usize BitmapBook::snapshot_bytes() const {
  return sizeof(SnapshotHeader) + config_.max_orders * sizeof(OrderCell);
}

usize BitmapBook::save_snapshot(void* out, usize cap) const {
  const usize need = snapshot_bytes();
  if (out == nullptr || cap < need) return 0;
  SnapshotHeader header;
  header.magic = kSnapshotMagic;
  header.min_tick = config_.min_tick;
  header.num_levels = config_.num_levels;
  header.max_orders = config_.max_orders;
  header.free_head = free_head_;
  header.open_orders = open_orders_;
  header.side_qty[0] = side_qty_[0];
  header.side_qty[1] = side_qty_[1];
  header.next_seq = next_seq_;
  header.stats = stats_;
  auto* bytes = static_cast<unsigned char*>(out);
  std::memcpy(bytes, &header, sizeof(header));
  std::memcpy(bytes + sizeof(header), cells_.get(),
              config_.max_orders * sizeof(OrderCell));
  return need;
}

common::Status BitmapBook::restore_snapshot(const void* data, usize bytes) {
  if (data == nullptr || bytes < sizeof(SnapshotHeader)) {
    return common::invalid_argument("book snapshot: image too small");
  }
  SnapshotHeader header;
  std::memcpy(&header, data, sizeof(header));
  if (header.magic != kSnapshotMagic) {
    return common::failed_precondition("book snapshot: bad magic");
  }
  if (header.min_tick != config_.min_tick ||
      header.num_levels != config_.num_levels ||
      header.max_orders != config_.max_orders) {
    return common::failed_precondition(
        "book snapshot: image shape does not match this book's config");
  }
  if (bytes < snapshot_bytes()) {
    return common::invalid_argument("book snapshot: truncated cell table");
  }

  std::memcpy(cells_.get(),
              static_cast<const unsigned char*>(data) + sizeof(header),
              config_.max_orders * sizeof(OrderCell));
  free_head_ = static_cast<u32>(header.free_head);
  open_orders_ = static_cast<usize>(header.open_orders);
  side_qty_[0] = header.side_qty[0];
  side_qty_[1] = header.side_qty[1];
  next_seq_ = header.next_seq;
  stats_ = header.stats;

  // Rebuild the derived tiers from the cell table: level FIFO ends come
  // from the links (head has prev == kNil, tail has next == kNil),
  // aggregates and bitmaps from summing the open cells.
  for (int s = 0; s < 2; ++s) {
    for (i32 l = 0; l < config_.num_levels; ++l) levels_[s][l] = Level{};
    std::memset(groups_[s].get(), 0,
                sizeof(u64) * static_cast<usize>(num_groups_));
    std::memset(summary_[s].get(), 0,
                sizeof(u64) * static_cast<usize>(num_summary_));
  }
  for (usize i = 0; i < config_.max_orders; ++i) {
    const OrderCell& cell = cells_[i];
    if ((cell.side_and_open & kOpenBit) == 0) continue;
    const Side side = static_cast<Side>(cell.side_and_open & kSideMask);
    const i32 level = level_of(cell.price);
    if (level < 0) {
      return common::failed_precondition(
          "book snapshot: open cell with out-of-band price");
    }
    Level& bucket = levels(side)[level];
    bucket.qty += cell.open;
    bucket.count += 1;
    if (cell.prev == kNil) bucket.head = static_cast<u32>(i);
    if (cell.next == kNil) bucket.tail = static_cast<u32>(i);
    set_bit(side, level);
  }
  best_[0] = scan_best(Side::kBid);
  best_[1] = scan_best(Side::kAsk);
  return common::Status::ok();
}

}  // namespace rtseed::lob
