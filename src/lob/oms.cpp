#include "lob/oms.hpp"

namespace rtseed::lob {

namespace {
inline int sidx(Side s) { return static_cast<int>(s); }
}  // namespace

OrderManager::OrderManager(OmsConfig config)
    : config_(config),
      book_(config.book),
      risk_(config.risk),
      ttl_(config.ttl_capacity),
      records_(common::make_aligned_array<Record>(config.max_client_orders)),
      free_stack_(std::make_unique<u32[]>(config.max_client_orders)),
      market_live_(std::make_unique<OrderId[]>(2 * config.book.max_orders)),
      market_cap_(2 * config.book.max_orders) {
  router_.oms = this;
  // Stack holds slots in reverse so slot 0 is handed out first.
  for (usize i = 0; i < config_.max_client_orders; ++i) {
    free_stack_[free_top_++] =
        static_cast<u32>(config_.max_client_orders - 1 - i);
  }
}

// ---- record table ---------------------------------------------------------

u32 OrderManager::acquire_record() {
  if (free_top_ == 0) return kNoSlot;
  const u32 slot = free_stack_[--free_top_];
  Record& r = records_[slot];
  r.order = ClientOrder{};
  r.in_use = true;
  ++open_client_orders_;
  return slot;
}

void OrderManager::release_record(u32 slot) {
  Record& r = records_[slot];
  r.in_use = false;
  if (++r.gen == 0) r.gen = 1;
  free_stack_[free_top_++] = slot;
  --open_client_orders_;
}

OrderManager::Record* OrderManager::resolve(ClientOrderId id) {
  if (!id.valid()) return nullptr;
  const u32 slot = id.slot();
  if (slot >= config_.max_client_orders) return nullptr;
  Record& r = records_[slot];
  if (!r.in_use || r.gen != id.generation()) return nullptr;
  return &r;
}

const OrderManager::Record* OrderManager::resolve(ClientOrderId id) const {
  return const_cast<OrderManager*>(this)->resolve(id);
}

const ClientOrder* OrderManager::lookup(ClientOrderId id) const {
  const Record* r = resolve(id);
  return r != nullptr ? &r->order : nullptr;
}

// ---- lifecycle ------------------------------------------------------------

void OrderManager::apply_event(u32 slot, OrderEvent event) {
  Record& r = records_[slot];
  if (!machine_.apply(r.order.state, event)) return;  // illegal: counted
  if (listener_ != nullptr) {
    listener_->on_order_event(ClientOrderId::make(r.gen, slot), event,
                              r.order.state);
  }
  if (is_terminal(r.order.state)) {
    ++stats_.terminal[static_cast<int>(r.order.state)];
    if (r.order.resting > 0) {
      pending_qty_[sidx(r.order.side)] -= r.order.resting;
      r.order.resting = 0;
    }
    release_record(slot);
  }
}

// ---- trade tape -----------------------------------------------------------

void OrderManager::Router::on_trade(const Trade& trade) {
  oms->handle_trade(trade);
  if (downstream != nullptr) downstream->on_trade(trade);
}

void OrderManager::handle_trade(const Trade& trade) {
  // Every print refreshes the mark (last-trade marking: simple and
  // monotone with the flow the book actually saw).
  risk_.set_mark(trade.price);
  if (client_taker_active_) {
    ++stats_.taker_fills;
    risk_.on_fill(client_taker_side_, trade.price, trade.qty);
  }
  if (trade.maker_cookie == 0) return;  // anonymous market maker

  Record* r = resolve(ClientOrderId{trade.maker_cookie});
  if (r == nullptr) return;  // cookie outlived the record: ignore
  const u32 slot = ClientOrderId{trade.maker_cookie}.slot();
  ++stats_.maker_fills;
  risk_.on_fill(r->order.side, trade.price, trade.qty);
  r->order.filled += trade.qty;
  r->order.resting -= trade.qty;
  pending_qty_[sidx(r->order.side)] -= trade.qty;
  if (r->order.resting == 0) {
    r->order.book_id = OrderId::invalid();
    apply_event(slot, OrderEvent::kFill);  // terminal: releases the record
  } else {
    apply_event(slot, OrderEvent::kPartialFill);
  }
}

// ---- client flow ----------------------------------------------------------

SubmitOutcome OrderManager::submit(Side side, PriceTicks price, Qty qty,
                                   Nanos now, Nanos ttl, TradeSink* tape) {
  SubmitOutcome out;
  ++stats_.submissions;

  const RiskVerdict verdict =
      risk_.pre_trade(side, price, qty, /*is_market=*/false,
                      open_client_orders_, pending_qty_[0], pending_qty_[1]);
  const u32 slot = acquire_record();
  if (slot == kNoSlot) {
    // Record table full — treat like the open-orders risk cap.
    out.verdict = RiskVerdict::kTooManyOpen;
    ++stats_.risk_rejects;
    return out;
  }
  Record& r = records_[slot];
  r.order.side = side;
  r.order.price = price;
  r.order.qty = qty;
  out.id = ClientOrderId::make(r.gen, slot);

  if (verdict != RiskVerdict::kOk) {
    out.verdict = verdict;
    ++stats_.risk_rejects;
    apply_event(slot, OrderEvent::kReject);
    return out;
  }

  router_.downstream = tape;
  client_taker_active_ = true;
  client_taker_side_ = side;
  const SubmitResult br =
      book_.add_limit(side, price, qty, &router_, out.id.value);
  client_taker_active_ = false;

  if (!br.accepted) {  // out of band / bad qty
    ++stats_.book_rejects;
    apply_event(slot, OrderEvent::kReject);
    return out;
  }
  ++stats_.accepted;
  r.order.filled = br.filled;
  out.filled = br.filled;
  out.resting = br.remaining;

  apply_event(slot, OrderEvent::kAccept);
  if (br.remaining > 0) {
    r.order.book_id = br.id;
    r.order.resting = br.remaining;
    pending_qty_[sidx(side)] += br.remaining;
    if (br.filled > 0) apply_event(slot, OrderEvent::kPartialFill);
    if (ttl > 0) {
      r.order.expires_at = now + ttl;
      ttl_.push(r.order.expires_at, out.id.value);
    }
    out.state = OrderState::kLive;
  } else if (br.filled == qty) {
    out.state = OrderState::kFilled;
    apply_event(slot, OrderEvent::kFill);
  } else {
    // Book table full: the unfilled remainder was dropped.  Surface it
    // as an immediate forced cancel so the order still dies exactly once.
    ++stats_.capacity_truncated;
    if (br.filled > 0) apply_event(slot, OrderEvent::kPartialFill);
    out.state = OrderState::kCanceled;
    apply_event(slot, OrderEvent::kCancelRequest);
    apply_event(slot, OrderEvent::kCancelAck);
  }
  return out;
}

bool OrderManager::request_cancel(ClientOrderId id) {
  Record* r = resolve(id);
  if (r == nullptr || r->order.state != OrderState::kLive) return false;
  const u32 slot = id.slot();
  apply_event(slot, OrderEvent::kCancelRequest);
  book_.cancel(r->order.book_id);
  ++stats_.cancels;
  apply_event(slot, OrderEvent::kCancelAck);  // terminal: releases
  return true;
}

bool OrderManager::request_replace(ClientOrderId id, PriceTicks new_price,
                                   Qty new_qty, TradeSink* tape) {
  Record* r = resolve(id);
  if (r == nullptr || r->order.state != OrderState::kLive) return false;
  const u32 slot = id.slot();
  const Side side = r->order.side;
  apply_event(slot, OrderEvent::kReplaceRequest);

  // Risk-check the amendment as the order it would become: its current
  // resting qty no longer counts against pending exposure, the new one
  // does.
  Qty pb = pending_qty_[0];
  Qty ps = pending_qty_[1];
  (side == Side::kBid ? pb : ps) -= r->order.resting;
  const RiskVerdict verdict =
      risk_.pre_trade(side, new_price, new_qty, /*is_market=*/false,
                      open_client_orders_ - 1, pb, ps);
  if (verdict != RiskVerdict::kOk) {
    ++stats_.replace_rejects;
    apply_event(slot, OrderEvent::kReplaceReject);
    return true;
  }

  router_.downstream = tape;
  client_taker_active_ = true;  // a re-priced order may cross
  client_taker_side_ = side;
  SubmitResult readd;
  const AmendResult ar =
      book_.replace(r->order.book_id, new_price, new_qty, &router_, &readd);
  client_taker_active_ = false;

  if (ar != AmendResult::kOk) {
    ++stats_.replace_rejects;
    apply_event(slot, OrderEvent::kReplaceReject);
    return true;
  }
  ++stats_.replaces;
  pending_qty_[sidx(side)] -= r->order.resting;
  r->order.price = new_price;
  r->order.qty = r->order.filled + new_qty;
  r->order.filled += readd.filled;
  r->order.resting = readd.remaining;
  r->order.book_id = readd.remaining > 0 ? readd.id : OrderId::invalid();
  pending_qty_[sidx(side)] += readd.remaining;
  apply_event(slot, OrderEvent::kReplaceAck);
  if (readd.remaining == 0) {
    if (readd.filled == new_qty) {
      apply_event(slot, OrderEvent::kFill);
    } else {
      // Re-entry hit the order-table capacity; force-cancel the rest.
      ++stats_.capacity_truncated;
      apply_event(slot, OrderEvent::kCancelRequest);
      apply_event(slot, OrderEvent::kCancelAck);
    }
  }
  return true;
}

bool OrderManager::kill(ClientOrderId id, KillReason reason) {
  Record* r = resolve(id);
  if (r == nullptr) return false;
  if (r->order.book_id.valid()) book_.cancel(r->order.book_id);
  if (reason == KillReason::kSupervisor) {
    ++stats_.killed_supervisor;
  } else {
    ++stats_.killed_shed;
  }
  apply_event(id.slot(), OrderEvent::kKill);  // terminal: releases
  return true;
}

usize OrderManager::kill_all(KillReason reason) {
  usize killed = 0;
  for (usize i = 0; i < config_.max_client_orders; ++i) {
    Record& r = records_[i];
    if (!r.in_use) continue;
    kill(ClientOrderId::make(r.gen, static_cast<u32>(i)), reason);
    ++killed;
  }
  return killed;
}

usize OrderManager::expire(Nanos now) {
  usize expired = 0;
  while (!ttl_.empty() && ttl_.top().expires_at <= now) {
    const ClientOrderId id{ttl_.top().handle};
    ttl_.pop();
    Record* r = resolve(id);
    if (r == nullptr) continue;  // lazy deletion: order already dead
    if (r->order.state != OrderState::kLive) continue;
    book_.cancel(r->order.book_id);
    ++stats_.expired;
    ++expired;
    apply_event(id.slot(), OrderEvent::kExpire);  // terminal: releases
  }
  return expired;
}

// ---- market flow ----------------------------------------------------------

OrderId OrderManager::pick_market_victim(u64 pick) {
  while (market_live_count_ > 0) {
    const usize idx = pick % market_live_count_;
    const OrderId id = market_live_[idx];
    market_live_[idx] = market_live_[--market_live_count_];
    if (book_.is_open(id)) return id;
    // Stale (filled away): discarded, try the next candidate.
  }
  return OrderId::invalid();
}

void OrderManager::apply_flow(const FlowEvent& event, TradeSink* tape) {
  router_.downstream = tape;
  switch (event.kind) {
    case FlowKind::kAddLimit: {
      const SubmitResult r =
          book_.add_limit(event.side, event.price, event.qty, &router_, 0);
      if (r.id.valid()) {
        if (market_live_count_ == market_cap_) {
          // Compact out entries whose orders have filled away.
          usize w = 0;
          for (usize i = 0; i < market_live_count_; ++i) {
            if (book_.is_open(market_live_[i])) {
              market_live_[w++] = market_live_[i];
            }
          }
          market_live_count_ = w;
        }
        if (market_live_count_ < market_cap_) {
          market_live_[market_live_count_++] = r.id;
        }
      }
      break;
    }
    case FlowKind::kMarket:
      book_.add_market(event.side, event.qty, &router_);
      break;
    case FlowKind::kCancel: {
      const OrderId victim = pick_market_victim(event.pick);
      if (victim.valid()) book_.cancel(victim);
      break;
    }
    case FlowKind::kReplace: {
      const OrderId victim = pick_market_victim(event.pick);
      if (!victim.valid()) break;
      SubmitResult readd;
      book_.replace(victim, event.price, event.qty, &router_, &readd);
      if (readd.id.valid() && readd.remaining > 0 &&
          market_live_count_ < market_cap_) {
        market_live_[market_live_count_++] = readd.id;
      }
      break;
    }
  }
}

}  // namespace rtseed::lob
