// Deterministic seed-driven order-flow generator (DESIGN.md §13).
//
// One SplitMix64 chain drives everything: event kind, side, price offset
// from a reflecting random-walk mid, quantity, victim pick, and TTL.
// The same seed therefore reproduces the same add/cancel/replace/market
// stream bit-for-bit on any host — the property the differential fuzzer
// (tests/lob/fuzz_flow) and the OmsTask's synthetic market both build
// on.  next() is pure integer arithmetic: no allocation, no locks, safe
// inside a mandatory part.
//
// The generator does NOT track live orders (it has no book): kCancel and
// kReplace carry a `pick` the CALLER reduces modulo its own live-order
// count, so the stream stays meaningful against any book state.
#pragma once

#include "common/rng.hpp"
#include "lob/book.hpp"

namespace rtseed::lob {

enum class FlowKind : u32 {
  kAddLimit = 0,
  kCancel,
  kReplace,
  kMarket,
};

struct FlowEvent {
  FlowKind kind = FlowKind::kAddLimit;
  Side side = Side::kBid;
  PriceTicks price = 0;  ///< limit price (add/replace)
  Qty qty = 0;           ///< order size (add/replace/market)
  u64 pick = 0;          ///< victim selector for cancel/replace
  Nanos ttl = 0;         ///< order lifetime hint (0 = no expiry)
};

struct FlowConfig {
  /// Event mix in percent; the remainder up to 100 is kMarket.
  u32 add_pct = 55;
  u32 cancel_pct = 20;
  u32 replace_pct = 15;
  /// Limit prices are mid ± uniform[1, spread_levels] ticks (buys below,
  /// sells above — plus an aggression fraction that crosses the mid).
  i32 spread_levels = 32;
  /// Percent of adds priced AGGRESSIVELY (through the mid) so real
  /// matching happens instead of two drifting one-sided queues.
  u32 aggressive_pct = 25;
  Qty max_qty = 64;
  /// Mid random walk: ±walk_step ticks per event, reflected off the band
  /// edges with a spread_levels margin.
  i32 walk_step = 2;
  /// TTL draw for adds: uniform[1, max_ttl] when nonzero.
  Nanos max_ttl = 0;
};

class FlowGenerator {
 public:
  FlowGenerator(u64 seed, const BookConfig& band, FlowConfig config = {})
      : state_(seed), band_(band), config_(config) {
    mid_ = band_.min_tick + band_.num_levels / 2;
  }

  PriceTicks mid() const { return mid_; }

  FlowEvent next() {
    FlowEvent ev;
    const u64 roll = draw() % 100;
    if (roll < config_.add_pct) {
      ev.kind = FlowKind::kAddLimit;
    } else if (roll < config_.add_pct + config_.cancel_pct) {
      ev.kind = FlowKind::kCancel;
    } else if (roll < config_.add_pct + config_.cancel_pct +
                          config_.replace_pct) {
      ev.kind = FlowKind::kReplace;
    } else {
      ev.kind = FlowKind::kMarket;
    }
    ev.side = (draw() & 1) == 0 ? Side::kBid : Side::kAsk;
    ev.qty = 1 + static_cast<Qty>(draw() % static_cast<u64>(config_.max_qty));
    ev.pick = draw();

    if (ev.kind == FlowKind::kAddLimit || ev.kind == FlowKind::kReplace) {
      const i64 offset =
          1 + static_cast<i64>(draw() % static_cast<u64>(config_.spread_levels));
      const bool aggressive = draw() % 100 < config_.aggressive_pct;
      // Passive: bids below mid, asks above.  Aggressive: through the mid.
      const i64 signed_offset =
          (ev.side == Side::kBid) == !aggressive ? -offset : offset;
      ev.price = clamp_price(mid_ + signed_offset);
    }
    if (ev.kind == FlowKind::kAddLimit && config_.max_ttl > 0) {
      ev.ttl = 1 + static_cast<Nanos>(draw() %
                                      static_cast<u64>(config_.max_ttl));
    }

    // Walk the mid (reflecting off the band edges with margin).
    const i64 step =
        static_cast<i64>(draw() % (2 * static_cast<u64>(config_.walk_step) + 1)) -
        config_.walk_step;
    mid_ = reflect_mid(mid_ + step);
    return ev;
  }

 private:
  u64 draw() { return common::splitmix64(state_); }

  PriceTicks clamp_price(PriceTicks p) const {
    const PriceTicks lo = band_.min_tick;
    const PriceTicks hi = band_.min_tick + band_.num_levels - 1;
    return p < lo ? lo : (p > hi ? hi : p);
  }

  PriceTicks reflect_mid(PriceTicks m) const {
    const PriceTicks lo = band_.min_tick + config_.spread_levels;
    const PriceTicks hi =
        band_.min_tick + band_.num_levels - 1 - config_.spread_levels;
    if (m < lo) return lo + (lo - m);
    if (m > hi) return hi - (m - hi);
    return m;
  }

  u64 state_;
  BookConfig band_;
  FlowConfig config_;
  PriceTicks mid_ = 0;
};

}  // namespace rtseed::lob
