// Pre-trade risk checks + position / mark-to-market P&L (DESIGN.md §13;
// after the RichTraders OMS risk layer, SNIPPETS.md §1).
//
// Every order the OMS submits passes pre_trade() BEFORE touching the
// book; a veto transitions the order PENDING_NEW → REJECTED and counts
// the reason.  The position-limit check reserves PENDING exposure too:
// open resting buy qty counts against the long limit even before it
// fills, so a burst of resting orders cannot overshoot the cap when
// they all execute.
//
// P&L is integer arithmetic in (ticks × lots) — exact, and convertible
// to dollars once at the reporting edge via tick_value.  Average entry
// is VWAP over the accumulating position; crossing through flat splits
// the fill into a closing leg (realizes P&L) and an opening leg (resets
// the VWAP basis).
#pragma once

#include "lob/types.hpp"

namespace rtseed::lob {

struct RiskConfig {
  Qty max_order_qty = 0;      ///< per-order size cap; 0 = unlimited
  Qty max_position = 0;       ///< |position| + pending exposure cap; 0 = unlimited
  /// Fat-finger collar: limit price may not deviate from the current
  /// mark by more than this fraction (0 disables).  Marketable prices
  /// near the touch always pass.
  double price_collar_pct = 0.0;
  usize max_open_orders = 0;  ///< simultaneously open orders; 0 = unlimited
  /// Kill switch: once realized + unrealized P&L drops below
  /// -max_loss_ticks (ticks × lots), every new order is vetoed.
  i64 max_loss_ticks = 0;     ///< 0 = unlimited
  double tick_value = 1.0;    ///< dollars per (tick × lot), reporting only
};

enum class RiskVerdict : u32 {
  kOk = 0,
  kOrderTooLarge,
  kPositionLimit,
  kPriceCollar,
  kTooManyOpen,
  kMaxLossBreached,
};
inline constexpr int kNumRiskVerdicts = 6;

const char* risk_verdict_name(RiskVerdict v);

class RiskEngine {
 public:
  struct Stats {
    u64 checks = 0;
    u64 vetoes[kNumRiskVerdicts] = {};  ///< indexed by RiskVerdict
  };

  explicit RiskEngine(RiskConfig config = {}) : config_(config) {}

  const RiskConfig& config() const { return config_; }
  const Stats& stats() const { return stats_; }

  /// Pre-trade gate.  `open_orders` and the pending exposures describe
  /// the OMS's current book footprint (resting qty per side).
  RiskVerdict pre_trade(Side side, PriceTicks price, Qty qty, bool is_market,
                        usize open_orders, Qty pending_buy_qty,
                        Qty pending_sell_qty);

  /// Execution feedback: updates position, VWAP entry, realized P&L.
  void on_fill(Side side, PriceTicks price, Qty qty);

  /// Updates the mark (mid) used by the collar, unrealized P&L, and the
  /// loss kill switch.  Call once per book update.
  void set_mark(PriceTicks mark) {
    mark_ = mark;
    have_mark_ = true;
  }

  Qty position() const { return position_; }
  /// Exact VWAP basis of the open position: Σ entry price × |qty|.
  /// Callers wanting the average entry divide by |position()|; keeping
  /// the running cost instead of the quotient stays integral and exact.
  i64 entry_cost_ticks() const { return entry_cost_; }
  i64 realized_ticks() const { return realized_; }
  /// Unrealized at the current mark: position × (mark − avg entry).
  i64 unrealized_ticks() const;
  i64 total_pnl_ticks() const { return realized_ticks() + unrealized_ticks(); }
  double realized_dollars() const {
    return static_cast<double>(realized_) * config_.tick_value;
  }
  double total_pnl_dollars() const {
    return static_cast<double>(total_pnl_ticks()) * config_.tick_value;
  }
  PriceTicks mark() const { return mark_; }
  bool has_mark() const { return have_mark_; }

  /// Complete engine state as a trivially-copyable POD — the risk half
  /// of a journal snapshot record.  restore() on a same-config engine
  /// reproduces the source exactly (position, VWAP basis, veto counts).
  struct Snapshot {
    Stats stats;
    Qty position = 0;
    i64 entry_cost = 0;
    i64 realized = 0;
    PriceTicks mark = 0;
    u32 have_mark = 0;
    u32 pad_ = 0;
  };

  Snapshot snapshot() const {
    Snapshot s;
    s.stats = stats_;
    s.position = position_;
    s.entry_cost = entry_cost_;
    s.realized = realized_;
    s.mark = mark_;
    s.have_mark = have_mark_ ? 1 : 0;
    return s;
  }

  void restore(const Snapshot& s) {
    stats_ = s.stats;
    position_ = s.position;
    entry_cost_ = s.entry_cost;
    realized_ = s.realized;
    mark_ = s.mark;
    have_mark_ = s.have_mark != 0;
  }

 private:
  RiskConfig config_;
  Stats stats_;
  Qty position_ = 0;
  i64 entry_cost_ = 0;  ///< Σ entry price × qty of the open position
  i64 realized_ = 0;    ///< realized P&L in ticks × lots
  PriceTicks mark_ = 0;
  bool have_mark_ = false;
};

}  // namespace rtseed::lob
