#include "lob/risk.hpp"

#include <cmath>
#include <cstdlib>

namespace rtseed::lob {

const char* risk_verdict_name(RiskVerdict v) {
  switch (v) {
    case RiskVerdict::kOk: return "ok";
    case RiskVerdict::kOrderTooLarge: return "order_too_large";
    case RiskVerdict::kPositionLimit: return "position_limit";
    case RiskVerdict::kPriceCollar: return "price_collar";
    case RiskVerdict::kTooManyOpen: return "too_many_open";
    case RiskVerdict::kMaxLossBreached: return "max_loss_breached";
  }
  return "?";
}

RiskVerdict RiskEngine::pre_trade(Side side, PriceTicks price, Qty qty,
                                  bool is_market, usize open_orders,
                                  Qty pending_buy_qty, Qty pending_sell_qty) {
  ++stats_.checks;
  const auto veto = [&](RiskVerdict v) {
    ++stats_.vetoes[static_cast<u32>(v)];
    return v;
  };

  if (config_.max_order_qty > 0 && qty > config_.max_order_qty) {
    return veto(RiskVerdict::kOrderTooLarge);
  }
  if (config_.max_open_orders > 0 && open_orders >= config_.max_open_orders) {
    return veto(RiskVerdict::kTooManyOpen);
  }
  if (config_.max_loss_ticks > 0 &&
      total_pnl_ticks() < -config_.max_loss_ticks) {
    return veto(RiskVerdict::kMaxLossBreached);
  }
  if (config_.max_position > 0) {
    // Worst-case exposure if every pending order (plus this one) fills.
    const i64 worst =
        side == Side::kBid
            ? position_ + pending_buy_qty + qty
            : -(position_ - pending_sell_qty - qty);
    if (worst > config_.max_position) {
      return veto(RiskVerdict::kPositionLimit);
    }
  }
  if (!is_market && config_.price_collar_pct > 0.0 && have_mark_ &&
      mark_ > 0) {
    const double deviation =
        std::abs(static_cast<double>(price - mark_)) /
        static_cast<double>(mark_);
    if (deviation > config_.price_collar_pct) {
      return veto(RiskVerdict::kPriceCollar);
    }
  }
  return RiskVerdict::kOk;
}

void RiskEngine::on_fill(Side side, PriceTicks price, Qty qty) {
  Qty remaining = qty;
  const i64 dir = side == Side::kBid ? 1 : -1;
  // Closing leg first: a fill against an opposite-signed position
  // realizes P&L at the VWAP entry basis (entry_cost_ / |position|),
  // computed as an exact cost share so everything stays integral.
  if (position_ != 0 && (position_ > 0) != (dir > 0)) {
    const Qty abs_pos = position_ > 0 ? position_ : -position_;
    const Qty closing = remaining < abs_pos ? remaining : abs_pos;
    const i64 cost_share = entry_cost_ * closing / abs_pos;
    const i64 close_px = static_cast<i64>(price) * closing;
    // Long closed by a sell: pnl = proceeds − cost; short mirrored.
    realized_ +=
        position_ > 0 ? (close_px - cost_share) : (cost_share - close_px);
    entry_cost_ -= cost_share;
    position_ += dir * closing;
    remaining -= closing;
    if (position_ == 0) entry_cost_ = 0;  // drop integer-division residue
  }
  // Opening leg (from flat, extending, or crossed through flat).
  if (remaining > 0) {
    position_ += dir * remaining;
    entry_cost_ += static_cast<i64>(price) * remaining;
  }
}

i64 RiskEngine::unrealized_ticks() const {
  if (position_ == 0 || !have_mark_) return 0;
  const i64 mark_value =
      static_cast<i64>(mark_) * std::llabs(static_cast<long long>(position_));
  // Long: mark − cost; short: cost − mark.
  return position_ > 0 ? (mark_value - entry_cost_)
                       : (entry_cost_ - mark_value);
}

}  // namespace rtseed::lob
