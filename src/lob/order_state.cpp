#include "lob/order_state.hpp"

namespace rtseed::lob {

const char* order_state_name(OrderState s) {
  switch (s) {
    case OrderState::kPendingNew: return "PENDING_NEW";
    case OrderState::kLive: return "LIVE";
    case OrderState::kPendingCancel: return "PENDING_CANCEL";
    case OrderState::kPendingReplace: return "PENDING_REPLACE";
    case OrderState::kFilled: return "FILLED";
    case OrderState::kCanceled: return "CANCELED";
    case OrderState::kExpired: return "EXPIRED";
    case OrderState::kRejected: return "REJECTED";
  }
  return "?";
}

const char* order_event_name(OrderEvent e) {
  switch (e) {
    case OrderEvent::kAccept: return "accept";
    case OrderEvent::kReject: return "reject";
    case OrderEvent::kPartialFill: return "partial_fill";
    case OrderEvent::kFill: return "fill";
    case OrderEvent::kCancelRequest: return "cancel_request";
    case OrderEvent::kReplaceRequest: return "replace_request";
    case OrderEvent::kCancelAck: return "cancel_ack";
    case OrderEvent::kReplaceAck: return "replace_ack";
    case OrderEvent::kReplaceReject: return "replace_reject";
    case OrderEvent::kExpire: return "expire";
    case OrderEvent::kKill: return "kill";
  }
  return "?";
}

OrderState next_order_state(OrderState from, OrderEvent event, bool* legal) {
  *legal = true;
  switch (from) {
    case OrderState::kPendingNew:
      switch (event) {
        case OrderEvent::kAccept: return OrderState::kLive;
        case OrderEvent::kReject: return OrderState::kRejected;
        case OrderEvent::kKill: return OrderState::kCanceled;
        default: break;
      }
      break;
    case OrderState::kLive:
      switch (event) {
        case OrderEvent::kPartialFill: return OrderState::kLive;
        case OrderEvent::kFill: return OrderState::kFilled;
        case OrderEvent::kCancelRequest: return OrderState::kPendingCancel;
        case OrderEvent::kReplaceRequest: return OrderState::kPendingReplace;
        case OrderEvent::kExpire: return OrderState::kExpired;
        case OrderEvent::kKill: return OrderState::kCanceled;
        default: break;
      }
      break;
    case OrderState::kPendingCancel:
      switch (event) {
        // A fill can race the cancel: executions win until the ack lands.
        case OrderEvent::kPartialFill: return OrderState::kPendingCancel;
        case OrderEvent::kFill: return OrderState::kFilled;
        case OrderEvent::kCancelAck: return OrderState::kCanceled;
        case OrderEvent::kKill: return OrderState::kCanceled;
        default: break;
      }
      break;
    case OrderState::kPendingReplace:
      switch (event) {
        case OrderEvent::kPartialFill: return OrderState::kPendingReplace;
        case OrderEvent::kFill: return OrderState::kFilled;
        case OrderEvent::kReplaceAck: return OrderState::kLive;
        case OrderEvent::kReplaceReject: return OrderState::kLive;
        case OrderEvent::kKill: return OrderState::kCanceled;
        default: break;
      }
      break;
    // Terminal states accept nothing: an order dies exactly once.
    case OrderState::kFilled:
    case OrderState::kCanceled:
    case OrderState::kExpired:
    case OrderState::kRejected:
      break;
  }
  *legal = false;
  return from;
}

}  // namespace rtseed::lob
