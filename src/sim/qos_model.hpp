// Effective QoS vs. the number of parallel optional parts — the paper's
// closing guidance made computable:
//
//   "traders should choose an appropriate number of parallel optional
//    parts by considering the overhead associated with beginning and
//    ending the processes" (§VII)
//
// QoS delivered by a job is the total optional execution obtained.  More
// parts multiply throughput (parallel refinement) but shrink the usable
// window, because Δb (beginning, O(np)) delays the parts' start and Δe
// (ending, O(np)) must finish before the wind-up part:
//
//   usable(np)    = (OD − m) − Δb(np) − Δe(np)          per job
//   per-part speed = 1 / (1 + a_bg·bg + a_own·own)       (SMT contention)
//   qos(np)        = Σ_parts usable(np) · speed(part)
//
// The resulting curve rises (parallelism) then falls (overhead + SMT
// crowding): an interior optimum np*, which depends on the assignment
// policy and background load exactly as the paper predicts (one-by-one
// has the best per-part speed but the worst Δe under load).
#pragma once

#include "common/time.hpp"
#include "sim/overhead_model.hpp"

namespace rtseed::sim {

struct QosScenario {
  rt::Topology topology = rt::Topology::xeon_phi_3120a();
  core::AssignmentPolicy policy = core::AssignmentPolicy::kOneByOne;
  LoadKind load = LoadKind::kNone;
  /// The paper's task: T = 1 s, m = w = 250 ms -> OD − m = 500 ms window.
  common::Nanos optional_window = common::millis(500);
};

class QosModel {
 public:
  explicit QosModel(ContentionParams params = {}) : model_(params) {}

  /// Mean usable optional window per part after begin/end overheads, in
  /// microseconds (clamped at 0 when overheads eat the whole window).
  double usable_window_us(const QosScenario& scenario, int np,
                          common::Rng& rng) const;

  /// Total effective QoS (part-seconds of refinement per job, in
  /// microseconds of equivalent single-thread work) for np parts.
  double effective_qos_us(const QosScenario& scenario, int np,
                          common::Rng& rng) const;

  /// np in [1, max_np] maximizing effective_qos_us.
  int best_np(const QosScenario& scenario, int max_np,
              common::Rng& rng) const;

 private:
  /// Per-part execution speed under SMT contention (1 = full speed).
  double part_speed(const QosScenario& scenario, int np, int part) const;

  OverheadModel model_;
};

}  // namespace rtseed::sim
