// Discrete-event simulation of sharded deployments (DESIGN.md §12).
//
// A sharded deployment (src/shard) splits the machine into S pinned
// shard groups; sched::plan_sharded places symbol task groups on shards
// (home-by-hash, spill under the restricted-migration rule).  This layer
// answers the capacity-planning questions *before* pinning anything:
//
//  * simulate_sharded — run the sharded admission, then simulate each
//    shard independently with the uniprocessor/partitioned engine.
//    Spilled groups pay the cross-shard hop: their ticks are forwarded
//    through the transport by the router, which the simulation models by
//    inflating their mandatory WCETs by `hop_latency` (the forward is
//    work that happens before the mandatory part's real computation can
//    start, and it occupies the same release-to-deadline window).
//  * sweep_shards / min_shards_for — evaluate a symbol population at
//    every shard count that divides the machine and find the smallest
//    one meeting a miss-rate target.
//  * modeled_throughput — the deterministic pipeline-saturation model
//    behind bench/micro_shard's speedup gate: S parallel shard pipelines
//    drain ticks at 1/service each, fed by one router whose per-tick
//    dispatch cost is the serial section (Amdahl bound).
#pragma once

#include <vector>

#include "sched/sharded.hpp"
#include "sim/sim_scheduler.hpp"

namespace rtseed::sim {

struct ShardedSimOptions {
  /// Simulation options applied inside every shard.
  SimOptions per_shard;
  /// Admission options forwarded to sched::plan_sharded.
  sched::ShardedOptions admission;
  /// Partitioning heuristic inside each shard's simulation.
  sched::PackingHeuristic heuristic = sched::PackingHeuristic::kFirstFit;
  /// Cross-shard hop cost charged to every mandatory part of a spilled
  /// group (router forward through the transport).
  Nanos hop_latency = common::micros(5);
};

struct ShardedSimResult {
  sched::ShardedPlan plan;
  /// Parallel to shard_cores; empty shards hold empty results.
  std::vector<PartitionedSimResult> shards;

  long total_released() const;
  long total_misses() const;
  /// misses / released jobs across every shard (0 when nothing ran).
  double miss_rate() const;
};

/// Plans `groups` over `shard_cores` and simulates each shard.  When the
/// plan is infeasible the placed groups still simulate (the unplaceable
/// ones are skipped) so the caller sees how the admitted load behaves.
ShardedSimResult simulate_sharded(
    const std::vector<sched::SymbolTaskSet>& groups,
    const std::vector<int>& shard_cores,
    const ShardedSimOptions& options = {});

// ---------------------------------------------------------------------------
// Shard-count sweeps

struct ShardSweepPoint {
  int shards = 0;
  bool feasible = false;
  int spills = 0;
  long released = 0;
  long misses = 0;
  double miss_rate = 0.0;
};

/// Simulates `groups` at every shard count in [1, max_shards] (clamped
/// to total_cores), carving `total_cores` into contiguous groups whose
/// sizes differ by at most one — the same cut shard::carve_shards makes
/// for the compact policy.  Cells are independent and run on the sweep
/// pool; results are bit-identical to the serial run.
std::vector<ShardSweepPoint> sweep_shards(
    const std::vector<sched::SymbolTaskSet>& groups, int total_cores,
    int max_shards, const ShardedSimOptions& options = {});

/// Smallest shard count whose sweep point is feasible with
/// miss_rate <= max_miss_rate; -1 when no point qualifies.
int min_shards_for(const std::vector<ShardSweepPoint>& sweep,
                   double max_miss_rate);

// ---------------------------------------------------------------------------
// Pipeline-saturation throughput model

/// Calibrated per-tick costs of one shard pipeline.  bench/micro_shard
/// measures these natively on the host, then asks the model what the
/// same pipeline replicated S ways sustains.
struct PipelineModel {
  /// Per-tick service time inside a shard (pop + indicator round + post).
  Nanos tick_service = 0;
  /// Serial router cost per tick (hash + ring push) — the Amdahl term.
  Nanos router_dispatch = 0;
  /// Fraction of ticks forwarded off their home shard (spilled symbols).
  double spill_fraction = 0.0;
  /// Forward cost those ticks add to their shard's service time.
  Nanos hop_latency = 0;
};

/// Saturated aggregate tick throughput (ticks/second) of `num_shards`
/// parallel pipelines behind one router:
///   min( S / (service + spill·hop),  1 / router_dispatch )
/// The spill term applies only for S > 1 (one shard has nowhere to
/// spill).  Returns 0 for a degenerate model (no service cost).
double modeled_throughput(const PipelineModel& model, int num_shards);

/// modeled_throughput(S) / modeled_throughput(1).
double modeled_speedup(const PipelineModel& model, int num_shards);

}  // namespace rtseed::sim
