// Discrete-event simulation of uniprocessor part-level scheduling, plus a
// partitioned multiprocessor wrapper.
//
// Three algorithms:
//  * kGeneralRm — Liu & Layland's model: each job executes Cᵢ = mᵢ + wᵢ
//    as one part at its RM priority (the left half of the paper's Fig. 3).
//  * kRmwp     — semi-fixed-priority scheduling: mandatory part at RM
//    priority, optional part in the NRTQ band (below every mandatory/
//    wind-up part), wind-up part released at the optional deadline
//    (the right half of Fig. 3, and the subject of Theorems 1-2).
//  * kEdf      — dynamic-priority baseline (whole-job EDF).
//
// The simulator reproduces exact preemptive behaviour at nanosecond
// resolution and records per-part execution slices, from which Fig. 3's
// remaining-execution-time curves and the Theorem-1 invariance test are
// derived.  Optional parts are simulated as one aggregated sequential part
// per job (parallelism affects QoS, not schedulability — Theorem 2).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "obs/telemetry.hpp"
#include "sched/partition.hpp"
#include "sched/task_model.hpp"

namespace rtseed::sim {

using common::JobId;
using common::Nanos;
using common::TaskId;

enum class SimAlgorithm { kGeneralRm, kRmwp, kEdf };

const char* sim_algorithm_name(SimAlgorithm algorithm);

/// Simulation core.
///  * kIndexed — event-indexed engine: a lazy min-heap of timer events
///    (release / optional-deadline / deadline) gives the next clock jump
///    in O(log n), and per-band ready indexes (priority-rank bitmaps, or
///    an ordered set for EDF) give the dispatch decision in O(1) instead
///    of rescanning every task at every boundary.
///  * kLegacy  — the original O(n)-scan-per-step core, kept compiled as
///    the A/B baseline (bench/micro_sim_engine) and as the oracle for the
///    equivalence tests: both engines produce bit-identical results.
enum class SimEngine { kIndexed, kLegacy };

const char* sim_engine_name(SimEngine engine);

enum class PartKind { kWhole, kMandatory, kOptional, kWindup };

const char* part_kind_name(PartKind part);

struct ExecutionSlice {
  TaskId task = 0;
  JobId job = 0;
  PartKind part = PartKind::kWhole;
  Nanos start = 0;
  Nanos end = 0;
};

struct SimTaskStats {
  long released = 0;
  long completed = 0;
  long misses = 0;
  long optional_completed = 0;
  long optional_terminated = 0;
  long optional_discarded = 0;
  Nanos max_response = 0;  ///< max(job finish − release)
};

struct SimOptions {
  SimAlgorithm algorithm = SimAlgorithm::kRmwp;
  SimEngine engine = SimEngine::kIndexed;
  Nanos horizon = common::seconds(10);
  /// Simulate optional parts (NRTQ band).  Turning this off must not
  /// change any mandatory/wind-up slice (Theorem 1) — tests rely on it.
  bool include_optional = true;
  /// Abort a job at its deadline (count one miss, resume at next release).
  bool abort_at_deadline = true;
  bool record_trace = false;
  /// Override per-task optional deadlines; empty = derive from RMWP
  /// analysis (OD = D − L), falling back to D − w when the wind-up busy
  /// window diverges.
  std::vector<Nanos> optional_deadlines;
  /// Middleware overheads injected into the simulation (what the pure
  /// analysis does not know): extra time charged to every mandatory part
  /// at release (Δm + Δb) and to every wind-up part at its release (Δe).
  /// Values typically come from sim::OverheadModel; countering them is
  /// what sched::PRmwpOptions::od_margin exists for.
  Nanos release_overhead = 0;
  Nanos windup_overhead = 0;
  /// When set, the simulator emits the same obs::TraceEvent schema the
  /// native middleware emits (releases, part begin/end, terminations,
  /// misses) with virtual-nanosecond timestamps, so one Perfetto exporter
  /// renders both.  Construct the Telemetry with ClockDomain::kVirtual.
  obs::Telemetry* telemetry = nullptr;
  /// Track (thread) name events register under, e.g. "sim.cpu0".
  std::string telemetry_track = "sim";
  /// Maps local task indices to the TaskIds events carry (partitioned
  /// simulations pass the pre-partition ids); empty = identity.
  std::vector<TaskId> telemetry_task_ids;
};

struct SimResult {
  std::vector<SimTaskStats> tasks;
  std::vector<ExecutionSlice> trace;
  std::vector<Nanos> optional_deadlines;  ///< the ODs actually used

  long total_misses() const;
  bool any_miss() const { return total_misses() > 0; }
};

/// Simulates one processor.
SimResult simulate_uniprocessor(const sched::TaskSet& tasks,
                                const SimOptions& options);

/// Partitions with the given heuristic (admission: RMWP analysis for
/// kRmwp, RM response-time analysis for kGeneralRm, U≤1 for kEdf) and
/// simulates each processor independently.  When partitioning fails the
/// result has `partition_feasible = false` and tasks are placed by
/// utilization-balancing worst-fit so the simulation can still count
/// misses.
struct PartitionedSimResult {
  bool partition_feasible = false;
  std::vector<int> processor_of;
  std::vector<SimResult> per_processor;
  long total_misses() const;
  bool any_miss() const { return total_misses() > 0; }
};

PartitionedSimResult simulate_partitioned(
    const sched::TaskSet& tasks, int num_processors, const SimOptions& options,
    sched::PackingHeuristic heuristic = sched::PackingHeuristic::kFirstFit);

}  // namespace rtseed::sim
