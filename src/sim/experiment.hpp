// Experiment drivers shared by the figure-reproduction benchmarks.
//
// Each of Figs. 10-13 sweeps the number of parallel optional parts
// np ∈ {4, 8, 16, 32, 57, 114, 171, 228} for the three assignment policies
// under the three background loads, averaging 100 jobs per point (§V).
#pragma once

#include <string>
#include <vector>

#include "common/table.hpp"
#include "sim/overhead_model.hpp"
#include "sim/sweep.hpp"

namespace rtseed::sim {

struct FigureConfig {
  OverheadKind kind = OverheadKind::kBeginMandatory;
  rt::Topology topology = rt::Topology::xeon_phi_3120a();
  std::vector<int> np_set = {4, 8, 16, 32, 57, 114, 171, 228};
  int jobs = 100;           ///< the paper runs 100 jobs of τ1
  common::u64 seed = 2014;  ///< deterministic experiments
  /// Sweep parallelism (see SweepOptions::threads); every cell's RNG is
  /// seeded from (seed, load, policy, np), so any thread count produces
  /// bit-identical FigureData.
  int sweep_threads = 0;
  ContentionParams params;
};

struct FigureSubplot {
  LoadKind load = LoadKind::kNone;
  /// series[policy].y[k] = mean overhead in us at np_set[k].
  std::vector<common::Series> series;
};

struct FigureData {
  OverheadKind kind;
  std::vector<double> np;  ///< x-axis
  std::vector<FigureSubplot> subplots;  ///< no-load, cpu, cpu-memory
};

/// Runs the full sweep for one figure.
FigureData run_figure(const FigureConfig& config);

/// Prints a figure in both table and gnuplot-series form.
void print_figure(const FigureData& data, const std::string& title);

/// Shape checks the paper's text asserts about each figure; returns a list
/// of violated properties (empty = all hold).  Used by both tests and the
/// benchmark binaries' self-check footer.
std::vector<std::string> check_figure_shape(const FigureData& data);

}  // namespace rtseed::sim
