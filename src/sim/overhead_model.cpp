#include "sim/overhead_model.hpp"

#include <algorithm>
#include <cmath>

namespace rtseed::sim {

const char* overhead_kind_name(OverheadKind kind) {
  switch (kind) {
    case OverheadKind::kBeginMandatory:
      return "delta_m";
    case OverheadKind::kSwitch:
      return "delta_s";
    case OverheadKind::kBeginOptional:
      return "delta_b";
    case OverheadKind::kEndOptional:
      return "delta_e";
  }
  return "?";
}

double OverheadModel::noise(common::Rng& rng) const {
  return std::exp(params_.noise_sigma * rng.normal());
}

double OverheadModel::end_contention_factor(const OverheadScenario& scenario,
                                            int part_index) const {
  const auto& topo = scenario.topology;
  const int smt = topo.smt_per_core();
  const auto counts = core::parts_per_core(topo, scenario.policy,
                                           scenario.num_optional_parts);
  const common::CpuId cpu =
      core::assign_cpu(topo, scenario.policy, part_index);
  const int on_core = counts[static_cast<size_t>(topo.core_of(cpu))];

  // Siblings of this part's hardware thread running our own parts vs.
  // background load.  Background only occupies siblings our parts left
  // free (and only when a load is present).
  const int own_siblings = std::min(on_core - 1, smt - 1);
  const int bg_siblings =
      scenario.load == LoadKind::kNone ? 0 : (smt - 1 - own_siblings);

  const auto li = static_cast<int>(scenario.load);
  return 1.0 + params_.end_bg_sibling[li] * static_cast<double>(bg_siblings) +
         params_.end_own_sibling[li] * static_cast<double>(own_siblings);
}

double OverheadModel::sample_us(OverheadKind kind,
                                const OverheadScenario& scenario,
                                common::Rng& rng) const {
  const int np = scenario.num_optional_parts;
  const int cpus = scenario.topology.num_cpus();
  const auto li = static_cast<int>(scenario.load);

  switch (kind) {
    case OverheadKind::kBeginMandatory: {
      // Job-release bookkeeping and cache refill on the mandatory core:
      // independent of np (Fig. 10: "approximately constant"), grows with
      // the number of tasks sharing the release path.
      const double task_factor =
          1.0 + 0.15 * static_cast<double>(scenario.num_tasks - 1);
      return params_.base_begin_mandatory_us *
             params_.begin_mandatory_load[li] * task_factor * noise(rng);
    }

    case OverheadKind::kSwitch: {
      if (scenario.load == LoadKind::kNone) {
        // Waking np optional threads cascades follow-on switches on every
        // core; contention grows with np and blows up when every hardware
        // thread is claimed (the paper's "dramatic increase" at 228).
        const double fill =
            static_cast<double>(np) / static_cast<double>(cpus);
        return (params_.base_switch_us +
                params_.switch_per_part_us * static_cast<double>(np) +
                params_.switch_saturation_us * std::pow(fill, 4.0)) *
               noise(rng);
      }
      // Under load the switch preempts an already-busy hardware thread:
      // a larger cost that no longer depends on np (Fig. 11 b/c).
      return (params_.switch_loaded_base_us[li] + params_.base_switch_us +
              0.01 * static_cast<double>(np)) *
             noise(rng);
    }

    case OverheadKind::kBeginOptional: {
      // One pthread_cond_signal per optional part, issued serially by the
      // mandatory thread: O(np) (paper §V-B).  Branch-heavy, so the CPU
      // load hurts more than the CPU-Memory load (Fig. 12).
      const double per_signal =
          params_.base_signal_us * params_.signal_load[li];
      return per_signal * static_cast<double>(np) * noise(rng);
    }

    case OverheadKind::kEndOptional: {
      // Each part's termination handles the timer interrupt, restores the
      // stack context (siglongjmp), and signals completion: O(np), with
      // per-part SMT contention deciding the policy ordering (Fig. 13).
      const double per_part =
          params_.base_end_optional_us * params_.end_optional_load[li];
      double total = 0.0;
      for (int j = 0; j < np; ++j) {
        total += per_part * end_contention_factor(scenario, j);
      }
      // Constant tail: waking the mandatory thread for the wind-up part.
      total += 2.0 * params_.base_switch_us;
      return total * noise(rng);
    }
  }
  return 0.0;
}

common::Summary OverheadModel::measure_us(OverheadKind kind,
                                          const OverheadScenario& scenario,
                                          int jobs, common::Rng& rng) const {
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(jobs));
  for (int j = 0; j < jobs; ++j) {
    samples.push_back(sample_us(kind, scenario, rng));
  }
  return common::summarize(std::move(samples));
}

}  // namespace rtseed::sim
