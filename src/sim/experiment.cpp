#include "sim/experiment.hpp"

#include <cstdio>
#include <iterator>

namespace rtseed::sim {

namespace {

constexpr core::AssignmentPolicy kPolicies[] = {
    core::AssignmentPolicy::kOneByOne,
    core::AssignmentPolicy::kTwoByTwo,
    core::AssignmentPolicy::kAllByAll,
};

constexpr LoadKind kLoads[] = {LoadKind::kNone, LoadKind::kCpu,
                               LoadKind::kCpuMemory};

}  // namespace

FigureData run_figure(const FigureConfig& config) {
  FigureData data;
  data.kind = config.kind;
  for (int np : config.np_set) data.np.push_back(np);

  const OverheadModel model(config.params);

  // One sweep cell per (load, policy, np); every cell is independent and
  // seeded from its own coordinates, so the pool can run them in any
  // order on any number of threads and the output stays bit-identical.
  const size_t num_np = config.np_set.size();
  const size_t num_policies = std::size(kPolicies);
  const size_t num_cells = std::size(kLoads) * num_policies * num_np;

  const SweepRunner runner({config.sweep_threads});
  const auto means = runner.map(num_cells, [&](size_t cell) {
    const size_t k = cell % num_np;
    const size_t p = (cell / num_np) % num_policies;
    const size_t l = cell / (num_np * num_policies);
    OverheadScenario scenario;
    scenario.topology = config.topology;
    scenario.policy = kPolicies[p];
    scenario.load = kLoads[l];
    scenario.num_optional_parts = config.np_set[k];
    common::Rng rng(SweepRunner::cell_seed(
        config.seed,
        {static_cast<common::u64>(l), static_cast<common::u64>(p),
         static_cast<common::u64>(config.np_set[k])}));
    return model.measure_us(config.kind, scenario, config.jobs, rng).mean;
  });

  size_t cell = 0;
  for (LoadKind load : kLoads) {
    FigureSubplot subplot;
    subplot.load = load;
    for (auto policy : kPolicies) {
      common::Series series;
      series.name = core::assignment_policy_name(policy);
      for (size_t k = 0; k < num_np; ++k) series.y.push_back(means[cell++]);
      subplot.series.push_back(std::move(series));
    }
    data.subplots.push_back(std::move(subplot));
  }
  return data;
}

void print_figure(const FigureData& data, const std::string& title) {
  std::printf("=== %s (%s, mean over jobs, microseconds) ===\n", title.c_str(),
              overhead_kind_name(data.kind));
  for (const auto& subplot : data.subplots) {
    std::printf("\n--- %s ---\n", load_kind_name(subplot.load));
    common::Table table({"np", "one-by-one", "two-by-two", "all-by-all"});
    for (size_t k = 0; k < data.np.size(); ++k) {
      table.add_numeric_row({data.np[k], subplot.series[0].y[k],
                     subplot.series[1].y[k], subplot.series[2].y[k]},
                    1);
    }
    table.print();
    std::fputs(
        render_series(std::string(title) + " / " +
                          load_kind_name(subplot.load),
                      "np", data.np, subplot.series, 1)
            .c_str(),
        stdout);
  }
}

namespace {

double mean_over_policies(const FigureSubplot& subplot, size_t k) {
  double sum = 0;
  for (const auto& s : subplot.series) sum += s.y[k];
  return sum / static_cast<double>(subplot.series.size());
}

}  // namespace

std::vector<std::string> check_figure_shape(const FigureData& data) {
  std::vector<std::string> violations;
  if (data.subplots.size() != 3 || data.np.empty()) {
    violations.push_back("incomplete figure data");
    return violations;
  }
  const auto& none = data.subplots[0];
  const auto& cpu = data.subplots[1];
  const auto& cpumem = data.subplots[2];
  const size_t last = data.np.size() - 1;

  auto flat = [&](const common::Series& s, double tolerance) {
    double lo = s.y[0], hi = s.y[0];
    for (double v : s.y) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    return hi <= lo * tolerance;
  };

  switch (data.kind) {
    case OverheadKind::kBeginMandatory: {
      // "approximately constant, regardless of the number of parallel
      // optional parts"; load ordering none < CPU < CPU-Memory.
      for (const auto& subplot : data.subplots) {
        for (const auto& s : subplot.series) {
          if (!flat(s, 1.4)) {
            violations.push_back("delta_m not flat for " + s.name);
          }
        }
      }
      for (size_t k = 0; k < data.np.size(); ++k) {
        if (!(mean_over_policies(none, k) < mean_over_policies(cpu, k) &&
              mean_over_policies(cpu, k) < mean_over_policies(cpumem, k))) {
          violations.push_back("delta_m load ordering violated");
          break;
        }
      }
      break;
    }
    case OverheadKind::kSwitch: {
      // No load: increases with np (sharply at full SMT); loads: ~constant.
      for (const auto& s : none.series) {
        if (!(s.y[last] > 2.0 * s.y[0])) {
          violations.push_back("delta_s no-load not increasing for " + s.name);
        }
      }
      for (const auto* subplot : {&cpu, &cpumem}) {
        for (const auto& s : subplot->series) {
          if (!flat(s, 1.5)) {
            violations.push_back("delta_s under load not flat for " + s.name);
          }
        }
      }
      break;
    }
    case OverheadKind::kBeginOptional: {
      // Linear in np; CPU load > CPU-Memory load > no load.
      for (const auto& subplot : data.subplots) {
        for (const auto& s : subplot.series) {
          const double expected =
              s.y[0] * data.np[last] / data.np[0];
          if (s.y[last] < 0.5 * expected || s.y[last] > 2.0 * expected) {
            violations.push_back("delta_b not ~linear for " + s.name);
          }
        }
      }
      if (!(mean_over_policies(cpu, last) > mean_over_policies(cpumem, last) &&
            mean_over_policies(cpumem, last) >
                mean_over_policies(none, last))) {
        violations.push_back("delta_b load ordering (cpu > cpu-mem > none) "
                             "violated");
      }
      break;
    }
    case OverheadKind::kEndOptional: {
      // Increasing in np; CPU-Memory > CPU under load; one-by-one worst /
      // all-by-all best under load (at np where placements differ).
      for (const auto& subplot : data.subplots) {
        for (const auto& s : subplot.series) {
          if (!(s.y[last] > 5.0 * s.y[0])) {
            violations.push_back("delta_e not increasing for " + s.name);
          }
        }
      }
      if (!(mean_over_policies(cpumem, last) > mean_over_policies(cpu, last) &&
            mean_over_policies(cpu, last) > mean_over_policies(none, last))) {
        violations.push_back("delta_e load ordering (cpu-mem > cpu > none) "
                             "violated");
      }
      // Find np = 57 (one part per core under one-by-one).
      for (size_t k = 0; k < data.np.size(); ++k) {
        if (static_cast<int>(data.np[k]) != 57) continue;
        for (const auto* subplot : {&cpu, &cpumem}) {
          const double one = subplot->series[0].y[k];
          const double all = subplot->series[2].y[k];
          if (!(one > all)) {
            violations.push_back(
                "delta_e policy ordering (one-by-one > all-by-all) violated");
          }
        }
      }
      break;
    }
  }
  return violations;
}

}  // namespace rtseed::sim
