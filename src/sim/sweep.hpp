// Parallel sweep engine for the paper's evaluation grids.
//
// Every figure and ablation is a grid of independent *cells*
// (load × policy × np, or a utilization / sensitivity grid point), each
// of which only needs its own RNG stream.  SweepRunner shards cells
// across hardware threads and guarantees the result is bit-identical to
// the serial run: each cell's generator is seeded from
// `cell_seed(base, {coordinates...})` — a SplitMix64 hash chain over the
// cell's coordinates — so the stream a cell sees never depends on which
// thread ran it or in what order cells completed.
//
// Thread count: SweepOptions::threads, or (when 0) the
// RTSEED_SWEEP_THREADS environment variable, or hardware concurrency.
#pragma once

#include <initializer_list>
#include <type_traits>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"

namespace rtseed::sim {

struct SweepOptions {
  /// 0 = auto (RTSEED_SWEEP_THREADS env var, else hardware concurrency);
  /// 1 = serial; N = exactly N workers.
  int threads = 0;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {})
      : threads_(common::resolve_parallelism(options.threads)) {}

  int threads() const { return threads_; }

  /// out[i] = fn(i) for i in [0, n), computed on the pool.  Output is
  /// identical for every thread count (cells are independent and results
  /// land by index).
  template <typename Fn>
  auto map(std::size_t n, Fn&& fn) const
      -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
    using R = std::invoke_result_t<Fn&, std::size_t>;
    std::vector<R> out(n);
    common::parallel_for(
        n, threads_, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

  /// Deterministic per-cell seed: a SplitMix64 hash chain over the base
  /// seed and the cell's grid coordinates.  Cells with different
  /// coordinates get independent streams; the same cell always gets the
  /// same stream, regardless of sweep order or parallelism.
  static common::u64 cell_seed(common::u64 base,
                               std::initializer_list<common::u64> coords) {
    common::u64 state = base ^ 0xA5EED5EEDA5EED00ULL;
    // Chain through the fully-mixed output of each step (not the raw
    // SplitMix64 state, whose per-step update is a bare add): every
    // coordinate lands on an avalanched value, so nearby grid cells —
    // (1,1) vs (0,2), say — can't cancel into the same stream.
    common::u64 seed = common::splitmix64(state);
    for (common::u64 c : coords) {
      state = seed ^ (c + 0x9E3779B97F4A7C15ULL);
      seed = common::splitmix64(state);
    }
    return seed;
  }

 private:
  int threads_;
};

}  // namespace rtseed::sim
