#include "sim/qos_model.hpp"

#include <algorithm>

namespace rtseed::sim {

double QosModel::part_speed(const QosScenario& scenario, int np,
                            int part) const {
  const auto& topo = scenario.topology;
  const int smt = topo.smt_per_core();
  const auto counts = core::parts_per_core(topo, scenario.policy, np);
  const auto cpu = core::assign_cpu(topo, scenario.policy, part);
  const int on_core = counts[static_cast<size_t>(topo.core_of(cpu))];
  const int own_siblings = std::min(on_core - 1, smt - 1);
  const int bg_siblings =
      scenario.load == LoadKind::kNone ? 0 : (smt - 1 - own_siblings);
  const auto li = static_cast<int>(scenario.load);
  // Optional parts compute continuously, so their slowdown uses the same
  // sibling sensitivities as the end-processing path.
  const double slowdown =
      1.0 + model_.params().end_bg_sibling[li] * bg_siblings +
      model_.params().end_own_sibling[li] * own_siblings;
  return 1.0 / slowdown;
}

double QosModel::usable_window_us(const QosScenario& scenario, int np,
                                  common::Rng& rng) const {
  OverheadScenario overhead;
  overhead.topology = scenario.topology;
  overhead.policy = scenario.policy;
  overhead.load = scenario.load;
  overhead.num_optional_parts = np;
  const double db =
      model_.sample_us(OverheadKind::kBeginOptional, overhead, rng);
  const double de =
      model_.sample_us(OverheadKind::kEndOptional, overhead, rng);
  const double window = common::to_micros(scenario.optional_window);
  return std::max(0.0, window - db - de);
}

double QosModel::effective_qos_us(const QosScenario& scenario, int np,
                                  common::Rng& rng) const {
  const double window = usable_window_us(scenario, np, rng);
  double qos = 0.0;
  for (int part = 0; part < np; ++part) {
    qos += window * part_speed(scenario, np, part);
  }
  return qos;
}

int QosModel::best_np(const QosScenario& scenario, int max_np,
                      common::Rng& rng) const {
  int best = 1;
  double best_qos = 0.0;
  for (int np = 1; np <= max_np; ++np) {
    auto child = rng.fork();
    // Average a few samples so noise does not pick the winner.
    double total = 0.0;
    for (int trial = 0; trial < 10; ++trial) {
      total += effective_qos_us(scenario, np, child);
    }
    if (total > best_qos) {
      best_qos = total;
      best = np;
    }
  }
  return best;
}

}  // namespace rtseed::sim
