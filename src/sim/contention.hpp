// Background loads and the SMT/load contention model (paper §V-B).
//
// The paper measures overheads under three background conditions:
//   * No load          — nothing else runs;
//   * CPU load         — an infinite branch-heavy loop on every hardware
//                        thread (stresses the in-order core's branch unit);
//   * CPU-Memory load  — 512 KB (L2-sized) read/write loops on every
//                        hardware thread (evicts L1/L2, forcing memory
//                        traffic).
//
// Operations differ in what they contend on: the pthread_cond_signal loop
// (Δb) is branch-heavy, so it suffers MORE under the CPU load than under
// the CPU-Memory load (Fig. 12); timer-interrupt handling + sigsetjmp
// context restore (Δe) and the mandatory part's cache refill (Δm) are
// memory-heavy, so CPU-Memory hurts them more (Figs. 10, 13).
//
// SMT contention: an optional part's begin/end processing slows down by a
// factor (1 + a_bg·bg_siblings + a_own·own_siblings), where bg_siblings is
// the number of sibling hardware threads running background load and
// own_siblings those running our own optional parts.  Background load only
// occupies a sibling that our parts did not claim (SCHED_FIFO preempts it
// elsewhere).  This is the mechanism behind Fig. 13's policy ordering:
// one-by-one leaves 3 busy background siblings per part; all-by-all
// surrounds each part with its own (cheap) siblings.
#pragma once

#include <string>

namespace rtseed::sim {

enum class LoadKind { kNone, kCpu, kCpuMemory };

const char* load_kind_name(LoadKind load);

/// Which hardware resource an operation mostly stresses.
enum class OperationKind {
  kBeginMandatory,  ///< job init + cache refill on the mandatory core (Δm)
  kSignal,          ///< one pthread_cond_signal to an optional thread (Δb)
  kSwitch,          ///< context switch mandatory → optional thread (Δs)
  kEndOptional,     ///< timer IRQ + siglongjmp restore + completion signal (Δe)
};

const char* operation_kind_name(OperationKind op);

struct ContentionParams {
  /// Base cost of each operation in microseconds under no load.
  double base_begin_mandatory_us = 55.0;
  double base_signal_us = 20.0;
  double base_switch_us = 8.0;
  double base_end_optional_us = 120.0;

  /// Load multipliers, indexed by [operation][load].
  /// Branch-heavy kSignal: CPU > CPU-Memory (Fig. 12);
  /// memory-heavy kBeginMandatory/kEndOptional: CPU-Memory > CPU.
  double begin_mandatory_load[3] = {1.0, 2.8, 4.4};
  double signal_load[3] = {1.0, 2.4, 1.6};
  double switch_load[3] = {1.0, 1.0, 1.0};  // load effect modeled separately
  double end_optional_load[3] = {1.0, 1.35, 1.75};

  /// SMT sibling sensitivities for kEndOptional.
  double end_bg_sibling[3] = {0.0, 0.35, 0.45};
  double end_own_sibling[3] = {0.04, 0.06, 0.06};

  /// Δs model: under no load the switch cascades wakeups across the
  /// machine — linear term per optional part plus a saturation blow-up as
  /// np approaches the hardware-thread count (the paper's "dramatic
  /// increase" at 228).  Under load the switch must preempt a busy
  /// hardware thread: a larger, np-independent cost.
  double switch_per_part_us = 0.28;
  double switch_saturation_us = 30.0;
  double switch_loaded_base_us[3] = {0.0, 38.0, 44.0};

  /// Multiplicative log-normal measurement noise (sigma of ln).
  double noise_sigma = 0.06;
};

double base_cost_us(const ContentionParams& params, OperationKind op);
double load_multiplier(const ContentionParams& params, OperationKind op,
                       LoadKind load);

}  // namespace rtseed::sim
