#include "sim/global_scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>

#include "sched/rm.hpp"
#include "sched/rmus.hpp"
#include "sched/rmwp.hpp"
#include "sim/event_index.hpp"

namespace rtseed::sim {

long GlobalSimResult::total_misses() const {
  long misses = 0;
  for (const auto& t : tasks) misses += t.misses;
  return misses;
}

namespace {

constexpr Nanos kInfinity = std::numeric_limits<Nanos>::max();

enum class Phase {
  kSleeping,
  kMandatory,
  kOptional,
  kWaitingWindup,
  kWindup,
};

struct TaskState {
  Phase phase = Phase::kSleeping;
  common::JobId job = -1;
  Nanos next_release = 0;
  Nanos remaining = 0;
  Nanos od_time = kInfinity;
  Nanos deadline_time = kInfinity;
  bool od_armed = false;
  bool job_live = false;
  int last_processor = -1;  ///< where the task last executed
  bool was_running = false; ///< ran in the previous dispatch interval
};

struct GlobalSimulator {
  const sched::TaskSet& tasks;
  const GlobalSimOptions& options;
  std::vector<Nanos> ods;
  std::vector<int> priority_rank;  // 0 = highest
  std::vector<TaskState> state;
  std::vector<Nanos> total_optional;  // Σ tasks[i].optional, cached
  GlobalSimResult result;

  // kIndexed engine state (unused by kLegacy); see sim_scheduler.cpp for
  // the invariants — the two engines share the exact handler sequence.
  bool indexed = false;
  detail::TimerHeap timers;
  detail::ReadyIndex ready_index;
  std::vector<TaskId> due_deadline, due_release, due_od;
  // Dispatch-selection marks, stamped per interval to avoid an O(n)
  // clear (or refill) of a bool vector at every boundary.
  std::vector<int> selected_stamp;
  int select_stamp = 0;

  GlobalSimulator(const sched::TaskSet& ts, const GlobalSimOptions& opts)
      : tasks(ts), options(opts) {
    const auto n = static_cast<size_t>(tasks.size());
    state.assign(n, TaskState{});
    result.tasks.assign(n, SimTaskStats{});
    total_optional.assign(n, 0);
    for (TaskId i = 0; i < tasks.size(); ++i) {
      Nanos total = 0;
      for (Nanos o : tasks[i].optional) total += o;
      total_optional[static_cast<size_t>(i)] = total;
    }

    // Priority order: RM, or RM-US (heavy tasks first; paper footnote 1).
    const auto order = options.rmus_priorities
                           ? sched::rmus_order(tasks, options.num_processors)
                           : sched::rm_order(tasks);
    priority_rank.assign(n, 0);
    for (size_t pos = 0; pos < order.size(); ++pos) {
      priority_rank[static_cast<size_t>(order[pos])] = static_cast<int>(pos);
    }

    if (!options.optional_deadlines.empty()) {
      ods = options.optional_deadlines;
    } else {
      // G-RMWP optional deadlines: OD = D − L with a global wind-up busy
      // window.  Interference from each higher-priority task over a
      // window L is bounded by its workload with one carry-in job,
      // W_j(L) = ⌈L/T_j⌉·C_j + C_j (clamped to L), of which at most 1/M
      // delays this task (the standard global fixed-priority bound).
      // Still sufficient-only; the simulation reports any residual miss.
      ods.resize(n);
      const Nanos m = options.num_processors;
      for (TaskId i = 0; i < tasks.size(); ++i) {
        const auto idx = static_cast<size_t>(i);
        const auto& t = tasks[i];
        const Nanos d = t.effective_deadline();
        Nanos window = t.windup;
        for (int iter = 0; iter < 64; ++iter) {
          Nanos interference = 0;
          for (TaskId j = 0; j < tasks.size(); ++j) {
            if (priority_rank[static_cast<size_t>(j)] >= priority_rank[idx]) {
              continue;
            }
            const auto& hp = tasks[j];
            const Nanos workload =
                ((window + hp.period - 1) / hp.period) * hp.wcet() +
                hp.wcet();
            interference += std::min(workload, window);
          }
          const Nanos next = t.windup + interference / m;
          if (next == window || next > d) {
            window = std::min(next, d);
            break;
          }
          window = next;
        }
        ods[idx] = std::max<Nanos>(d - window, 0);
      }
    }
    result.optional_deadlines = ods;
  }

  bool is_ready(TaskId i) const {
    const auto& s = state[static_cast<size_t>(i)];
    switch (s.phase) {
      case Phase::kMandatory:
      case Phase::kWindup:
        return s.remaining > 0;
      case Phase::kOptional:
        return options.include_optional && s.remaining > 0;
      default:
        return false;
    }
  }

  // a beats b?  Band first (RTQ above NRTQ), then algorithm order.
  bool higher_priority(TaskId a, TaskId b) const {
    const auto& sa = state[static_cast<size_t>(a)];
    const auto& sb = state[static_cast<size_t>(b)];
    const bool a_opt = sa.phase == Phase::kOptional;
    const bool b_opt = sb.phase == Phase::kOptional;
    if (a_opt != b_opt) return b_opt;
    if (options.algorithm == SimAlgorithm::kEdf) {
      if (sa.deadline_time != sb.deadline_time) {
        return sa.deadline_time < sb.deadline_time;
      }
      return a < b;
    }
    const int ra = priority_rank[static_cast<size_t>(a)];
    const int rb = priority_rank[static_cast<size_t>(b)];
    if (ra != rb) return ra < rb;
    return a < b;
  }

  void release(TaskId i, Nanos now) {
    auto& s = state[static_cast<size_t>(i)];
    auto& st = result.tasks[static_cast<size_t>(i)];
    const auto& p = tasks[i];
    ++st.released;
    ++s.job;
    s.job_live = true;
    s.deadline_time = now + p.effective_deadline();
    s.od_time = now + ods[static_cast<size_t>(i)];
    s.od_armed = options.algorithm == SimAlgorithm::kRmwp;
    s.phase = Phase::kMandatory;
    s.remaining =
        options.algorithm == SimAlgorithm::kRmwp ? p.mandatory : p.wcet();
    s.next_release = now + p.period;
    if (indexed) {
      timers.push(s.deadline_time, i, detail::TimerKind::kDeadline);
      if (s.od_armed) timers.push(s.od_time, i, detail::TimerKind::kOd);
    }
    if (s.remaining == 0) complete_part(i, now);
  }

  void finish_job(TaskId i, Nanos now) {
    auto& s = state[static_cast<size_t>(i)];
    auto& st = result.tasks[static_cast<size_t>(i)];
    ++st.completed;
    if (now > s.deadline_time) ++st.misses;
    st.max_response =
        std::max(st.max_response,
                 now - (s.deadline_time - tasks[i].effective_deadline()));
    s.job_live = false;
    s.od_armed = false;
    s.phase = Phase::kSleeping;
    s.remaining = 0;
    s.deadline_time = kInfinity;
    s.od_time = kInfinity;
    s.was_running = false;
    if (indexed) {
      timers.push(s.next_release, i, detail::TimerKind::kRelease);
    }
  }

  void complete_part(TaskId i, Nanos now) {
    auto& s = state[static_cast<size_t>(i)];
    auto& st = result.tasks[static_cast<size_t>(i)];
    const auto& p = tasks[i];
    switch (s.phase) {
      case Phase::kMandatory: {
        if (options.algorithm != SimAlgorithm::kRmwp) {
          finish_job(i, now);
          return;
        }
        if (now < s.od_time) {
          const Nanos opt = total_optional[static_cast<size_t>(i)];
          if (options.include_optional && opt > 0) {
            s.phase = Phase::kOptional;
            s.remaining = opt;
          } else {
            s.phase = Phase::kWaitingWindup;
            s.remaining = 0;
          }
        } else {
          st.optional_discarded += std::max(1, p.num_optional());
          s.od_armed = false;
          s.phase = Phase::kWindup;
          s.remaining = p.windup;
          if (s.remaining == 0) finish_job(i, now);
        }
        break;
      }
      case Phase::kOptional:
        st.optional_completed += std::max(1, p.num_optional());
        s.phase = Phase::kWaitingWindup;
        s.remaining = 0;
        break;
      case Phase::kWindup:
        finish_job(i, now);
        break;
      default:
        assert(false);
    }
  }

  void handle_od(TaskId i, Nanos now) {
    auto& s = state[static_cast<size_t>(i)];
    auto& st = result.tasks[static_cast<size_t>(i)];
    const auto& p = tasks[i];
    s.od_armed = false;
    if (!s.job_live) return;
    switch (s.phase) {
      case Phase::kOptional:
        st.optional_terminated += std::max(1, p.num_optional());
        [[fallthrough]];
      case Phase::kWaitingWindup:
        s.phase = Phase::kWindup;
        s.remaining = p.windup;
        if (s.remaining == 0) finish_job(i, now);
        break;
      default:
        break;
    }
  }

  void handle_deadline(TaskId i, Nanos now) {
    auto& s = state[static_cast<size_t>(i)];
    auto& st = result.tasks[static_cast<size_t>(i)];
    if (!s.job_live || now < s.deadline_time) return;
    ++st.misses;
    if (options.abort_at_deadline) {
      s.job_live = false;
      s.phase = Phase::kSleeping;
      s.remaining = 0;
      s.od_armed = false;
      s.deadline_time = kInfinity;
      s.od_time = kInfinity;
      s.was_running = false;
      if (indexed) {
        timers.push(s.next_release, i, detail::TimerKind::kRelease);
      }
    } else {
      s.deadline_time = kInfinity;
    }
  }

  // --- kIndexed engine helpers (see sim_scheduler.cpp) -----------------

  void sync_ready(TaskId i) {
    if (!indexed) return;
    const auto& s = state[static_cast<size_t>(i)];
    int band = detail::ReadyIndex::kNone;
    if (is_ready(i)) {
      band = s.phase == Phase::kOptional ? detail::ReadyIndex::kNrtq
                                         : detail::ReadyIndex::kRtq;
    }
    ready_index.update(i, band, s.deadline_time);
  }

  bool timer_valid(const detail::TimerEvent& e) const {
    const auto& s = state[static_cast<size_t>(e.task)];
    switch (e.kind) {
      case detail::TimerKind::kRelease:
        return !s.job_live && s.next_release == e.time;
      case detail::TimerKind::kOd:
        return s.od_armed && s.od_time == e.time;
      case detail::TimerKind::kDeadline:
        return s.job_live && s.deadline_time == e.time;
    }
    return false;
  }

  void drain_due(Nanos now) {
    timers.drain_due(now, [&](const detail::TimerEvent& e) {
      switch (e.kind) {
        case detail::TimerKind::kRelease:
          due_release.push_back(e.task);
          break;
        case detail::TimerKind::kOd:
          due_od.push_back(e.task);
          break;
        case detail::TimerKind::kDeadline:
          due_deadline.push_back(e.task);
          break;
      }
    });
  }

  template <typename Fn>
  static void process_bucket(std::vector<TaskId>& bucket, Fn&& fn) {
    std::sort(bucket.begin(), bucket.end());
    TaskId previous = common::kInvalidTask;
    for (TaskId i : bucket) {
      if (i == previous) continue;
      previous = i;
      fn(i);
    }
    bucket.clear();
  }

  void fire_due(Nanos now) {
    due_deadline.clear();
    due_release.clear();
    due_od.clear();
    drain_due(now);
    process_bucket(due_deadline, [&](TaskId i) {
      auto& s = state[static_cast<size_t>(i)];
      if (s.job_live && s.deadline_time <= now) handle_deadline(i, now);
      sync_ready(i);
    });
    drain_due(now);  // deadline aborts free same-instant releases (D = T)
    process_bucket(due_release, [&](TaskId i) {
      auto& s = state[static_cast<size_t>(i)];
      if (s.next_release <= now && !s.job_live) release(i, now);
      sync_ready(i);
    });
    // A release can arm an OD due the same instant (OD = 0 when the
    // wind-up window fills the whole deadline); its entry was pushed
    // after the drain above, so drain once more before the OD pass —
    // mirroring the legacy scan order deadlines -> releases -> ods.
    drain_due(now);
    process_bucket(due_od, [&](TaskId i) {
      auto& s = state[static_cast<size_t>(i)];
      if (s.od_armed && s.od_time <= now) handle_od(i, now);
      sync_ready(i);
    });
  }

  // ---------------------------------------------------------------------

  void run() {
    const int m = options.num_processors;
    indexed = options.engine == SimEngine::kIndexed;
    Nanos now = 0;
    for (TaskId i = 0; i < tasks.size(); ++i) {
      state[static_cast<size_t>(i)].next_release = 0;  // synchronous
    }
    if (indexed) {
      ready_index.init(options.algorithm == SimAlgorithm::kEdf,
                       priority_rank);
      timers.reserve(4 * static_cast<size_t>(tasks.size()));
      for (TaskId i = 0; i < tasks.size(); ++i) {
        timers.push(0, i, detail::TimerKind::kRelease);
      }
    }
    // processor_of_running[p] = task running there, or kInvalidTask.
    std::vector<TaskId> proc_task(static_cast<size_t>(m),
                                  common::kInvalidTask);
    std::vector<TaskId> ready;
    selected_stamp.assign(static_cast<size_t>(tasks.size()), 0);

    while (now < options.horizon) {
      if (indexed) {
        fire_due(now);
      } else {
        for (TaskId i = 0; i < tasks.size(); ++i) {
          if (state[static_cast<size_t>(i)].job_live &&
              state[static_cast<size_t>(i)].deadline_time <= now) {
            handle_deadline(i, now);
          }
        }
        for (TaskId i = 0; i < tasks.size(); ++i) {
          auto& s = state[static_cast<size_t>(i)];
          if (s.next_release <= now && !s.job_live) release(i, now);
        }
        for (TaskId i = 0; i < tasks.size(); ++i) {
          auto& s = state[static_cast<size_t>(i)];
          if (s.od_armed && s.od_time <= now) handle_od(i, now);
        }
      }

      // Dispatch: the m highest-priority ready tasks.  The indexed engine
      // reads them straight out of the per-band ready structures; the
      // legacy engine gathers and fully sorts the ready set (the top-m
      // prefix of that sort is exactly what the index returns).
      if (indexed) {
        ready_index.top_m(m, ready);
      } else {
        ready.clear();
        for (TaskId i = 0; i < tasks.size(); ++i) {
          if (is_ready(i)) ready.push_back(i);
        }
        std::sort(ready.begin(), ready.end(), [this](TaskId a, TaskId b) {
          return higher_priority(a, b);
        });
        if (static_cast<int>(ready.size()) > m) {
          ready.resize(static_cast<size_t>(m));
        }
      }

      // Processor assignment: keep a selected task on its previous
      // processor when free; others take free processors (a migration if
      // they ran elsewhere before).  Preemption: a previously running,
      // still-ready task no longer selected.
      ++select_stamp;
      for (TaskId i : ready) {
        selected_stamp[static_cast<size_t>(i)] = select_stamp;
      }
      const auto selected = [&](TaskId i) {
        return selected_stamp[static_cast<size_t>(i)] == select_stamp;
      };
      for (int p = 0; p < m; ++p) {
        const TaskId prev = proc_task[static_cast<size_t>(p)];
        if (prev != common::kInvalidTask && !selected(prev)) {
          if (is_ready(prev)) ++result.preemptions;
          proc_task[static_cast<size_t>(p)] = common::kInvalidTask;
        }
      }
      // Affinity-aware assignment (what real global schedulers do):
      // first give every selected task its previous processor when free,
      // then place the remainder on whatever is left — only those
      // placements are migrations.
      for (TaskId i : ready) {
        auto& s = state[static_cast<size_t>(i)];
        if (s.last_processor >= 0 &&
            proc_task[static_cast<size_t>(s.last_processor)] ==
                common::kInvalidTask) {
          proc_task[static_cast<size_t>(s.last_processor)] = i;
        }
      }
      for (TaskId i : ready) {
        auto& s = state[static_cast<size_t>(i)];
        if (s.last_processor >= 0 &&
            proc_task[static_cast<size_t>(s.last_processor)] == i) {
          continue;  // kept (or regained) its processor
        }
        int chosen = -1;
        for (int p = 0; p < m; ++p) {
          if (proc_task[static_cast<size_t>(p)] == common::kInvalidTask) {
            chosen = p;
            break;
          }
        }
        assert(chosen >= 0);
        proc_task[static_cast<size_t>(chosen)] = i;
        // Only mandatory/wind-up parts migrate: the model pins optional
        // parts to their processor (§II-A: "do not migrate among
        // processors during execution").
        if (s.phase != Phase::kOptional && s.last_processor >= 0 &&
            s.last_processor != chosen) {
          ++result.migrations;
          s.remaining += options.migration_overhead;
        }
        s.last_processor = chosen;
      }
      for (TaskId i : ready) {
        state[static_cast<size_t>(i)].was_running = true;
      }

      // Next boundary.
      Nanos next_event = options.horizon;
      if (indexed) {
        next_event = std::min(
            next_event, timers.peek_valid([this](const detail::TimerEvent& e) {
              return timer_valid(e);
            }));
      } else {
        for (TaskId i = 0; i < tasks.size(); ++i) {
          const auto& s = state[static_cast<size_t>(i)];
          if (!s.job_live) next_event = std::min(next_event, s.next_release);
          if (s.od_armed) next_event = std::min(next_event, s.od_time);
          if (s.job_live && s.deadline_time < kInfinity) {
            next_event = std::min(next_event, s.deadline_time);
          }
        }
      }
      if (ready.empty()) {
        now = next_event > now ? next_event : now + 1;
        continue;
      }
      Nanos slice = next_event - now;
      for (TaskId i : ready) {
        slice = std::min(slice, state[static_cast<size_t>(i)].remaining);
      }
      if (slice <= 0) {
        now = now + 1;
        continue;
      }
      now += slice;
      for (TaskId i : ready) {
        auto& s = state[static_cast<size_t>(i)];
        s.remaining -= slice;
        if (s.remaining == 0) {
          // Free the processor before the task changes phase.
          if (s.last_processor >= 0 &&
              proc_task[static_cast<size_t>(s.last_processor)] == i) {
            proc_task[static_cast<size_t>(s.last_processor)] =
                common::kInvalidTask;
          }
          complete_part(i, now);
          sync_ready(i);
        }
      }
    }
  }
};

}  // namespace

GlobalSimResult simulate_global(const sched::TaskSet& tasks,
                                const GlobalSimOptions& options) {
  GlobalSimulator sim(tasks, options);
  sim.run();
  return std::move(sim.result);
}

}  // namespace rtseed::sim
