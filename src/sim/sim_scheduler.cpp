#include "sim/sim_scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "sched/rm.hpp"
#include "sched/rmwp.hpp"
#include "sched/rta.hpp"
#include "sim/event_index.hpp"

namespace rtseed::sim {

const char* sim_engine_name(SimEngine engine) {
  switch (engine) {
    case SimEngine::kIndexed:
      return "indexed";
    case SimEngine::kLegacy:
      return "legacy";
  }
  return "?";
}

const char* sim_algorithm_name(SimAlgorithm algorithm) {
  switch (algorithm) {
    case SimAlgorithm::kGeneralRm:
      return "general-rm";
    case SimAlgorithm::kRmwp:
      return "rmwp";
    case SimAlgorithm::kEdf:
      return "edf";
  }
  return "?";
}

const char* part_kind_name(PartKind part) {
  switch (part) {
    case PartKind::kWhole:
      return "whole";
    case PartKind::kMandatory:
      return "mandatory";
    case PartKind::kOptional:
      return "optional";
    case PartKind::kWindup:
      return "windup";
  }
  return "?";
}

long SimResult::total_misses() const {
  long misses = 0;
  for (const auto& t : tasks) misses += t.misses;
  return misses;
}

long PartitionedSimResult::total_misses() const {
  long misses = 0;
  for (const auto& r : per_processor) misses += r.total_misses();
  return misses;
}

namespace {

constexpr Nanos kInfinity = std::numeric_limits<Nanos>::max();

enum class Phase {
  kSleeping,        ///< waiting for next release
  kMandatory,       ///< ready/running the mandatory (or whole) part
  kOptional,        ///< ready/running the (aggregated) optional part
  kWaitingWindup,   ///< optional done early; sleeping until OD
  kWindup,          ///< ready/running the wind-up part
};

struct TaskState {
  Phase phase = Phase::kSleeping;
  JobId job = -1;
  Nanos next_release = 0;
  Nanos remaining = 0;       ///< of the current part
  Nanos od_time = kInfinity; ///< this job's absolute optional deadline
  Nanos deadline_time = kInfinity;
  bool od_armed = false;
  bool job_live = false;     ///< released and not yet finished/aborted
};

struct Simulator {
  const sched::TaskSet& tasks;
  const SimOptions& options;
  std::vector<Nanos> ods;           // relative ODs
  std::vector<int> rm_rank;
  std::vector<TaskState> state;
  std::vector<Nanos> total_optional;  // Σ tasks[i].optional, cached
  SimResult result;

  // kIndexed engine state (unused by kLegacy).
  bool indexed = false;
  detail::TimerHeap timers;
  detail::ReadyIndex ready_index;

  obs::TraceBuffer* trace_buffer = nullptr;

  Simulator(const sched::TaskSet& ts, const SimOptions& opts)
      : tasks(ts), options(opts) {
    if (options.telemetry != nullptr) {
      trace_buffer = options.telemetry->register_thread(
          options.telemetry_track);
    }
    const auto n = static_cast<size_t>(tasks.size());
    rm_rank.resize(n);
    const auto ranks = sched::rm_ranks(tasks);
    for (size_t i = 0; i < n; ++i) rm_rank[i] = ranks[i];
    state.assign(n, TaskState{});
    result.tasks.assign(n, SimTaskStats{});
    total_optional.assign(n, 0);
    for (TaskId i = 0; i < tasks.size(); ++i) {
      Nanos total = 0;
      for (Nanos o : tasks[i].optional) total += o;
      total_optional[static_cast<size_t>(i)] = total;
    }

    // Optional deadlines.
    if (!options.optional_deadlines.empty()) {
      ods = options.optional_deadlines;
    } else {
      const auto analysis = sched::analyze_rmwp(tasks);
      ods.resize(n);
      for (TaskId i = 0; i < tasks.size(); ++i) {
        const auto idx = static_cast<size_t>(i);
        Nanos od = analysis.optional_deadline[idx];
        if (od <= 0) {
          // Analysis rejected the set (or diverged): fall back to the
          // single-task formula so the simulation can still run (it will
          // record the misses).
          od = tasks[i].effective_deadline() - tasks[i].windup;
        }
        ods[idx] = od;
      }
    }
    result.optional_deadlines = ods;
  }

  // The native middleware's event schema with virtual timestamps.
  void emit(TaskId i, obs::EventKind kind, Nanos t, common::i32 arg = 0) {
    if (trace_buffer == nullptr) return;
    TaskId global = i;
    const auto idx = static_cast<size_t>(i);
    if (idx < options.telemetry_task_ids.size()) {
      global = options.telemetry_task_ids[idx];
    }
    trace_buffer->emit({static_cast<common::u64>(t), global,
                        state[idx].job, arg, kind});
  }

  void emit_part_slice(TaskId i, Nanos start, Nanos end) {
    if (trace_buffer == nullptr) return;
    obs::EventKind begin = obs::EventKind::kMandatoryBegin;
    switch (current_part_kind(i)) {
      case PartKind::kWhole:
      case PartKind::kMandatory:
        begin = obs::EventKind::kMandatoryBegin;
        break;
      case PartKind::kOptional:
        begin = obs::EventKind::kOptionalBegin;
        break;
      case PartKind::kWindup:
        begin = obs::EventKind::kWindupBegin;
        break;
    }
    emit(i, begin, start);
    emit(i, obs::event_kind_end_of(begin), end);
  }

  // Priority comparison: returns true when a beats b.
  bool higher_priority(TaskId a, TaskId b, Nanos /*now*/) const {
    const auto& sa = state[static_cast<size_t>(a)];
    const auto& sb = state[static_cast<size_t>(b)];
    // Band: mandatory/wind-up (RTQ) above optional (NRTQ).
    const bool a_opt = sa.phase == Phase::kOptional;
    const bool b_opt = sb.phase == Phase::kOptional;
    if (a_opt != b_opt) return b_opt;
    if (options.algorithm == SimAlgorithm::kEdf && !a_opt && !b_opt) {
      if (sa.deadline_time != sb.deadline_time) {
        return sa.deadline_time < sb.deadline_time;
      }
      return a < b;
    }
    const int ra = rm_rank[static_cast<size_t>(a)];
    const int rb = rm_rank[static_cast<size_t>(b)];
    if (ra != rb) return ra < rb;
    return a < b;
  }

  bool is_ready(TaskId i) const {
    const auto& s = state[static_cast<size_t>(i)];
    switch (s.phase) {
      case Phase::kMandatory:
      case Phase::kWindup:
        return s.remaining > 0;
      case Phase::kOptional:
        return options.include_optional && s.remaining > 0;
      default:
        return false;
    }
  }

  void release(TaskId i, Nanos now) {
    auto& s = state[static_cast<size_t>(i)];
    auto& st = result.tasks[static_cast<size_t>(i)];
    const auto& p = tasks[i];
    ++st.released;
    ++s.job;
    s.job_live = true;
    s.deadline_time = now + p.effective_deadline();
    s.od_time = now + ods[static_cast<size_t>(i)];
    s.od_armed = options.algorithm == SimAlgorithm::kRmwp;
    s.phase = Phase::kMandatory;
    s.remaining = options.algorithm == SimAlgorithm::kRmwp
                      ? p.mandatory
                      : p.wcet();  // general RM / EDF run C = m + w whole
    s.remaining += options.release_overhead;
    if (options.algorithm != SimAlgorithm::kRmwp) {
      s.remaining += options.windup_overhead;  // whole-job model
    }
    s.next_release = now + p.period;
    emit(i, obs::EventKind::kJobRelease, now);
    if (indexed) {
      timers.push(s.deadline_time, i, detail::TimerKind::kDeadline);
      if (s.od_armed) timers.push(s.od_time, i, detail::TimerKind::kOd);
    }
    if (s.remaining == 0) complete_part(i, now);  // zero-length mandatory
  }

  void complete_part(TaskId i, Nanos now) {
    auto& s = state[static_cast<size_t>(i)];
    auto& st = result.tasks[static_cast<size_t>(i)];
    const auto& p = tasks[i];
    switch (s.phase) {
      case Phase::kMandatory: {
        if (options.algorithm != SimAlgorithm::kRmwp) {
          finish_job(i, now);
          return;
        }
        if (now < s.od_time) {
          // Mandatory done before OD: optional part may run (NRTQ).
          const Nanos opt = total_optional[static_cast<size_t>(i)];
          if (options.include_optional && opt > 0) {
            s.phase = Phase::kOptional;
            s.remaining = opt;
          } else {
            s.phase = Phase::kWaitingWindup;  // sleep until OD
            s.remaining = 0;
          }
        } else {
          // Mandatory ran past OD: optional discarded, wind-up now.
          st.optional_discarded += std::max(1, p.num_optional());
          emit(i, obs::EventKind::kOptionalsDiscarded, now,
               std::max(1, p.num_optional()));
          s.od_armed = false;
          s.phase = Phase::kWindup;
          s.remaining = p.windup + options.windup_overhead;
          if (s.remaining == 0) finish_job(i, now);  // zero-length wind-up
        }
        break;
      }
      case Phase::kOptional: {
        // Completed the whole optional part before OD.
        st.optional_completed += std::max(1, p.num_optional());
        s.phase = Phase::kWaitingWindup;
        s.remaining = 0;
        break;
      }
      case Phase::kWindup: {
        finish_job(i, now);
        break;
      }
      default:
        assert(false);
    }
  }

  void finish_job(TaskId i, Nanos now) {
    auto& s = state[static_cast<size_t>(i)];
    auto& st = result.tasks[static_cast<size_t>(i)];
    ++st.completed;
    emit(i, obs::EventKind::kJobFinish, now);
    if (now > s.deadline_time) {
      ++st.misses;
      // Same convention as the native middleware: arg = lateness in us.
      emit(i, obs::EventKind::kDeadlineMiss, now,
           static_cast<common::i32>(std::min<Nanos>(
               (now - s.deadline_time) / 1000,
               std::numeric_limits<common::i32>::max())));
    }
    const Nanos response = now - (s.deadline_time -
                                  tasks[i].effective_deadline());
    st.max_response = std::max(st.max_response, response);
    s.job_live = false;
    s.od_armed = false;
    s.phase = Phase::kSleeping;
    s.remaining = 0;
    s.deadline_time = kInfinity;
    s.od_time = kInfinity;
    if (indexed) {
      timers.push(s.next_release, i, detail::TimerKind::kRelease);
    }
  }

  void handle_od(TaskId i, Nanos now) {
    auto& s = state[static_cast<size_t>(i)];
    auto& st = result.tasks[static_cast<size_t>(i)];
    const auto& p = tasks[i];
    s.od_armed = false;
    if (!s.job_live) return;
    switch (s.phase) {
      case Phase::kOptional:
        // Terminated at the optional deadline.
        st.optional_terminated += std::max(1, p.num_optional());
        emit(i, obs::EventKind::kOptionalTerminated, now);
        [[fallthrough]];
      case Phase::kWaitingWindup:
        s.phase = Phase::kWindup;
        s.remaining = p.windup + options.windup_overhead;
        if (s.remaining == 0) finish_job(i, now);  // zero-length wind-up
        break;
      case Phase::kMandatory:
        // Mandatory still running at OD: wind-up follows the mandatory
        // part directly (handled in complete_part); nothing to do here.
        break;
      default:
        break;
    }
  }

  void handle_deadline(TaskId i, Nanos now) {
    auto& s = state[static_cast<size_t>(i)];
    auto& st = result.tasks[static_cast<size_t>(i)];
    if (!s.job_live) return;
    if (now >= s.deadline_time) {
      ++st.misses;
      emit(i, obs::EventKind::kDeadlineMiss, now);
      if (options.abort_at_deadline) {
        s.job_live = false;
        s.phase = Phase::kSleeping;
        s.remaining = 0;
        s.od_armed = false;
        s.deadline_time = kInfinity;
        s.od_time = kInfinity;
        if (indexed) {
          timers.push(s.next_release, i, detail::TimerKind::kRelease);
        }
      } else {
        s.deadline_time = kInfinity;  // count once, let it finish late
      }
    }
  }

  // --- kIndexed engine -------------------------------------------------
  //
  // The indexed engine runs the exact same handlers in the exact same
  // order as the legacy per-step scans; only the *derivation* of (due
  // timers, dispatched task, next boundary) is indexed, so results are
  // bit-identical (asserted by tests/sim/test_engine_equivalence.cpp).

  /// Re-files task i in the ready index after any state change.
  void sync_ready(TaskId i) {
    if (!indexed) return;
    const auto& s = state[static_cast<size_t>(i)];
    int band = detail::ReadyIndex::kNone;
    if (is_ready(i)) {
      band = s.phase == Phase::kOptional ? detail::ReadyIndex::kNrtq
                                         : detail::ReadyIndex::kRtq;
    }
    ready_index.update(i, band, s.deadline_time);
  }

  /// Event validity for lazy heap cleanup: an entry is live only while
  /// the state it was pushed for is still armed at that exact time.
  /// Every re-arm pushes a fresh entry, so discarding stale ones is safe.
  bool timer_valid(const detail::TimerEvent& e) const {
    const auto& s = state[static_cast<size_t>(e.task)];
    switch (e.kind) {
      case detail::TimerKind::kRelease:
        return !s.job_live && s.next_release == e.time;
      case detail::TimerKind::kOd:
        return s.od_armed && s.od_time == e.time;
      case detail::TimerKind::kDeadline:
        return s.job_live && s.deadline_time == e.time;
    }
    return false;
  }

  /// Fires all timers due at `now`, preserving the legacy engine's
  /// ordering: deadlines, then releases, then optional deadlines, each in
  /// ascending task order, with fire conditions re-checked against live
  /// state (the heap only narrows *which* tasks to look at).
  void fire_due(Nanos now) {
    due_deadline.clear();
    due_release.clear();
    due_od.clear();
    drain_due(now);
    process_bucket(due_deadline, [&](TaskId i) {
      auto& s = state[static_cast<size_t>(i)];
      if (s.job_live && s.deadline_time <= now) handle_deadline(i, now);
      sync_ready(i);
    });
    // A deadline abort frees the task for a release at the same instant
    // (D = T); the abort pushed that release entry, so drain again.
    drain_due(now);
    process_bucket(due_release, [&](TaskId i) {
      auto& s = state[static_cast<size_t>(i)];
      if (s.next_release <= now && !s.job_live) release(i, now);
      sync_ready(i);
    });
    // A release can arm an OD due the same instant (OD = 0 when the
    // wind-up window fills the whole deadline); its entry was pushed
    // after the drain above, so drain once more before the OD pass —
    // mirroring the legacy scan order deadlines -> releases -> ods.
    drain_due(now);
    process_bucket(due_od, [&](TaskId i) {
      auto& s = state[static_cast<size_t>(i)];
      if (s.od_armed && s.od_time <= now) handle_od(i, now);
      sync_ready(i);
    });
  }

  void drain_due(Nanos now) {
    timers.drain_due(now, [&](const detail::TimerEvent& e) {
      switch (e.kind) {
        case detail::TimerKind::kRelease:
          due_release.push_back(e.task);
          break;
        case detail::TimerKind::kOd:
          due_od.push_back(e.task);
          break;
        case detail::TimerKind::kDeadline:
          due_deadline.push_back(e.task);
          break;
      }
    });
  }

  template <typename Fn>
  static void process_bucket(std::vector<TaskId>& bucket, Fn&& fn) {
    std::sort(bucket.begin(), bucket.end());
    TaskId previous = common::kInvalidTask;
    for (TaskId i : bucket) {
      if (i == previous) continue;  // duplicate stale entries
      previous = i;
      fn(i);
    }
    bucket.clear();
  }

  std::vector<TaskId> due_deadline, due_release, due_od;

  // ---------------------------------------------------------------------

  PartKind current_part_kind(TaskId i) const {
    const auto& s = state[static_cast<size_t>(i)];
    if (options.algorithm != SimAlgorithm::kRmwp) return PartKind::kWhole;
    switch (s.phase) {
      case Phase::kMandatory:
        return PartKind::kMandatory;
      case Phase::kOptional:
        return PartKind::kOptional;
      case Phase::kWindup:
        return PartKind::kWindup;
      default:
        return PartKind::kWhole;
    }
  }

  void record_slice(TaskId i, Nanos start, Nanos end) {
    if (end <= start) return;
    emit_part_slice(i, start, end);
    if (!options.record_trace) return;
    const auto part = current_part_kind(i);
    // Merge with the previous slice when contiguous (same task/part/job).
    if (!result.trace.empty()) {
      auto& last = result.trace.back();
      if (last.task == i && last.part == part && last.end == start &&
          last.job == state[static_cast<size_t>(i)].job) {
        last.end = end;
        return;
      }
    }
    result.trace.push_back(ExecutionSlice{
        i, state[static_cast<size_t>(i)].job, part, start, end});
  }

  void run() {
    indexed = options.engine == SimEngine::kIndexed;
    Nanos now = 0;
    // Synchronous release (the paper's model): all tasks released at 0.
    for (TaskId i = 0; i < tasks.size(); ++i) {
      state[static_cast<size_t>(i)].next_release = 0;
    }
    if (indexed) {
      ready_index.init(options.algorithm == SimAlgorithm::kEdf, rm_rank);
      timers.reserve(4 * static_cast<size_t>(tasks.size()));
      for (TaskId i = 0; i < tasks.size(); ++i) {
        timers.push(0, i, detail::TimerKind::kRelease);
      }
    }

    while (now < options.horizon) {
      // 1. Fire timer events due at `now`.  Deadline aborts run first so a
      //    job aborted exactly at its deadline (D = T) frees the task for
      //    the release at the same instant; ODs last (they belong to the
      //    job just released only when OD = 0, which validate() forbids).
      if (indexed) {
        fire_due(now);
      } else {
        for (TaskId i = 0; i < tasks.size(); ++i) {
          auto& s = state[static_cast<size_t>(i)];
          if (s.job_live && s.deadline_time <= now) handle_deadline(i, now);
        }
        for (TaskId i = 0; i < tasks.size(); ++i) {
          auto& s = state[static_cast<size_t>(i)];
          if (s.next_release <= now && !s.job_live) release(i, now);
        }
        for (TaskId i = 0; i < tasks.size(); ++i) {
          auto& s = state[static_cast<size_t>(i)];
          if (s.od_armed && s.od_time <= now) handle_od(i, now);
        }
      }

      // 2. Pick the highest-priority ready part.
      TaskId running = common::kInvalidTask;
      if (indexed) {
        running = ready_index.top(common::kInvalidTask);
      } else {
        for (TaskId i = 0; i < tasks.size(); ++i) {
          if (!is_ready(i)) continue;
          if (running == common::kInvalidTask ||
              higher_priority(i, running, now)) {
            running = i;
          }
        }
      }

      // 3. Next timer boundary.
      Nanos next_event = options.horizon;
      if (indexed) {
        next_event = std::min(
            next_event, timers.peek_valid([this](const detail::TimerEvent& e) {
              return timer_valid(e);
            }));
      } else {
        for (TaskId i = 0; i < tasks.size(); ++i) {
          const auto& s = state[static_cast<size_t>(i)];
          if (!s.job_live) next_event = std::min(next_event, s.next_release);
          if (s.od_armed) next_event = std::min(next_event, s.od_time);
          if (s.job_live && s.deadline_time < kInfinity) {
            next_event = std::min(next_event, s.deadline_time);
          }
        }
      }

      if (running == common::kInvalidTask) {
        if (next_event <= now) {
          // Defensive: avoid an infinite loop on a zero-length event.
          now = next_event + 1;
        } else {
          now = next_event;
        }
        continue;
      }

      auto& s = state[static_cast<size_t>(running)];
      const Nanos slice = std::min(s.remaining, next_event - now);
      if (slice <= 0) {
        // A timer is due exactly now; loop back to fire it.
        if (next_event <= now) {
          now = now + 1;
        }
        continue;
      }
      record_slice(running, now, now + slice);
      s.remaining -= slice;
      now += slice;
      if (s.remaining == 0) {
        complete_part(running, now);
        sync_ready(running);
      }
    }
  }
};

}  // namespace

SimResult simulate_uniprocessor(const sched::TaskSet& tasks,
                                const SimOptions& options) {
  Simulator sim(tasks, options);
  sim.run();
  return std::move(sim.result);
}

PartitionedSimResult simulate_partitioned(const sched::TaskSet& tasks,
                                          int num_processors,
                                          const SimOptions& options,
                                          sched::PackingHeuristic heuristic) {
  PartitionedSimResult out;
  sched::AdmissionTest admits;
  switch (options.algorithm) {
    case SimAlgorithm::kRmwp:
      admits = [](const sched::TaskSet& s) { return sched::rmwp_schedulable(s); };
      break;
    case SimAlgorithm::kGeneralRm:
      admits = [](const sched::TaskSet& s) { return sched::rm_schedulable(s); };
      break;
    case SimAlgorithm::kEdf:
      admits = [](const sched::TaskSet& s) {
        return s.total_utilization() <= 1.0 + 1e-12;
      };
      break;
  }

  auto partition =
      partition_tasks(tasks, num_processors, heuristic, admits, true);
  out.partition_feasible = partition.feasible;
  if (!partition.feasible) {
    // Place by worst-fit on utilization only, so misses can be observed.
    partition = partition_tasks(
        tasks, num_processors, sched::PackingHeuristic::kWorstFit,
        [](const sched::TaskSet&) { return true; }, true);
  }
  out.processor_of = partition.processor_of;

  for (int p = 0; p < num_processors; ++p) {
    sched::TaskSet local;
    SimOptions local_options = options;
    local_options.optional_deadlines.clear();  // re-derived per processor
    local_options.telemetry_track =
        options.telemetry_track + ".cpu" + std::to_string(p);
    local_options.telemetry_task_ids.clear();
    for (TaskId i = 0; i < tasks.size(); ++i) {
      if (partition.processor_of[static_cast<size_t>(i)] == p) {
        local.add(tasks[i]);
        local_options.telemetry_task_ids.push_back(i);
      }
    }
    if (local.empty()) {
      out.per_processor.emplace_back();
      continue;
    }
    out.per_processor.push_back(simulate_uniprocessor(local, local_options));
  }
  return out;
}

}  // namespace rtseed::sim
