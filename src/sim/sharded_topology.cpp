#include "sim/sharded_topology.hpp"

#include <algorithm>

#include "sim/sweep.hpp"

namespace rtseed::sim {

long ShardedSimResult::total_released() const {
  long released = 0;
  for (const auto& shard : shards) {
    for (const auto& proc : shard.per_processor) {
      for (const auto& task : proc.tasks) released += task.released;
    }
  }
  return released;
}

long ShardedSimResult::total_misses() const {
  long misses = 0;
  for (const auto& shard : shards) misses += shard.total_misses();
  return misses;
}

double ShardedSimResult::miss_rate() const {
  const long released = total_released();
  if (released <= 0) return 0.0;
  return static_cast<double>(total_misses()) / static_cast<double>(released);
}

ShardedSimResult simulate_sharded(
    const std::vector<sched::SymbolTaskSet>& groups,
    const std::vector<int>& shard_cores, const ShardedSimOptions& options) {
  ShardedSimResult result;
  result.plan = sched::plan_sharded(groups, shard_cores, options.admission);
  const int num_shards = static_cast<int>(shard_cores.size());
  result.shards.resize(static_cast<std::size_t>(std::max(num_shards, 0)));

  // The planner's shard_tasks already hold each shard's union set; the
  // hop shows up as extra mandatory work on every task of a spilled
  // group (the router's forward precedes the mandatory computation and
  // consumes the same window).
  std::vector<sched::TaskSet> shard_tasks = result.plan.shard_tasks;
  if (options.hop_latency > 0) {
    for (std::size_t g = 0; g < result.plan.groups.size(); ++g) {
      const auto& placement = result.plan.groups[g];
      if (!placement.spilled || placement.shard < 0) continue;
      auto& tasks = shard_tasks[static_cast<std::size_t>(placement.shard)];
      for (const sched::TaskId id : placement.local_task_ids) {
        tasks[id].mandatory += options.hop_latency;
      }
    }
  }

  for (int s = 0; s < num_shards; ++s) {
    const auto& tasks = shard_tasks[static_cast<std::size_t>(s)];
    if (tasks.empty()) continue;  // dormant shard: nothing to simulate
    result.shards[static_cast<std::size_t>(s)] = simulate_partitioned(
        tasks, shard_cores[static_cast<std::size_t>(s)], options.per_shard,
        options.heuristic);
  }
  return result;
}

// ---------------------------------------------------------------------------
// Shard-count sweeps

namespace {

std::vector<int> contiguous_cut(int total_cores, int num_shards) {
  std::vector<int> cores(static_cast<std::size_t>(num_shards),
                         total_cores / num_shards);
  for (int s = 0; s < total_cores % num_shards; ++s) {
    ++cores[static_cast<std::size_t>(s)];
  }
  return cores;
}

}  // namespace

std::vector<ShardSweepPoint> sweep_shards(
    const std::vector<sched::SymbolTaskSet>& groups, int total_cores,
    int max_shards, const ShardedSimOptions& options) {
  const int limit = std::min(max_shards, total_cores);
  if (limit <= 0 || total_cores <= 0) return {};

  SweepRunner runner;
  return runner.map(static_cast<std::size_t>(limit), [&](std::size_t cell) {
    const int shards = static_cast<int>(cell) + 1;
    ShardSweepPoint point;
    point.shards = shards;
    const auto sim =
        simulate_sharded(groups, contiguous_cut(total_cores, shards), options);
    point.feasible = sim.plan.feasible;
    point.spills = sim.plan.spill_count;
    point.released = sim.total_released();
    point.misses = sim.total_misses();
    point.miss_rate = sim.miss_rate();
    return point;
  });
}

int min_shards_for(const std::vector<ShardSweepPoint>& sweep,
                   double max_miss_rate) {
  for (const auto& point : sweep) {
    if (point.feasible && point.miss_rate <= max_miss_rate) {
      return point.shards;
    }
  }
  return -1;
}

// ---------------------------------------------------------------------------
// Pipeline-saturation throughput model

double modeled_throughput(const PipelineModel& model, int num_shards) {
  if (num_shards <= 0 || model.tick_service <= 0) return 0.0;
  const double hop = num_shards > 1 ? model.spill_fraction *
                                          static_cast<double>(model.hop_latency)
                                    : 0.0;
  const double service = static_cast<double>(model.tick_service) + hop;
  double ticks_per_ns = static_cast<double>(num_shards) / service;
  if (model.router_dispatch > 0) {
    ticks_per_ns = std::min(
        ticks_per_ns, 1.0 / static_cast<double>(model.router_dispatch));
  }
  return ticks_per_ns * 1e9;
}

double modeled_speedup(const PipelineModel& model, int num_shards) {
  const double base = modeled_throughput(model, 1);
  if (base <= 0.0) return 0.0;
  return modeled_throughput(model, num_shards) / base;
}

}  // namespace rtseed::sim
