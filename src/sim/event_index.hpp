// Event-indexed simulation primitives shared by SimScheduler and
// GlobalScheduler's kIndexed engines.
//
//  * TimerHeap — a lazy min-heap of pending timer events (job release,
//    optional deadline, deadline).  Entries are pushed whenever the
//    corresponding task state is (re)armed and validated lazily against
//    the current state on pop, so stale entries cost one pop instead of a
//    per-step O(n) rescan.  The earliest *valid* entry is exactly the
//    "next timer boundary" the legacy engine derives by scanning every
//    task.
//  * ReadyIndex — per-band ready structures: the RTQ band (mandatory /
//    wind-up parts) and the NRTQ band (optional parts) as priority-rank
//    bitmaps, or an ordered (deadline, id) set for the EDF RTQ.  top()
//    and top_m() return the same tasks, in the same order, as sorting the
//    whole ready set under the simulators' higher_priority() total order.
#pragma once

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>
#include <set>
#include <utility>
#include <vector>

#include "common/time.hpp"
#include "common/types.hpp"

namespace rtseed::sim::detail {

using common::Nanos;
using common::TaskId;

enum class TimerKind : unsigned char { kRelease, kOd, kDeadline };

struct TimerEvent {
  Nanos time = 0;
  TaskId task = 0;
  TimerKind kind = TimerKind::kRelease;
};

class TimerHeap {
 public:
  void reserve(std::size_t n) { heap_.reserve(n); }

  void push(Nanos time, TaskId task, TimerKind kind) {
    heap_.push_back({time, task, kind});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }

  /// Earliest valid entry's time; +infinity when none.  `valid(event)`
  /// checks the event against current task state; invalid entries are
  /// discarded (a fresh entry is pushed whenever the state is re-armed,
  /// so discarding can never lose a live timer).
  template <typename Valid>
  Nanos peek_valid(Valid&& valid) {
    while (!heap_.empty()) {
      if (valid(heap_.front())) return heap_.front().time;
      pop();
    }
    return std::numeric_limits<Nanos>::max();
  }

  /// Pops every entry with time <= now into sink(event), validity
  /// unchecked (callers re-check fire conditions against live state,
  /// mirroring the legacy engine's scans).
  template <typename Sink>
  void drain_due(Nanos now, Sink&& sink) {
    while (!heap_.empty() && heap_.front().time <= now) {
      sink(heap_.front());
      pop();
    }
  }

 private:
  struct Later {
    bool operator()(const TimerEvent& a, const TimerEvent& b) const {
      return a.time > b.time;
    }
  };

  void pop() {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }

  std::vector<TimerEvent> heap_;
};

class ReadyIndex {
 public:
  static constexpr int kNone = 0;  ///< not ready
  static constexpr int kRtq = 1;   ///< mandatory / wind-up band
  static constexpr int kNrtq = 2;  ///< optional band

  /// `rank_of[i]` must be a permutation of 0..n-1 (0 = highest priority).
  /// With `edf` set the RTQ band orders by (key, id) instead of rank.
  void init(bool edf, const std::vector<int>& rank_of) {
    edf_ = edf;
    rank_of_ = rank_of;
    const std::size_t n = rank_of.size();
    task_at_rank_.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      task_at_rank_[static_cast<std::size_t>(rank_of[i])] =
          static_cast<TaskId>(i);
    }
    rtq_.assign((n + 63) / 64, 0);
    nrtq_.assign((n + 63) / 64, 0);
    band_of_.assign(n, kNone);
    key_of_.assign(n, 0);
    edf_rtq_.clear();
  }

  /// Moves `task` to `band` (kNone removes it).  `key` orders the EDF RTQ
  /// band; a key change while staying in the band reorders the entry.
  void update(TaskId task, int band, Nanos key) {
    const auto idx = static_cast<std::size_t>(task);
    const int rank = rank_of_[idx];
    if (band_of_[idx] == band) {
      if (edf_ && band == kRtq && key_of_[idx] != key) {
        edf_rtq_.erase({key_of_[idx], task});
        key_of_[idx] = key;
        edf_rtq_.insert({key, task});
      }
      return;
    }
    switch (band_of_[idx]) {
      case kRtq:
        if (edf_) {
          edf_rtq_.erase({key_of_[idx], task});
        } else {
          clear_bit(rtq_, rank);
        }
        break;
      case kNrtq:
        clear_bit(nrtq_, rank);
        break;
      default:
        break;
    }
    switch (band) {
      case kRtq:
        if (edf_) {
          key_of_[idx] = key;
          edf_rtq_.insert({key, task});
        } else {
          set_bit(rtq_, rank);
        }
        break;
      case kNrtq:
        set_bit(nrtq_, rank);
        break;
      default:
        break;
    }
    band_of_[idx] = band;
  }

  /// Highest-priority ready task (RTQ band first), or `invalid`.
  TaskId top(TaskId invalid) const {
    if (edf_) {
      if (!edf_rtq_.empty()) return edf_rtq_.begin()->second;
    } else {
      const int rank = first_bit(rtq_);
      if (rank >= 0) return task_at_rank_[static_cast<std::size_t>(rank)];
    }
    const int rank = first_bit(nrtq_);
    if (rank >= 0) return task_at_rank_[static_cast<std::size_t>(rank)];
    return invalid;
  }

  /// Appends the up-to-m highest-priority ready tasks to `out` in
  /// priority order — the prefix a full sort of the ready set under the
  /// band-then-rank (or band-then-deadline) order would produce.
  void top_m(int m, std::vector<TaskId>& out) const {
    out.clear();
    if (m <= 0) return;
    if (edf_) {
      for (const auto& [key, task] : edf_rtq_) {
        out.push_back(task);
        if (static_cast<int>(out.size()) == m) return;
      }
    } else {
      collect_bits(rtq_, m, out);
      if (static_cast<int>(out.size()) == m) return;
    }
    collect_bits(nrtq_, m, out);
  }

 private:
  static void set_bit(std::vector<common::u64>& words, int rank) {
    words[static_cast<std::size_t>(rank) / 64] |=
        common::u64{1} << (static_cast<std::size_t>(rank) % 64);
  }

  static void clear_bit(std::vector<common::u64>& words, int rank) {
    words[static_cast<std::size_t>(rank) / 64] &=
        ~(common::u64{1} << (static_cast<std::size_t>(rank) % 64));
  }

  static int first_bit(const std::vector<common::u64>& words) {
    for (std::size_t w = 0; w < words.size(); ++w) {
      if (words[w] != 0) {
        return static_cast<int>(w * 64) + std::countr_zero(words[w]);
      }
    }
    return -1;
  }

  void collect_bits(const std::vector<common::u64>& words, int m,
                    std::vector<TaskId>& out) const {
    for (std::size_t w = 0; w < words.size(); ++w) {
      common::u64 bits = words[w];
      while (bits != 0) {
        const int rank =
            static_cast<int>(w * 64) + std::countr_zero(bits);
        out.push_back(task_at_rank_[static_cast<std::size_t>(rank)]);
        if (static_cast<int>(out.size()) == m) return;
        bits &= bits - 1;
      }
    }
  }

  bool edf_ = false;
  std::vector<int> rank_of_;
  std::vector<TaskId> task_at_rank_;
  std::vector<common::u64> rtq_, nrtq_;
  std::set<std::pair<Nanos, TaskId>> edf_rtq_;
  std::vector<signed char> band_of_;
  std::vector<Nanos> key_of_;
};

}  // namespace rtseed::sim::detail
