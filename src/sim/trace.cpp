#include "sim/trace.hpp"

#include <algorithm>

namespace rtseed::sim {

std::vector<TracePoint> remaining_execution_curve(const SimResult& result,
                                                  const sched::TaskSet& tasks,
                                                  TaskId task,
                                                  SimAlgorithm algorithm,
                                                  Nanos horizon) {
  const auto& params = tasks[task];
  std::vector<TracePoint> curve;
  const Nanos period = params.period;
  const Nanos od = result.optional_deadlines.empty()
                       ? params.effective_deadline() - params.windup
                       : result.optional_deadlines[static_cast<size_t>(task)];

  // Walk jobs by release time; within each job, walk the task's slices.
  for (Nanos release = 0; release < horizon; release += period) {
    const Nanos job_end = std::min(release + period, horizon);

    auto emit = [&](Nanos t, Nanos r) {
      if (!curve.empty() && curve.back().time == t &&
          curve.back().remaining == r) {
        return;
      }
      curve.push_back(TracePoint{t, r});
    };

    if (algorithm != SimAlgorithm::kRmwp) {
      Nanos remaining = params.wcet();
      emit(release, 0);  // vertical rise at release
      emit(release, remaining);
      for (const auto& slice : result.trace) {
        if (slice.task != task || slice.end <= release ||
            slice.start >= job_end) {
          continue;
        }
        emit(slice.start, remaining);
        remaining -= slice.end - slice.start;
        emit(slice.end, std::max<Nanos>(remaining, 0));
      }
      continue;
    }

    // Semi-fixed: mandatory segment, then wind-up released at OD.
    Nanos remaining = params.mandatory;
    emit(release, 0);
    emit(release, remaining);
    bool windup_set = false;
    for (const auto& slice : result.trace) {
      if (slice.task != task || slice.end <= release ||
          slice.start >= job_end) {
        continue;
      }
      if (slice.part == PartKind::kOptional) continue;  // not real-time work
      if (slice.part == PartKind::kWindup && !windup_set) {
        // Rᵢ jumps to wᵢ at the wind-up release (the OD, or mandatory
        // completion when the mandatory part overran the OD).
        const Nanos windup_release = std::max(release + od, slice.start);
        emit(std::min(windup_release, slice.start), remaining);
        remaining = params.windup;
        emit(std::min(windup_release, slice.start), remaining);
        windup_set = true;
      }
      emit(slice.start, remaining);
      remaining -= slice.end - slice.start;
      emit(slice.end, std::max<Nanos>(remaining, 0));
    }
  }
  return curve;
}

}  // namespace rtseed::sim
