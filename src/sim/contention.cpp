#include "sim/contention.hpp"

namespace rtseed::sim {

const char* load_kind_name(LoadKind load) {
  switch (load) {
    case LoadKind::kNone:
      return "no-load";
    case LoadKind::kCpu:
      return "cpu-load";
    case LoadKind::kCpuMemory:
      return "cpu-memory-load";
  }
  return "?";
}

const char* operation_kind_name(OperationKind op) {
  switch (op) {
    case OperationKind::kBeginMandatory:
      return "begin-mandatory";
    case OperationKind::kSignal:
      return "signal-optional";
    case OperationKind::kSwitch:
      return "switch-to-optional";
    case OperationKind::kEndOptional:
      return "end-optional";
  }
  return "?";
}

double base_cost_us(const ContentionParams& params, OperationKind op) {
  switch (op) {
    case OperationKind::kBeginMandatory:
      return params.base_begin_mandatory_us;
    case OperationKind::kSignal:
      return params.base_signal_us;
    case OperationKind::kSwitch:
      return params.base_switch_us;
    case OperationKind::kEndOptional:
      return params.base_end_optional_us;
  }
  return 0.0;
}

double load_multiplier(const ContentionParams& params, OperationKind op,
                       LoadKind load) {
  const auto i = static_cast<int>(load);
  switch (op) {
    case OperationKind::kBeginMandatory:
      return params.begin_mandatory_load[i];
    case OperationKind::kSignal:
      return params.signal_load[i];
    case OperationKind::kSwitch:
      return params.switch_load[i];
    case OperationKind::kEndOptional:
      return params.end_optional_load[i];
  }
  return 1.0;
}

}  // namespace rtseed::sim
