// Global multiprocessor scheduling simulation — G-RMWP and global RM/EDF.
//
// The paper rejects global scheduling for middleware (§IV-B): "(i) global
// scheduling, such as in G-RMWP, allows tasks to migrate among processors,
// resulting in high overheads, and (ii) middleware-level global scheduling
// is unsuitable [because the OS hides fine-grained control]".  This
// simulator makes argument (i) quantitative: it schedules the M
// highest-priority ready parts across M processors, counts migrations and
// preemptions, and can charge a configurable per-migration overhead to
// the migrating job — the knob the ablation bench sweeps to show where
// G-RMWP's theoretical schedulability advantage is eaten by migration
// cost.
#pragma once

#include "sim/sim_scheduler.hpp"

namespace rtseed::sim {

struct GlobalSimOptions {
  SimAlgorithm algorithm = SimAlgorithm::kRmwp;  ///< kRmwp = G-RMWP
  SimEngine engine = SimEngine::kIndexed;        ///< see sim_scheduler.hpp
  Nanos horizon = common::seconds(10);
  int num_processors = 4;
  bool include_optional = true;
  bool abort_at_deadline = true;
  /// Added to the migrating job's remaining execution on every migration
  /// (cache reload / cross-core wakeup cost).
  Nanos migration_overhead = 0;
  /// Use RM-US[M/(3M−2)] priority order instead of plain RM (paper
  /// footnote 1: heavy tasks get the HPQ priority).
  bool rmus_priorities = false;
  std::vector<Nanos> optional_deadlines;  ///< empty = derive as in RMWP
};

struct GlobalSimResult {
  std::vector<SimTaskStats> tasks;
  std::vector<Nanos> optional_deadlines;
  long migrations = 0;   ///< task resumed on a different processor
  long preemptions = 0;  ///< running part displaced by a higher-priority one

  long total_misses() const;
  bool any_miss() const { return total_misses() > 0; }
};

GlobalSimResult simulate_global(const sched::TaskSet& tasks,
                                const GlobalSimOptions& options);

}  // namespace rtseed::sim
