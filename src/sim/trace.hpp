// Remaining-execution-time curves (the paper's Fig. 3) reconstructed from
// execution slices.
//
// Fig. 3 plots Rᵢ(t), the remaining *real-time* execution of task τᵢ:
//  * general scheduling: Rᵢ is set to mᵢ+wᵢ at release and decreases while
//    the (whole) job executes;
//  * semi-fixed-priority scheduling: Rᵢ is set to mᵢ at release, reaches 0
//    at mandatory completion, the task sleeps (optional part is not
//    real-time execution), and Rᵢ is set to wᵢ at the optional deadline.
#pragma once

#include <vector>

#include "sim/sim_scheduler.hpp"

namespace rtseed::sim {

struct TracePoint {
  Nanos time = 0;
  Nanos remaining = 0;
};

/// Builds the Rᵢ(t) polyline of `task` over [0, horizon] from a simulation
/// trace.  Points are emitted at every discontinuity and slope change, so
/// connecting them with straight lines reproduces the figure.
std::vector<TracePoint> remaining_execution_curve(
    const SimResult& result, const sched::TaskSet& tasks, TaskId task,
    SimAlgorithm algorithm, Nanos horizon);

}  // namespace rtseed::sim
