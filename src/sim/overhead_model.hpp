// Calibrated overhead model of RT-Seed on a many-core machine.
//
// This regenerates the paper's Figs. 10–13 at full Xeon Phi scale
// (np up to 228) on hosts that do not have 228 hardware threads.  It is a
// *mechanistic* model, not a curve fit: each Δ is composed from the same
// O(npᵢ) operation sequence the middleware executes (one cond_signal per
// part, one timer interrupt + context restore + completion signal per
// part, ...), with per-operation costs scaled by the load and SMT
// contention rules in contention.hpp.  Magnitudes are calibrated to the
// paper's reported ranges; shapes follow from the mechanism.
#pragma once

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/assignment.hpp"
#include "rt/topology.hpp"
#include "sim/contention.hpp"

namespace rtseed::sim {

enum class OverheadKind {
  kBeginMandatory,  ///< Δm (Fig. 10)
  kSwitch,          ///< Δs (Fig. 11)
  kBeginOptional,   ///< Δb (Fig. 12)
  kEndOptional,     ///< Δe (Fig. 13)
};

const char* overhead_kind_name(OverheadKind kind);

struct OverheadScenario {
  rt::Topology topology = rt::Topology::xeon_phi_3120a();
  core::AssignmentPolicy policy = core::AssignmentPolicy::kOneByOne;
  LoadKind load = LoadKind::kNone;
  int num_optional_parts = 4;
  int num_tasks = 1;  ///< Δm scales with the task count (paper §V-B)
};

class OverheadModel {
 public:
  explicit OverheadModel(ContentionParams params = {}) : params_(params) {}

  /// One job's overhead sample in microseconds (deterministic in rng).
  double sample_us(OverheadKind kind, const OverheadScenario& scenario,
                   common::Rng& rng) const;

  /// Mean over `jobs` jobs (the paper reports 100-job measurements).
  common::Summary measure_us(OverheadKind kind,
                             const OverheadScenario& scenario, int jobs,
                             common::Rng& rng) const;

  const ContentionParams& params() const { return params_; }

 private:
  double noise(common::Rng& rng) const;

  /// Per-part SMT contention factor for ending part `j`.
  double end_contention_factor(const OverheadScenario& scenario,
                               int part_index) const;

  ContentionParams params_;
};

}  // namespace rtseed::sim
