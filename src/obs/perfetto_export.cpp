#include "obs/perfetto_export.hpp"

#include <algorithm>
#include <fstream>
#include <limits>

#include "obs/chrome_trace.hpp"
#include "rt/tsc.hpp"

namespace rtseed::obs {

double event_timestamp_micros(ClockDomain clock, common::u64 raw,
                              common::u64 anchor) {
  const common::u64 delta = raw >= anchor ? raw - anchor : 0;
  if (clock == ClockDomain::kTsc) {
    return common::to_micros(rt::cycles_to_nanos(delta));
  }
  return static_cast<double>(delta) / 1000.0;  // nanoseconds -> us
}

namespace {

std::string slice_name(const TelemetrySnapshot& snap, const TraceEvent& ev) {
  const std::string task = snap.task_name(ev.task);
  switch (ev.kind) {
    case EventKind::kMandatoryBegin:
      return task + "/mandatory";
    case EventKind::kSignalBegin:
      return task + "/signal-optionals";
    case EventKind::kOptionalBegin:
      return task + "/optional" + std::to_string(ev.arg);
    case EventKind::kWindupBegin:
      return task + "/wind-up";
    default:
      return task + "/" + event_kind_name(ev.kind);
  }
}

}  // namespace

std::string render_perfetto_trace(const TelemetrySnapshot& snapshot) {
  ChromeTraceBuilder builder;
  builder.set_process_name(1, "rtseed");

  common::u64 anchor = std::numeric_limits<common::u64>::max();
  for (const auto& thread : snapshot.threads) {
    for (const auto& ev : thread.events) {
      anchor = std::min(anchor, ev.timestamp);
    }
  }
  if (anchor == std::numeric_limits<common::u64>::max()) anchor = 0;
  auto us = [&](common::u64 t) {
    return event_timestamp_micros(snapshot.clock, t, anchor);
  };

  int tid = 0;
  for (const auto& thread : snapshot.threads) {
    ++tid;
    std::string label = thread.name;
    if (thread.cpu != common::kInvalidCpu) {
      label += " (cpu" + std::to_string(thread.cpu) + ")";
    }
    builder.set_thread_name(1, tid, label);

    // Pair begin/end events into slices.  Each thread runs one part at a
    // time, so one open slice per begin kind suffices; kOptionalBegin
    // closes on either kOptionalEnd or kOptionalTerminated.
    struct Open {
      bool active = false;
      TraceEvent begin;
    };
    Open open[kNumEventKinds] = {};
    common::u64 last_ts = anchor;

    auto close = [&](EventKind begin_kind, common::u64 end_ts) {
      auto& slot = open[static_cast<int>(begin_kind)];
      if (!slot.active) return false;
      slot.active = false;
      builder.add_complete(slice_name(snapshot, slot.begin), 1, tid,
                           us(slot.begin.timestamp),
                           us(end_ts) - us(slot.begin.timestamp));
      return true;
    };

    for (const auto& ev : thread.events) {
      last_ts = std::max(last_ts, ev.timestamp);
      if (event_kind_is_begin(ev.kind)) {
        // A begin while the same kind is open means a lost end event
        // (ring overflow): close the stale slice at this timestamp.
        close(ev.kind, ev.timestamp);
        open[static_cast<int>(ev.kind)] = {true, ev};
        continue;
      }
      switch (ev.kind) {
        case EventKind::kMandatoryEnd:
          close(EventKind::kMandatoryBegin, ev.timestamp);
          break;
        case EventKind::kSignalEnd:
          close(EventKind::kSignalBegin, ev.timestamp);
          break;
        case EventKind::kOptionalEnd:
          close(EventKind::kOptionalBegin, ev.timestamp);
          break;
        case EventKind::kOptionalTerminated:
          close(EventKind::kOptionalBegin, ev.timestamp);
          builder.add_instant(snapshot.task_name(ev.task) + "/optional" +
                                  std::to_string(ev.arg) + "/terminated",
                              1, tid, us(ev.timestamp));
          break;
        case EventKind::kWindupEnd:
          close(EventKind::kWindupBegin, ev.timestamp);
          break;
        case EventKind::kDeadlineMiss:
          builder.add_instant(
              snapshot.task_name(ev.task) + "/DEADLINE-MISS", 1, tid,
              us(ev.timestamp));
          break;
        case EventKind::kJobRelease:
        case EventKind::kOptionalsDiscarded:
        case EventKind::kJobFinish:
        case EventKind::kBudgetOverrun:
        case EventKind::kBreakerTrip:
        case EventKind::kBreakerProbe:
        case EventKind::kBreakerRestore:
        case EventKind::kOptionalShed:
        case EventKind::kSupervisorStall:
        case EventKind::kSupervisorKill:
        case EventKind::kSupervisorRespawn:
        case EventKind::kWakeRetry:
        case EventKind::kClockAnomaly:
          builder.add_instant(snapshot.task_name(ev.task) + "/" +
                                  event_kind_name(ev.kind),
                              1, tid, us(ev.timestamp));
          break;
        case EventKind::kRuntimeStart:
        case EventKind::kRuntimeStop:
          builder.add_instant(event_kind_name(ev.kind), 1, tid,
                              us(ev.timestamp));
          break;
        default:
          break;
      }
    }
    // Close anything still open (e.g. a part terminated by shutdown).
    for (int k = 0; k < kNumEventKinds; ++k) {
      close(static_cast<EventKind>(k), last_ts);
    }
  }
  return builder.render();
}

common::Status write_perfetto_trace(const std::string& path,
                                    const TelemetrySnapshot& snapshot) {
  std::ofstream out(path);
  if (!out) return common::unavailable("cannot open " + path);
  out << render_perfetto_trace(snapshot);
  return out.good() ? common::Status::ok()
                    : common::unavailable("write failed: " + path);
}

}  // namespace rtseed::obs
