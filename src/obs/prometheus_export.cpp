#include "obs/prometheus_export.hpp"

#include <cstdio>
#include <fstream>
#include <set>

namespace rtseed::obs {

std::string prometheus_escape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

namespace {

std::string format_value(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

std::string label_block(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + prometheus_escape(v) + "\"";
  }
  out += "}";
  return out;
}

void render_histogram(std::string& out, const MetricsRegistry::Entry& entry) {
  const auto* h = entry.histogram;
  // Cumulative buckets.  Out-of-range samples must stay visible: the
  // lowest bucket (le = lo) carries exactly the underflow count, and
  // everything at or above hi appears in the +Inf bucket (its count
  // exceeds the last linear bucket by the overflow count).
  {
    Labels labels = entry.labels;
    labels.emplace_back("le", format_value(h->bucket_lo(0)));
    out += entry.name + "_bucket" + label_block(labels) + " " +
           std::to_string(h->underflow()) + "\n";
  }
  common::u64 cumulative = h->underflow();
  for (common::usize i = 0; i < h->bucket_count(); ++i) {
    cumulative += h->bucket(i);
    Labels labels = entry.labels;
    labels.emplace_back("le", format_value(h->bucket_hi(i)));
    out += entry.name + "_bucket" + label_block(labels) + " " +
           std::to_string(cumulative) + "\n";
  }
  Labels inf_labels = entry.labels;
  inf_labels.emplace_back("le", "+Inf");
  out += entry.name + "_bucket" + label_block(inf_labels) + " " +
         std::to_string(h->count()) + "\n";
  out += entry.name + "_sum" + label_block(entry.labels) + " " +
         format_value(h->sum()) + "\n";
  out += entry.name + "_count" + label_block(entry.labels) + " " +
         std::to_string(h->count()) + "\n";
}

// Log-bucketed tail histogram: only non-empty buckets get an le entry
// (the full geometry is ~2k buckets), which is valid Prometheus — the
// cumulative counts stay monotone over any le subset.
void render_hdr_histogram(std::string& out,
                          const MetricsRegistry::Entry& entry) {
  const auto* h = entry.hdr;
  const common::usize end = h->highest_bucket();
  common::u64 cumulative = 0;
  for (common::usize i = 0; i < end; ++i) {
    const common::u64 n = h->bucket(i);
    if (n == 0) continue;
    cumulative += n;
    Labels labels = entry.labels;
    labels.emplace_back(
        "le", std::to_string(HdrHistogram::bucket_hi(i) - 1));
    out += entry.name + "_bucket" + label_block(labels) + " " +
           std::to_string(cumulative) + "\n";
  }
  Labels inf_labels = entry.labels;
  inf_labels.emplace_back("le", "+Inf");
  out += entry.name + "_bucket" + label_block(inf_labels) + " " +
         std::to_string(h->count()) + "\n";
  out += entry.name + "_sum" + label_block(entry.labels) + " " +
         std::to_string(h->sum()) + "\n";
  out += entry.name + "_count" + label_block(entry.labels) + " " +
         std::to_string(h->count()) + "\n";
}

}  // namespace

std::string render_prometheus(const MetricsRegistry& registry) {
  std::string out;
  std::set<std::string> headered;
  for (const auto& entry : registry.entries()) {
    if (headered.insert(entry.name).second) {
      out += "# HELP " + entry.name + " " + entry.help + "\n";
      out += "# TYPE " + entry.name + " ";
      out += metric_type_name(entry.type);
      out += "\n";
    }
    switch (entry.type) {
      case MetricType::kCounter:
        out += entry.name + label_block(entry.labels) + " " +
               std::to_string(entry.counter->value()) + "\n";
        break;
      case MetricType::kGauge:
        out += entry.name + label_block(entry.labels) + " " +
               format_value(entry.gauge->value()) + "\n";
        break;
      case MetricType::kHistogram:
        render_histogram(out, entry);
        break;
      case MetricType::kHdrHistogram:
        render_hdr_histogram(out, entry);
        break;
    }
  }
  return out;
}

common::Status write_prometheus(const std::string& path,
                                const MetricsRegistry& registry) {
  std::ofstream out(path);
  if (!out) return common::unavailable("cannot open " + path);
  out << render_prometheus(registry);
  return out.good() ? common::Status::ok()
                    : common::unavailable("write failed: " + path);
}

}  // namespace rtseed::obs
