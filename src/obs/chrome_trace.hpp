// Chrome trace-event ("traceEvents") JSON document builder.
//
// Both trace exporters — the live obs::Telemetry event stream and the
// summary-only core/trace_export path — build their documents through
// this class, which owns the concerns snprintf-into-a-fixed-buffer code
// gets wrong: JSON string escaping (quotes, backslashes, control
// characters), arbitrary-length names, and comma placement.  The output
// loads in Perfetto (ui.perfetto.dev) and chrome://tracing.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace rtseed::obs {

/// Escapes a string for inclusion inside a JSON string literal (without
/// the surrounding quotes): ", \, and control characters < 0x20.
std::string json_escape(std::string_view s);

class ChromeTraceBuilder {
 public:
  /// Names the process/thread tracks (rendered as "M" metadata events).
  void set_process_name(int pid, std::string name);
  void set_thread_name(int pid, int tid, std::string name);

  /// A complete ("X") slice.  Times are microseconds on the trace clock.
  void add_complete(std::string name, int pid, int tid, double ts_us,
                    double dur_us);

  /// A thread-scoped instant ("i") event.
  void add_instant(std::string name, int pid, int tid, double ts_us);

  common::usize num_events() const;

  /// Renders the whole document: {"traceEvents":[...]}.
  std::string render() const;

 private:
  struct Meta {
    int pid = 0;
    int tid = 0;
    bool is_process = false;
    std::string name;
  };
  struct Event {
    std::string name;
    int pid = 0;
    int tid = 0;
    double ts_us = 0.0;
    double dur_us = 0.0;
    bool instant = false;
  };

  std::vector<Meta> meta_;
  std::vector<Event> events_;
};

}  // namespace rtseed::obs
