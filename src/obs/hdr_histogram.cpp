#include "obs/hdr_histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace rtseed::obs {

namespace {

int msb_position(common::u64 v) {
#if defined(__GNUC__) || defined(__clang__)
  return 63 - __builtin_clzll(v);
#else
  int pos = 0;
  while (v >>= 1) ++pos;
  return pos;
#endif
}

}  // namespace

common::usize HdrHistogram::bucket_index(common::u64 value) {
  if (value < 2 * kSubBucketCount) return static_cast<common::usize>(value);
  const int shift = msb_position(value) - kSubBucketBits;
  // top is in [kSubBucketCount, 2*kSubBucketCount).
  const common::u64 top = value >> shift;
  return static_cast<common::usize>(shift) * kSubBucketCount +
         static_cast<common::usize>(top);
}

common::u64 HdrHistogram::bucket_lo(common::usize index) {
  if (index < 2 * kSubBucketCount) return index;
  const common::usize shift = index / kSubBucketCount - 1;
  const common::u64 top = kSubBucketCount + index % kSubBucketCount;
  return top << shift;
}

common::u64 HdrHistogram::bucket_hi(common::usize index) {
  if (index < 2 * kSubBucketCount) return index + 1;
  const common::usize shift = index / kSubBucketCount - 1;
  return bucket_lo(index) + (common::u64{1} << shift);
}

void HdrHistogram::record(common::u64 value) {
  counts_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  common::u64 seen = min_.load(std::memory_order_relaxed);
  while (value < seen && !min_.compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen && !max_.compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
}

void HdrHistogram::record(double value) {
  if (value <= 0.0) {
    record(common::u64{0});
    return;
  }
  record(static_cast<common::u64>(std::llround(value)));
}

void HdrHistogram::merge(const HdrHistogram& other) {
  for (common::usize i = 0; i < kNumBuckets; ++i) {
    const auto n = other.counts_[i].load(std::memory_order_relaxed);
    if (n != 0) counts_[i].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  sum_.fetch_add(other.sum(), std::memory_order_relaxed);
  const auto other_min = other.min_.load(std::memory_order_relaxed);
  common::u64 seen = min_.load(std::memory_order_relaxed);
  while (other_min < seen && !min_.compare_exchange_weak(
                                 seen, other_min, std::memory_order_relaxed)) {
  }
  const auto other_max = other.max_.load(std::memory_order_relaxed);
  seen = max_.load(std::memory_order_relaxed);
  while (other_max > seen && !max_.compare_exchange_weak(
                                 seen, other_max, std::memory_order_relaxed)) {
  }
}

double HdrHistogram::mean() const {
  const auto n = count();
  return n == 0 ? 0.0
                : static_cast<double>(sum()) / static_cast<double>(n);
}

common::u64 HdrHistogram::min_value() const {
  return count() == 0 ? 0 : min_.load(std::memory_order_relaxed);
}

common::u64 HdrHistogram::max_value() const {
  return max_.load(std::memory_order_relaxed);
}

common::u64 HdrHistogram::percentile(double q) const {
  const auto n = count();
  if (n == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  if (q >= 1.0) return max_value();
  const auto target = static_cast<common::u64>(
      std::ceil(q * static_cast<double>(n)));
  common::u64 cumulative = 0;
  for (common::usize i = 0; i < kNumBuckets; ++i) {
    cumulative += counts_[i].load(std::memory_order_relaxed);
    if (cumulative >= target && cumulative > 0) {
      return (bucket_lo(i) + bucket_hi(i) - 1) / 2;
    }
  }
  return max_value();
}

common::usize HdrHistogram::highest_bucket() const {
  for (common::usize i = kNumBuckets; i > 0; --i) {
    if (counts_[i - 1].load(std::memory_order_relaxed) != 0) return i;
  }
  return 0;
}

std::string HdrHistogram::tail_summary() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.1f p50=%llu p99=%llu p99.9=%llu max=%llu",
                static_cast<unsigned long long>(count()), mean(),
                static_cast<unsigned long long>(percentile(0.50)),
                static_cast<unsigned long long>(percentile(0.99)),
                static_cast<unsigned long long>(percentile(0.999)),
                static_cast<unsigned long long>(max_value()));
  return buf;
}

}  // namespace rtseed::obs
