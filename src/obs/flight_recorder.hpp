// Always-on flight recorder: the last N events per thread, pre-allocated,
// dumped when something dies.
//
// The trace rings (obs/TraceBuffer) are sized for full-run capture and
// drained by snapshots; when the process aborts mid-run the most recent —
// most interesting — events are exactly the ones nobody drained.  The
// flight recorder keeps a small overwrite-oldest ring per thread that
// mirrors every emitted event (one predictable branch + one store on the
// hot path) and serialises the lot to a self-contained JSON file when a
// fault hook fires: budget-watchdog abort, supervisor kill escalation,
// circuit-breaker trip, or a fatal signal (trading_demo --flight-record).
//
// Dump-side reads race with live producers by design — a crash dump
// tolerates a torn event at the write head; everything behind it is
// quiescent history.  Triggering is rate-limited (max_dumps) so a fault
// storm cannot fill the disk.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "obs/trace_event.hpp"

namespace rtseed::obs {

/// Fixed-capacity overwrite-oldest event ring.  Single producer (the
/// owning thread); any thread may read a best-effort copy at dump time.
class FlightRing {
 public:
  /// `capacity` must be a power of two >= 2.
  FlightRing(std::string name, common::usize capacity)
      : name_(std::move(name)), mask_(capacity - 1), slots_(capacity) {}

  FlightRing(const FlightRing&) = delete;
  FlightRing& operator=(const FlightRing&) = delete;

  const std::string& name() const { return name_; }

  /// Producer side: overwrite the oldest slot, never block, never drop.
  void record(const TraceEvent& event) {
    const auto i = head_.fetch_add(1, std::memory_order_relaxed);
    slots_[static_cast<common::usize>(i) & mask_] = event;
  }

  /// Dump side: oldest-to-newest best-effort copy (the slot at the write
  /// head may be torn if the producer is mid-store — acceptable at crash
  /// time).
  std::vector<TraceEvent> recent() const;

  common::u64 recorded() const {
    return head_.load(std::memory_order_relaxed);
  }

 private:
  const std::string name_;
  const common::usize mask_;
  std::atomic<common::u64> head_{0};
  std::vector<TraceEvent> slots_;
};

struct FlightRecorderOptions {
  bool enabled = false;
  /// Ring depth per thread (rounded up to a power of two).  Small on
  /// purpose: the recorder keeps recent history, not the whole run.
  common::usize events_per_thread = 256;
  std::string dump_dir = ".";
  std::string tag = "rtseed";
  /// Hard cap on dump files per process — a fault storm must not fill
  /// the disk.
  int max_dumps = 4;
};

class FlightRecorder {
 public:
  /// `clock_name` labels the dump's timestamps ("tsc"/"monotonic"/
  /// "virtual") so the file is interpretable on its own.
  FlightRecorder(FlightRecorderOptions options, std::string clock_name);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Registers a per-thread ring (setup path: mutex + allocation).  The
  /// ring stays valid for the recorder's lifetime.
  FlightRing* register_thread(std::string name);

  /// Serialises every ring to <dump_dir>/flight-<tag>-<reason>-<n>.json.
  /// Safe from any thread; returns the path, or "" when rate-limited or
  /// the write failed.  NOT async-signal-safe (allocates) — a signal-path
  /// caller is already crashing and accepts the risk.
  std::string trigger(const std::string& reason);

  /// The dump document without touching the filesystem (tests, --stdout).
  std::string render_json(const std::string& reason) const;

  int dumps() const { return dumps_.load(std::memory_order_relaxed); }
  const FlightRecorderOptions& options() const { return options_; }

 private:
  const FlightRecorderOptions options_;
  const std::string clock_name_;
  mutable std::mutex mutex_;  ///< guards rings_ growth, not ring contents
  std::vector<std::unique_ptr<FlightRing>> rings_;
  std::atomic<int> dumps_{0};
};

namespace detail {
extern std::atomic<FlightRecorder*> g_flight_recorder;
}  // namespace detail

/// Installs (or, with nullptr, removes) the process-wide recorder used by
/// the fault hooks.  Not an ownership transfer; the recorder must outlive
/// any thread that may trigger a dump.
void install_flight_recorder(FlightRecorder* recorder);

inline FlightRecorder* active_flight_recorder() {
  return detail::g_flight_recorder.load(std::memory_order_acquire);
}

/// The fault-hook gate: one relaxed load + untaken branch when no
/// recorder is installed (same discipline as fault::try_fire).
inline void flight_trigger(const char* reason) {
  FlightRecorder* recorder = active_flight_recorder();
  if (recorder != nullptr) (void)recorder->trigger(reason);
}

}  // namespace rtseed::obs
