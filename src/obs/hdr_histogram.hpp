// Log-bucketed latency histogram with wait-free recording and exact
// p50/p99/p99.9/max — the tail-latency replacement for the linear-bucket
// obs::Histogram on latency-class metrics.
//
// Bucket layout (HdrHistogram-style log-linear): 32 linear sub-buckets per
// octave, so every recorded value lands in a bucket whose width is at most
// 1/32 (~3.1%) of its magnitude, over the full u64 range — no lo/hi to
// configure, no underflow/overflow to lose.  record() is a handful of
// relaxed atomic RMWs (bucket, count, sum, min/max), so it is safe on
// SCHED_FIFO threads; per-thread instances merge losslessly because equal
// values always map to equal buckets.
//
// The recorded unit is whatever the caller chooses; the middleware's
// latency metrics record NANOSECONDS (the TSC deltas convert before
// recording), so percentile reads need no unit bookkeeping.
#pragma once

#include <atomic>
#include <string>

#include "common/types.hpp"

namespace rtseed::obs {

class HdrHistogram {
 public:
  /// 32 sub-buckets per power of two.
  static constexpr int kSubBucketBits = 5;
  static constexpr common::usize kSubBucketCount = 1u << kSubBucketBits;
  /// Indices 0..63 are exact (width 1); octave t >= 1 contributes 32
  /// buckets of width 2^t.  58 octaves cover the full u64 range.
  static constexpr common::usize kNumBuckets = 60 * kSubBucketCount;

  HdrHistogram() = default;
  HdrHistogram(const HdrHistogram&) = delete;
  HdrHistogram& operator=(const HdrHistogram&) = delete;

  /// Wait-free aside from the min/max CAS (which converges in a bounded
  /// number of steps once the extremes stop moving).
  void record(common::u64 value);
  /// Convenience for double-valued call sites; negatives clamp to 0.
  void record(double value);

  /// Adds every sample of `other` into this histogram (identical bucket
  /// geometry, so the merge is exact).  Safe against concurrent record()
  /// on either side: each bucket transfers atomically.
  void merge(const HdrHistogram& other);

  common::u64 count() const { return count_.load(std::memory_order_relaxed); }
  common::u64 sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;
  /// Exact extremes (not bucket-quantized); 0 when empty.
  common::u64 min_value() const;
  common::u64 max_value() const;

  /// Percentile estimate, q in [0, 1]: the midpoint of the bucket holding
  /// the q-th sample (≤ ~3.1% relative error); q = 1 returns the exact
  /// max.  Empty histogram: 0.
  common::u64 percentile(double q) const;

  // Bucket geometry (for exporters).  Bucket i counts values in
  // [bucket_lo(i), bucket_hi(i)).
  static common::usize bucket_index(common::u64 value);
  static common::u64 bucket_lo(common::usize index);
  static common::u64 bucket_hi(common::usize index);
  common::u64 bucket(common::usize index) const {
    return counts_[index].load(std::memory_order_relaxed);
  }

  /// Index one past the last non-empty bucket (0 when empty) — exporters
  /// iterate [0, highest_bucket()) instead of all kNumBuckets.
  common::usize highest_bucket() const;

  /// One-line ASCII tail summary: n/mean/p50/p99/p99.9/max.
  std::string tail_summary() const;

 private:
  std::atomic<common::u64> counts_[kNumBuckets] = {};
  std::atomic<common::u64> count_{0};
  std::atomic<common::u64> sum_{0};
  std::atomic<common::u64> min_{~common::u64{0}};
  std::atomic<common::u64> max_{0};
};

}  // namespace rtseed::obs
