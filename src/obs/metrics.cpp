#include "obs/metrics.hpp"

#include <cmath>

namespace rtseed::obs {

const char* metric_type_name(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
    case MetricType::kHdrHistogram:
      return "histogram";
  }
  return "?";
}

void Counter::sync_to(common::u64 v) {
  common::u64 current = value_.load(std::memory_order_relaxed);
  while (current < v && !value_.compare_exchange_weak(
                            current, v, std::memory_order_relaxed)) {
  }
}

void Gauge::add(double delta) {
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(double lo, double hi, common::usize buckets)
    : lo_(lo),
      hi_(hi),
      width_((hi - lo) / static_cast<double>(buckets == 0 ? 1 : buckets)),
      counts_(buckets == 0 ? 1 : buckets) {}

void Histogram::record(double x) {
  count_.fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + x,
                                     std::memory_order_relaxed)) {
  }
  if (x < lo_) {
    underflow_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (x >= hi_) {
    overflow_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  auto i = static_cast<common::usize>((x - lo_) / width_);
  if (i >= counts_.size()) i = counts_.size() - 1;  // FP edge at hi
  counts_[i].fetch_add(1, std::memory_order_relaxed);
}

common::Histogram Histogram::materialize() const {
  common::Histogram out(lo_, hi_, counts_.size());
  for (common::usize i = 0; i < counts_.size(); ++i) {
    const auto n = counts_[i].load(std::memory_order_relaxed);
    if (n == 0) continue;
    out.record_n((bucket_lo(i) + bucket_hi(i)) / 2.0,
                 static_cast<common::usize>(n));
  }
  const auto uf = underflow_.load(std::memory_order_relaxed);
  const auto of = overflow_.load(std::memory_order_relaxed);
  if (uf > 0) out.record_n(std::nextafter(lo_, -1e308), uf);
  if (of > 0) out.record_n(hi_, of);
  return out;
}

MetricsRegistry::Slot* MetricsRegistry::find_locked(const std::string& name,
                                                    const Labels& labels,
                                                    MetricType type) {
  for (auto& slot : slots_) {
    if (slot->entry.type == type && slot->entry.name == name &&
        slot->entry.labels == labels) {
      return slot.get();
    }
  }
  return nullptr;
}

Counter* MetricsRegistry::counter(const std::string& name,
                                  const std::string& help, Labels labels) {
  std::lock_guard lock(mutex_);
  if (auto* slot = find_locked(name, labels, MetricType::kCounter)) {
    return slot->entry.counter;
  }
  auto slot = std::make_unique<Slot>();
  slot->counter = std::make_unique<Counter>();
  slot->entry = {name, help, MetricType::kCounter, std::move(labels),
                 slot->counter.get(), nullptr, nullptr};
  auto* out = slot->entry.counter;
  slots_.push_back(std::move(slot));
  return out;
}

Gauge* MetricsRegistry::gauge(const std::string& name,
                              const std::string& help, Labels labels) {
  std::lock_guard lock(mutex_);
  if (auto* slot = find_locked(name, labels, MetricType::kGauge)) {
    return slot->entry.gauge;
  }
  auto slot = std::make_unique<Slot>();
  slot->gauge = std::make_unique<Gauge>();
  slot->entry = {name, help, MetricType::kGauge, std::move(labels), nullptr,
                 slot->gauge.get(), nullptr};
  auto* out = slot->entry.gauge;
  slots_.push_back(std::move(slot));
  return out;
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help, double lo,
                                      double hi, common::usize buckets,
                                      Labels labels) {
  std::lock_guard lock(mutex_);
  if (auto* slot = find_locked(name, labels, MetricType::kHistogram)) {
    return slot->entry.histogram;
  }
  auto slot = std::make_unique<Slot>();
  slot->histogram = std::make_unique<Histogram>(lo, hi, buckets);
  slot->entry = {name, help, MetricType::kHistogram, std::move(labels),
                 nullptr, nullptr, slot->histogram.get()};
  auto* out = slot->entry.histogram;
  slots_.push_back(std::move(slot));
  return out;
}

HdrHistogram* MetricsRegistry::hdr_histogram(const std::string& name,
                                             const std::string& help,
                                             Labels labels) {
  std::lock_guard lock(mutex_);
  if (auto* slot = find_locked(name, labels, MetricType::kHdrHistogram)) {
    return slot->entry.hdr;
  }
  auto slot = std::make_unique<Slot>();
  slot->hdr = std::make_unique<HdrHistogram>();
  slot->entry.name = name;
  slot->entry.help = help;
  slot->entry.type = MetricType::kHdrHistogram;
  slot->entry.labels = std::move(labels);
  slot->entry.hdr = slot->hdr.get();
  auto* out = slot->entry.hdr;
  slots_.push_back(std::move(slot));
  return out;
}

std::vector<MetricsRegistry::Entry> MetricsRegistry::entries() const {
  std::lock_guard lock(mutex_);
  std::vector<Entry> out;
  out.reserve(slots_.size());
  for (const auto& slot : slots_) out.push_back(slot->entry);
  return out;
}

common::usize MetricsRegistry::size() const {
  std::lock_guard lock(mutex_);
  return slots_.size();
}

}  // namespace rtseed::obs
