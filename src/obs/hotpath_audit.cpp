#include "obs/hotpath_audit.hpp"

namespace rtseed::obs {

namespace detail {
std::atomic<std::int64_t> g_alloc_calls{0};
std::atomic<std::int64_t> g_free_calls{0};
std::atomic<std::int64_t> g_alloc_bytes{0};
std::atomic<bool> g_hook_installed{false};
}  // namespace detail

AllocStats alloc_stats() {
  AllocStats stats;
  stats.alloc_calls = detail::g_alloc_calls.load(std::memory_order_relaxed);
  stats.free_calls = detail::g_free_calls.load(std::memory_order_relaxed);
  stats.alloc_bytes = detail::g_alloc_bytes.load(std::memory_order_relaxed);
  return stats;
}

bool alloc_hook_installed() {
  return detail::g_hook_installed.load(std::memory_order_relaxed);
}

HotpathSnapshot hotpath_snapshot() {
  return {alloc_stats(), rt::wake_stats()};
}

}  // namespace rtseed::obs
