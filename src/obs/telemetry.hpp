// The telemetry hub: owns the per-thread trace buffers, the metrics
// registry, and the naming tables the exporters need.
//
// Life cycle:
//   * construction / thread registration / task registration happen on
//     non-real-time setup paths (Runtime::start(), thread entry before the
//     periodic loop) — they take a mutex and allocate;
//   * emitting events and bumping metrics is wait-free (see TraceBuffer
//     and MetricsRegistry) — that is all the hot path ever does;
//   * snapshot() drains the rings into an accumulated store and returns a
//     copy; exporters (obs/perfetto_export, obs/prometheus_export) and the
//     ASCII summary render from there.
//
// When RuntimeOptions::telemetry.enabled is false no Telemetry object
// exists at all: instrumented code guards every emit behind a branch on a
// sticky pointer/flag, so the disabled cost is one predictable untaken
// branch per site — no locks, no allocation.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace_buffer.hpp"

namespace rtseed::obs {

/// Time base of the raw event timestamps.
enum class ClockDomain {
  kTsc,        ///< rt::rdtscp_now() ticks (native middleware runs)
  kMonotonic,  ///< CLOCK_MONOTONIC nanoseconds
  kVirtual,    ///< simulated nanoseconds (producers pass timestamps in)
};

const char* clock_domain_name(ClockDomain clock);

struct TelemetryOptions {
  bool enabled = false;
  /// Event-ring capacity per registered thread (power of two).  When a
  /// ring fills between snapshots the overflow is dropped and counted.
  common::usize events_per_thread = 16384;
  ClockDomain clock = ClockDomain::kTsc;
  /// Flight recorder (obs/flight_recorder.hpp): when enabled every
  /// registered thread mirrors its events into a small crash-dump ring.
  FlightRecorderOptions flight;
};

/// Instruments every task registers once at start; pointers are wait-free
/// to update and remain valid for the Telemetry's lifetime.
struct TaskMetrics {
  Counter* jobs_released = nullptr;
  Counter* jobs_completed = nullptr;
  Counter* deadline_misses = nullptr;
  Counter* optional_completed = nullptr;
  Counter* optional_terminated = nullptr;  ///< labelled by strategy
  Counter* optional_discarded = nullptr;
  Counter* callback_errors = nullptr;
  // Resilience instruments (src/fault, DESIGN.md §9).
  Counter* budget_overruns = nullptr;   ///< labelled by part (mandatory/windup)
  Counter* jobs_aborted = nullptr;      ///< jobs cut short by OverrunPolicy
  Counter* optional_shed = nullptr;     ///< optional parts withheld by breaker
  Counter* breaker_transitions = nullptr;
  Gauge* breaker_state = nullptr;       ///< 0 closed, 1 open, 2 half-open
  Gauge* breaker_shed_level = nullptr;
  Counter* wake_retries = nullptr;      ///< lost-wake recovery re-wakes
  // Latency-class metrics are log-bucketed tail histograms recording
  // NANOSECONDS (exact p50/p99/p99.9/max, no lo/hi range to configure).
  HdrHistogram* delta_m = nullptr;  ///< nanoseconds, Fig. 10
  HdrHistogram* delta_b = nullptr;  ///< nanoseconds, Fig. 12
  HdrHistogram* delta_s = nullptr;  ///< nanoseconds, Fig. 11
  HdrHistogram* delta_e = nullptr;  ///< nanoseconds, Fig. 13
  HdrHistogram* response_time = nullptr;  ///< release -> wind-up end, ns
};

struct ThreadTrace {
  std::string name;
  common::CpuId cpu = common::kInvalidCpu;
  common::u64 dropped = 0;
  std::vector<TraceEvent> events;
};

struct TelemetrySnapshot {
  ClockDomain clock = ClockDomain::kTsc;
  std::vector<ThreadTrace> threads;
  std::vector<std::string> task_names;  ///< indexed by TaskId ("" = unknown)

  common::u64 total_events() const;
  common::u64 total_dropped() const;
  std::string task_name(common::TaskId task) const;
};

class Telemetry {
 public:
  explicit Telemetry(TelemetryOptions options);
  ~Telemetry();

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  bool enabled() const { return options_.enabled; }
  ClockDomain clock() const { return options_.clock; }

  /// Reads the configured clock (kVirtual returns 0: simulated producers
  /// stamp events themselves).
  common::u64 now() const;

  /// Registers the calling thread's event ring.  Call once per thread on
  /// its setup path (takes a mutex, allocates).  The buffer stays valid
  /// for the Telemetry's lifetime.
  TraceBuffer* register_thread(std::string name,
                               common::CpuId cpu = common::kInvalidCpu);

  /// Task name table for the exporters.
  void set_task_name(common::TaskId task, std::string name);

  /// Registers the per-task instrument bundle (idempotent per task name).
  TaskMetrics register_task_metrics(const std::string& task_name,
                                    const std::string& termination_strategy);

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// The flight recorder, or nullptr when options.flight.enabled is off.
  /// Owned here and installed process-wide for the fault hooks
  /// (obs::flight_trigger) for the Telemetry's lifetime.
  FlightRecorder* flight_recorder() { return flight_.get(); }

  /// Drains all rings into the accumulated store, refreshes the mirrored
  /// counters (trace drops, logger drops), and returns a copy of
  /// everything collected since construction.
  TelemetrySnapshot snapshot();

  /// End-of-run ASCII rendering (common::table): per-thread event/drop
  /// counts plus every registered metric.
  std::string summary();

 private:
  void sync_mirrored_counters_locked();

  const TelemetryOptions options_;
  MetricsRegistry metrics_;
  std::unique_ptr<FlightRecorder> flight_;
  Counter* trace_dropped_total_;
  Counter* logger_dropped_total_;

  mutable std::mutex mutex_;
  struct ThreadSlot {
    std::unique_ptr<TraceBuffer> buffer;
    std::vector<TraceEvent> collected;  ///< drained by earlier snapshots
  };
  std::vector<ThreadSlot> threads_;
  std::vector<std::string> task_names_;
};

}  // namespace rtseed::obs
