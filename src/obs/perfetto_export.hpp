// Perfetto/Chrome-trace export of the live telemetry event stream.
//
// Renders a TelemetrySnapshot as trace-event JSON with one track per
// registered (hardware) thread and one lane per task part: mandatory,
// signal window, each optional part, wind-up.  Instants mark releases,
// discards, terminations, and deadline misses.  Open the output in
// ui.perfetto.dev or chrome://tracing.
#pragma once

#include <string>

#include "common/status.hpp"
#include "obs/telemetry.hpp"

namespace rtseed::obs {

/// Microseconds on the trace timeline for a raw event timestamp, given
/// the snapshot's clock domain and the anchor (earliest timestamp).
double event_timestamp_micros(ClockDomain clock, common::u64 raw,
                              common::u64 anchor);

std::string render_perfetto_trace(const TelemetrySnapshot& snapshot);

common::Status write_perfetto_trace(const std::string& path,
                                    const TelemetrySnapshot& snapshot);

}  // namespace rtseed::obs
