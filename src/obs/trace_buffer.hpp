// Per-thread, wait-free, fixed-capacity event ring.
//
// One producer (the instrumented real-time thread) and one consumer (the
// snapshotter) — the spsc_ring idiom.  Capacity is fixed at registration;
// when the ring is full the event is dropped and counted, never blocking
// the producer.  Emitting is two relaxed loads, a store, and a release
// store: safe inside SCHED_FIFO threads.
#pragma once

#include <atomic>
#include <string>
#include <vector>

#include "common/spsc_ring.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/trace_event.hpp"

namespace rtseed::obs {

class TraceBuffer {
 public:
  /// `capacity` must be a power of two >= 2.
  TraceBuffer(std::string thread_name, common::CpuId cpu, common::usize capacity)
      : thread_name_(std::move(thread_name)), cpu_(cpu), ring_(capacity) {}

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  const std::string& thread_name() const { return thread_name_; }
  common::CpuId cpu() const { return cpu_; }
  common::usize capacity() const { return ring_.capacity(); }

  /// Producer side (wait-free).  Full ring: the event is dropped and the
  /// drop counter incremented — real-time producers never block.  With a
  /// flight ring attached the event is mirrored there too (overwrite-
  /// oldest, so the mirror never drops and never blocks either).
  void emit(const TraceEvent& event) {
    if (!ring_.try_push(event)) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
    }
    if (flight_ != nullptr) flight_->record(event);
  }

  /// Attaches the thread's flight-recorder ring (setup path, before the
  /// thread starts emitting).
  void set_flight_ring(FlightRing* ring) { flight_ = ring; }

  /// Consumer side: removes and returns all pending events.
  std::vector<TraceEvent> drain() {
    std::vector<TraceEvent> out;
    while (auto event = ring_.try_pop()) out.push_back(*event);
    return out;
  }

  common::u64 dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  common::usize pending_approx() const { return ring_.size_approx(); }

 private:
  const std::string thread_name_;
  const common::CpuId cpu_;
  common::SpscRing<TraceEvent> ring_;
  FlightRing* flight_ = nullptr;
  std::atomic<common::u64> dropped_{0};
};

}  // namespace rtseed::obs
