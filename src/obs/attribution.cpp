#include "obs/attribution.hpp"

#include <algorithm>
#include <map>

#include "common/table.hpp"
#include "rt/tsc.hpp"

namespace rtseed::obs {

const char* root_cause_name(RootCause cause) {
  switch (cause) {
    case RootCause::kNone:
      return "none";
    case RootCause::kInjectedFault:
      return "injected-fault";
    case RootCause::kSupervisorKill:
      return "supervisor-kill";
    case RootCause::kShardFailover:
      return "shard-failover";
    case RootCause::kBudgetOverrun:
      return "budget-overrun";
    case RootCause::kCircuitBreakerShed:
      return "breaker-shed";
    case RootCause::kClockAnomaly:
      return "clock-anomaly";
    case RootCause::kMandatoryOverrun:
      return "mandatory-overrun";
    case RootCause::kOptionalOverrun:
      return "optional-overrun";
    case RootCause::kWakeLatency:
      return "wake-latency";
    case RootCause::kPreempted:
      return "preempted";
    case RootCause::kOverload:
      return "overload";
    case RootCause::kUnknown:
      return "unknown";
    case RootCause::kCount:
      break;
  }
  return "?";
}

namespace {

/// Raw clock delta -> nanoseconds for the snapshot's domain.
common::i64 delta_ns(ClockDomain clock, common::u64 later,
                     common::u64 earlier) {
  if (later <= earlier) return 0;
  const common::u64 delta = later - earlier;
  if (clock == ClockDomain::kTsc) {
    return static_cast<common::i64>(rt::cycles_to_nanos(delta));
  }
  return static_cast<common::i64>(delta);
}

/// Everything observed about one (task, job) before phase math runs.
struct JobEvents {
  std::vector<TraceEvent> events;  // time-sorted at processing time
};

struct SliceSums {
  common::i64 total = 0;
  common::u64 first_begin = 0;
  common::u64 last_end = 0;
  bool any = false;
};

SliceSums sum_slices(const std::vector<TraceEvent>& events, ClockDomain clock,
                     EventKind begin_kind) {
  // Begin/end events for one part may land on different threads only for
  // optional parts, which are handled separately; mandatory/signal/windup
  // slices pair in time order.  The simulator emits multiple slice pairs
  // per job when the part is preempted — each pair contributes.
  SliceSums out;
  const EventKind end_kind = event_kind_end_of(begin_kind);
  common::u64 open = 0;
  bool is_open = false;
  for (const auto& e : events) {
    if (e.kind == begin_kind) {
      open = e.timestamp;
      is_open = true;
      if (!out.any) {
        out.first_begin = e.timestamp;
        out.any = true;
      }
    } else if (e.kind == end_kind && is_open) {
      out.total += delta_ns(clock, e.timestamp, open);
      out.last_end = e.timestamp;
      is_open = false;
    }
  }
  return out;
}

common::i64 clamp_nonneg(common::i64 v) { return v < 0 ? 0 : v; }

RootCause classify_miss(const JobTimeline& t) {
  if (!t.complete) return RootCause::kUnknown;
  if (t.injected_fault) return RootCause::kInjectedFault;
  if (t.supervisor_kill) return RootCause::kSupervisorKill;
  if (t.shard_failover) return RootCause::kShardFailover;
  if (t.budget_overrun) return RootCause::kBudgetOverrun;
  if (t.clock_anomaly) return RootCause::kClockAnomaly;
  if (t.optionals_discarded) return RootCause::kMandatoryOverrun;
  if (t.lateness_ns > 0 && t.phases.wake >= t.lateness_ns) {
    return RootCause::kWakeLatency;
  }
  if (t.lateness_ns > 0 && t.phases.preempted >= t.lateness_ns) {
    return RootCause::kPreempted;
  }
  return RootCause::kOverload;
}

RootCause classify_termination(const JobTimeline& t) {
  const bool anything_cut = t.optional_terminated > 0 ||
                            t.optionals_discarded || t.shed_parts > 0 ||
                            t.supervisor_kill;
  if (!anything_cut) return RootCause::kNone;
  if (t.supervisor_kill) return RootCause::kSupervisorKill;
  if (t.shed_parts > 0) return RootCause::kCircuitBreakerShed;
  if (t.optionals_discarded) {
    return t.budget_overrun ? RootCause::kBudgetOverrun
                            : RootCause::kMandatoryOverrun;
  }
  return RootCause::kOptionalOverrun;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

void append_cause_histogram(std::string& out, const char* key,
                            const std::array<long, kNumRootCauses>& causes) {
  out += std::string("\"") + key + "\":{";
  bool first = true;
  for (int c = 0; c < kNumRootCauses; ++c) {
    if (causes[static_cast<common::usize>(c)] == 0) continue;
    if (!first) out += ",";
    first = false;
    out += std::string("\"") + root_cause_name(static_cast<RootCause>(c)) +
           "\":" + std::to_string(causes[static_cast<common::usize>(c)]);
  }
  out += "}";
}

}  // namespace

AttributionReport attribute_jobs(const TelemetrySnapshot& snapshot,
                                 const AttributionOptions& options) {
  AttributionReport report;
  report.clock = snapshot.clock;
  report.dropped_events = snapshot.total_dropped();

  // 1. Bucket every task-scoped event by (task, job); the ordered map
  //    gives the report its (task, job) ordering for free.
  std::map<std::pair<common::TaskId, common::JobId>, JobEvents> jobs;
  // Supervisor events carry no meaningful job id (the supervisor watches
  // workers, not jobs) — joined to jobs by time window instead.
  std::map<common::TaskId, std::vector<common::u64>> kill_times;
  for (const auto& thread : snapshot.threads) {
    for (const auto& event : thread.events) {
      if (event.task == common::kInvalidTask) continue;
      if (event.kind == EventKind::kSupervisorKill ||
          event.kind == EventKind::kSupervisorStall) {
        if (event.kind == EventKind::kSupervisorKill) {
          kill_times[event.task].push_back(event.timestamp);
        }
        continue;
      }
      jobs[{event.task, event.job}].events.push_back(event);
    }
  }
  for (auto& [task, times] : kill_times) std::sort(times.begin(), times.end());

  // 2. Sort the injector fire log once; each job window binary-searches it.
  std::vector<common::u64> fire_times;
  fire_times.reserve(options.fault_fires.size());
  for (const auto& fire : options.fault_fires) {
    fire_times.push_back(fire.timestamp);
  }
  std::sort(fire_times.begin(), fire_times.end());

  std::map<common::TaskId, TaskAttribution> tasks;

  for (auto& [key, je] : jobs) {
    std::stable_sort(
        je.events.begin(), je.events.end(),
        [](const TraceEvent& a, const TraceEvent& b) {
          return a.timestamp < b.timestamp;
        });

    JobTimeline t;
    t.task = key.first;
    t.job = key.second;

    bool has_release = false, has_finish = false;
    common::u64 first_opt_begin = 0, last_opt_close = 0;
    for (const auto& e : je.events) {
      switch (e.kind) {
        case EventKind::kJobRelease:
          if (!has_release) {
            t.release = e.timestamp;
            has_release = true;
          }
          break;
        case EventKind::kOptionalBegin:
          ++t.optional_started;
          if (first_opt_begin == 0 || e.timestamp < first_opt_begin) {
            first_opt_begin = e.timestamp;
          }
          break;
        case EventKind::kOptionalEnd:
          ++t.optional_completed;
          last_opt_close = std::max(last_opt_close, e.timestamp);
          break;
        case EventKind::kOptionalTerminated:
          ++t.optional_terminated;
          last_opt_close = std::max(last_opt_close, e.timestamp);
          break;
        case EventKind::kOptionalsDiscarded:
          t.optionals_discarded = true;
          break;
        case EventKind::kWindupEnd:
        case EventKind::kJobFinish:
          t.finish = std::max(t.finish, e.timestamp);
          has_finish = true;
          break;
        case EventKind::kDeadlineMiss:
          t.missed = true;
          t.lateness_ns = static_cast<common::i64>(e.arg) * 1000;
          break;
        case EventKind::kBudgetOverrun:
          t.budget_overrun = true;
          break;
        case EventKind::kOptionalShed:
          t.shed_parts += e.arg;
          break;
        case EventKind::kClockAnomaly:
          t.clock_anomaly = true;
          break;
        default:
          break;
      }
    }
    t.complete = has_release && has_finish;

    // Phase decomposition (all slice sums tolerate sim preemption: a part
    // may contribute several begin/end pairs).
    const ClockDomain clock = snapshot.clock;
    const auto mandatory =
        sum_slices(je.events, clock, EventKind::kMandatoryBegin);
    const auto signal = sum_slices(je.events, clock, EventKind::kSignalBegin);
    const auto windup = sum_slices(je.events, clock, EventKind::kWindupBegin);
    t.phases.mandatory = mandatory.total;
    t.phases.handoff = signal.total;
    t.phases.windup = windup.total;
    if (has_release && mandatory.any) {
      t.phases.wake = delta_ns(clock, mandatory.first_begin, t.release);
    }
    if (t.optional_started > 0 && last_opt_close > 0) {
      t.phases.optional = delta_ns(clock, last_opt_close, first_opt_begin);
    }
    // Idle gap before wind-up: after the last optional closed (or, with no
    // optionals, after the mandatory body) the job sleeps until OD.
    if (windup.any) {
      common::u64 pre_windup = last_opt_close;
      if (pre_windup == 0) pre_windup = signal.last_end;
      if (pre_windup == 0) pre_windup = mandatory.last_end;
      if (pre_windup != 0) {
        t.phases.optional_wait =
            delta_ns(clock, windup.first_begin, pre_windup);
      }
    }
    if (t.complete) {
      t.phases.response = delta_ns(clock, t.finish, t.release);
      t.phases.preempted = clamp_nonneg(
          t.phases.response -
          (t.phases.wake + t.phases.mandatory + t.phases.handoff +
           t.phases.optional + t.phases.optional_wait + t.phases.windup));
    }

    // Window joins: supervisor kills and injector fires landing inside
    // [release, finish] belong to this job.
    if (has_release && has_finish) {
      const auto in_window = [&](const std::vector<common::u64>& times) {
        const auto lo =
            std::lower_bound(times.begin(), times.end(), t.release);
        return lo != times.end() && *lo <= t.finish;
      };
      if (!fire_times.empty()) t.injected_fault = in_window(fire_times);
      const auto kills = kill_times.find(t.task);
      if (kills != kill_times.end()) {
        t.supervisor_kill = in_window(kills->second);
      }
      for (const auto& w : options.failover_windows) {
        // Interval overlap; an open window (end == 0) extends forever.
        if (w.begin <= t.finish && (w.end == 0 || w.end >= t.release)) {
          t.shard_failover = true;
          break;
        }
      }
    }

    if (t.missed) t.miss_cause = classify_miss(t);
    t.termination_cause = classify_termination(t);

    auto& ta = tasks[t.task];
    ta.task = t.task;
    ta.name = snapshot.task_name(t.task);
    ++ta.jobs;
    ta.complete_jobs += t.complete;
    if (t.missed) {
      ++ta.misses;
      ++ta.miss_causes[static_cast<common::usize>(t.miss_cause)];
    }
    if (t.termination_cause != RootCause::kNone) {
      ++ta.terminations;
      ++ta.termination_causes[static_cast<common::usize>(t.termination_cause)];
    }

    report.jobs.push_back(std::move(t));
  }

  report.tasks.reserve(tasks.size());
  for (auto& [id, ta] : tasks) report.tasks.push_back(std::move(ta));
  return report;
}

std::string AttributionReport::to_json() const {
  std::string out;
  out += "{\"schema\":\"rtseed-attribution-v1\",";
  out += std::string("\"clock\":\"") + clock_domain_name(clock) + "\",";
  out += "\"dropped_events\":" + std::to_string(dropped_events) + ",";
  out += "\"jobs\":[";
  bool first = true;
  for (const auto& t : jobs) {
    if (!first) out += ",";
    first = false;
    out += "{\"task\":" + std::to_string(t.task) + ",";
    out += "\"job\":" + std::to_string(t.job) + ",";
    out += std::string("\"complete\":") + (t.complete ? "true" : "false") +
           ",";
    out += std::string("\"missed\":") + (t.missed ? "true" : "false") + ",";
    out += "\"lateness_ns\":" + std::to_string(t.lateness_ns) + ",";
    out += std::string("\"miss_cause\":\"") + root_cause_name(t.miss_cause) +
           "\",";
    out += std::string("\"termination_cause\":\"") +
           root_cause_name(t.termination_cause) + "\",";
    out += "\"optional\":{\"started\":" + std::to_string(t.optional_started) +
           ",\"completed\":" + std::to_string(t.optional_completed) +
           ",\"terminated\":" + std::to_string(t.optional_terminated) +
           ",\"discarded\":" + (t.optionals_discarded ? "true" : "false") +
           ",\"shed\":" + std::to_string(t.shed_parts) + "},";
    out += std::string("\"flags\":{\"budget_overrun\":") +
           (t.budget_overrun ? "true" : "false") +
           ",\"supervisor_kill\":" + (t.supervisor_kill ? "true" : "false") +
           ",\"clock_anomaly\":" + (t.clock_anomaly ? "true" : "false") +
           ",\"injected_fault\":" + (t.injected_fault ? "true" : "false") +
           ",\"shard_failover\":" + (t.shard_failover ? "true" : "false") +
           "},";
    const auto& p = t.phases;
    out += "\"phases_ns\":{\"wake\":" + std::to_string(p.wake) +
           ",\"mandatory\":" + std::to_string(p.mandatory) +
           ",\"handoff\":" + std::to_string(p.handoff) +
           ",\"optional\":" + std::to_string(p.optional) +
           ",\"optional_wait\":" + std::to_string(p.optional_wait) +
           ",\"windup\":" + std::to_string(p.windup) +
           ",\"preempted\":" + std::to_string(p.preempted) +
           ",\"response\":" + std::to_string(p.response) + "}}";
  }
  out += "],\"tasks\":[";
  first = true;
  for (const auto& ta : tasks) {
    if (!first) out += ",";
    first = false;
    out += "{\"task\":" + std::to_string(ta.task) + ",";
    out += "\"name\":\"" + json_escape(ta.name) + "\",";
    out += "\"jobs\":" + std::to_string(ta.jobs) + ",";
    out += "\"complete_jobs\":" + std::to_string(ta.complete_jobs) + ",";
    out += "\"misses\":" + std::to_string(ta.misses) + ",";
    out += "\"terminations\":" + std::to_string(ta.terminations) + ",";
    append_cause_histogram(out, "miss_causes", ta.miss_causes);
    out += ",";
    append_cause_histogram(out, "termination_causes", ta.termination_causes);
    out += "}";
  }
  out += "]}";
  return out;
}

std::string AttributionReport::to_ascii() const {
  std::string out;
  common::Table summary(
      {"task", "jobs", "misses", "terminations", "top miss cause",
       "top termination cause"});
  for (const auto& ta : tasks) {
    auto top_of = [](const std::array<long, kNumRootCauses>& causes) {
      int best = 0;
      for (int c = 1; c < kNumRootCauses; ++c) {
        if (causes[static_cast<common::usize>(c)] >
            causes[static_cast<common::usize>(best)]) {
          best = c;
        }
      }
      if (causes[static_cast<common::usize>(best)] == 0) return std::string("-");
      return std::string(root_cause_name(static_cast<RootCause>(best))) +
             " (" +
             std::to_string(causes[static_cast<common::usize>(best)]) + ")";
    };
    summary.add_row({ta.name, std::to_string(ta.jobs),
                     std::to_string(ta.misses),
                     std::to_string(ta.terminations), top_of(ta.miss_causes),
                     top_of(ta.termination_causes)});
  }
  out += summary.render();

  common::Table causes({"task", "cause", "misses", "terminations"});
  for (const auto& ta : tasks) {
    for (int c = 0; c < kNumRootCauses; ++c) {
      const auto i = static_cast<common::usize>(c);
      if (ta.miss_causes[i] == 0 && ta.termination_causes[i] == 0) continue;
      causes.add_row({ta.name, root_cause_name(static_cast<RootCause>(c)),
                      std::to_string(ta.miss_causes[i]),
                      std::to_string(ta.termination_causes[i])});
    }
  }
  if (causes.rows() > 0) {
    out += "\n";
    out += causes.render();
  }
  return out;
}

}  // namespace rtseed::obs
