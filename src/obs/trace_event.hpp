// The unified runtime event schema shared by native middleware threads
// and the discrete-event simulator.
//
// An event is a fixed-size POD: emitting one is a couple of stores into a
// per-thread wait-free ring (obs::TraceBuffer) — no locks, no allocation,
// no formatting on the hot path.  Native runs timestamp events with the
// TSC (rt::rdtscp_now); simulator runs reuse the same schema with virtual
// nanoseconds, so one exporter renders both.
#pragma once

#include "common/time.hpp"
#include "common/types.hpp"

namespace rtseed::obs {

/// What happened.  Begin/end pairs become slices in the Perfetto export;
/// the rest render as instants.
enum class EventKind : common::u8 {
  kJobRelease = 0,      ///< job released (mandatory thread woke up)
  kMandatoryBegin,      ///< mandatory part entered the user callback
  kMandatoryEnd,
  kSignalBegin,         ///< Δb window: the cond_signal loop starts
  kSignalEnd,
  kOptionalBegin,       ///< optional part k began (on its own thread)
  kOptionalEnd,         ///< optional part k completed before OD
  kOptionalTerminated,  ///< optional part k terminated at OD (arg = k)
  kOptionalsDiscarded,  ///< mandatory ran past OD: optionals never started
  kWindupBegin,
  kWindupEnd,
  kDeadlineMiss,        ///< wind-up completed past the job deadline
  kJobFinish,
  kRuntimeStart,        ///< Runtime::start() completed
  kRuntimeStop,         ///< Runtime::stop() entered
  // Resilience events (src/fault, DESIGN.md §9).
  kBudgetOverrun,       ///< mandatory/wind-up budget watchdog fired (arg = part)
  kBreakerTrip,         ///< circuit breaker opened (arg = shed level)
  kBreakerProbe,        ///< breaker went half-open, probing at full np
  kBreakerRestore,      ///< breaker closed, full parallelism restored
  kOptionalShed,        ///< job ran with reduced np (arg = parts shed)
  kSupervisorStall,     ///< supervisor saw a worker past OD + grace (arg = k)
  kSupervisorKill,      ///< supervisor delivered a termination signal (arg = k)
  kSupervisorRespawn,   ///< supervisor respawned a dead worker (arg = k)
  kWakeRetry,           ///< lost-wake recovery re-issued a slot wake (arg = k)
  kClockAnomaly,        ///< periodic clock woke before its release time
  /// Application-level marker (arg = workload-defined code).  The LOB
  /// fuzz harness records one per flow event so a flight-recorder dump
  /// at divergence time shows the exact event tail that led there.
  kWorkloadMark,
};

inline constexpr int kNumEventKinds = 26;

const char* event_kind_name(EventKind kind);

/// True for kinds that open a slice (paired with the matching *End kind).
bool event_kind_is_begin(EventKind kind);

/// The matching end kind for a begin kind (kOptionalBegin also closes on
/// kOptionalTerminated).
EventKind event_kind_end_of(EventKind begin);

struct TraceEvent {
  common::u64 timestamp = 0;  ///< raw clock value (TSC or virtual nanos)
  common::TaskId task = common::kInvalidTask;
  common::JobId job = 0;
  common::i32 arg = 0;  ///< part index, termination strategy, ...
  EventKind kind = EventKind::kJobRelease;
};

static_assert(sizeof(TraceEvent) <= 32, "keep events cache-friendly");

}  // namespace rtseed::obs
