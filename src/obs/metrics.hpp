// Lock-free metrics registry: counters, gauges, and fixed-bucket latency
// histograms.
//
// Registration (naming an instrument) takes a mutex and may allocate, so
// it belongs in setup code — Runtime::start(), pool construction, tests.
// The returned instrument pointers are stable for the registry's lifetime
// and updating through them is wait-free (relaxed atomic arithmetic), so
// the hot path — SCHED_FIFO middleware threads — only ever touches
// atomics.  Reads aggregate on demand: exporters walk the registry and
// load whatever the producers have published so far.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.hpp"
#include "common/types.hpp"
#include "obs/hdr_histogram.hpp"

namespace rtseed::obs {

/// Prometheus-style key/value labels, e.g. {{"task", "tau1"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricType { kCounter, kGauge, kHistogram, kHdrHistogram };

/// Prometheus-facing TYPE name (kHdrHistogram renders as "histogram").
const char* metric_type_name(MetricType type);

/// Monotonically increasing count.
class Counter {
 public:
  void add(common::u64 n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void increment() { add(1); }

  /// Mirrors an external monotonic source (e.g. RtLogger::dropped()):
  /// raises the stored value to `v`, never lowers it.
  void sync_to(common::u64 v);

  common::u64 value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<common::u64> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta);
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Linear-bucket histogram with wait-free recording: the atomic twin of
/// common::Histogram.  Out-of-range samples land in underflow/overflow;
/// sum/count make Prometheus _sum/_count exact even when samples overflow
/// the bucket range.
class Histogram {
 public:
  /// Requires hi > lo and buckets >= 1.
  Histogram(double lo, double hi, common::usize buckets);

  void record(double x);

  common::u64 count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  common::u64 underflow() const {
    return underflow_.load(std::memory_order_relaxed);
  }
  common::u64 overflow() const {
    return overflow_.load(std::memory_order_relaxed);
  }
  common::usize bucket_count() const { return counts_.size(); }
  common::u64 bucket(common::usize i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  double bucket_lo(common::usize i) const {
    return lo_ + width_ * static_cast<double>(i);
  }
  double bucket_hi(common::usize i) const {
    return lo_ + width_ * static_cast<double>(i + 1);
  }

  /// Aggregate-on-read: snapshots the atomic buckets into a
  /// common::Histogram (bucket-midpoint semantics) for rendering and
  /// percentile estimation.
  common::Histogram materialize() const;

 private:
  const double lo_;
  const double hi_;
  const double width_;
  std::vector<std::atomic<common::u64>> counts_;
  std::atomic<common::u64> count_{0};
  std::atomic<common::u64> underflow_{0};
  std::atomic<common::u64> overflow_{0};
  std::atomic<double> sum_{0.0};
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Each getter creates the instrument on first use and returns the same
  /// pointer for the same (name, labels) thereafter.  Counter names should
  /// follow the Prometheus convention and end in `_total`.
  Counter* counter(const std::string& name, const std::string& help,
                   Labels labels = {});
  Gauge* gauge(const std::string& name, const std::string& help,
               Labels labels = {});
  /// Histogram buckets are linear over [lo, hi); the unit is whatever the
  /// caller records (middleware overheads use microseconds).
  Histogram* histogram(const std::string& name, const std::string& help,
                       double lo, double hi, common::usize buckets,
                       Labels labels = {});
  /// Log-bucketed tail-latency histogram (obs::HdrHistogram): no range to
  /// configure; latency-class metrics record nanoseconds.
  HdrHistogram* hdr_histogram(const std::string& name,
                              const std::string& help, Labels labels = {});

  struct Entry {
    std::string name;
    std::string help;
    MetricType type = MetricType::kCounter;
    Labels labels;
    // Exactly one is non-null, matching `type`.
    Counter* counter = nullptr;
    Gauge* gauge = nullptr;
    Histogram* histogram = nullptr;
    HdrHistogram* hdr = nullptr;
  };

  /// Stable snapshot of the registered instruments (the pointers stay
  /// valid; values read through them are live).
  std::vector<Entry> entries() const;

  common::usize size() const;

 private:
  struct Slot {
    Entry entry;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::unique_ptr<HdrHistogram> hdr;
  };

  Slot* find_locked(const std::string& name, const Labels& labels,
                    MetricType type);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Slot>> slots_;
};

}  // namespace rtseed::obs
