// Prometheus text-exposition (version 0.0.4) rendering of a
// MetricsRegistry: HELP/TYPE headers per family, escaped label values,
// cumulative histogram buckets with le="..." and +Inf, _sum and _count.
#pragma once

#include <string>

#include "common/status.hpp"
#include "obs/metrics.hpp"

namespace rtseed::obs {

/// Escapes a label value: backslash, double quote, newline.
std::string prometheus_escape(const std::string& value);

std::string render_prometheus(const MetricsRegistry& registry);

common::Status write_prometheus(const std::string& path,
                                const MetricsRegistry& registry);

}  // namespace rtseed::obs
