#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <fstream>

namespace rtseed::obs {

namespace detail {
std::atomic<FlightRecorder*> g_flight_recorder{nullptr};
}  // namespace detail

void install_flight_recorder(FlightRecorder* recorder) {
  detail::g_flight_recorder.store(recorder, std::memory_order_release);
}

std::vector<TraceEvent> FlightRing::recent() const {
  const common::u64 head = head_.load(std::memory_order_relaxed);
  const auto capacity = static_cast<common::u64>(mask_ + 1);
  const common::u64 n = head < capacity ? head : capacity;
  std::vector<TraceEvent> out;
  out.reserve(static_cast<common::usize>(n));
  for (common::u64 i = head - n; i < head; ++i) {
    out.push_back(slots_[static_cast<common::usize>(i) & mask_]);
  }
  return out;
}

namespace {

common::usize round_up_pow2(common::usize n) {
  common::usize p = 2;
  while (p < n) p <<= 1;
  return p;
}

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
}

}  // namespace

FlightRecorder::FlightRecorder(FlightRecorderOptions options,
                               std::string clock_name)
    : options_(std::move(options)), clock_name_(std::move(clock_name)) {}

FlightRing* FlightRecorder::register_thread(std::string name) {
  std::lock_guard lock(mutex_);
  const auto capacity = round_up_pow2(
      std::max<common::usize>(2, options_.events_per_thread));
  rings_.push_back(
      std::make_unique<FlightRing>(std::move(name), capacity));
  return rings_.back().get();
}

std::string FlightRecorder::render_json(const std::string& reason) const {
  std::string out;
  out += "{\"schema\":\"rtseed-flight-v1\",";
  out += "\"reason\":\"";
  append_escaped(out, reason);
  out += "\",\"clock\":\"" + clock_name_ + "\",";
  out += "\"tag\":\"";
  append_escaped(out, options_.tag);
  out += "\",\"threads\":[";
  std::lock_guard lock(mutex_);
  bool first_ring = true;
  for (const auto& ring : rings_) {
    if (!first_ring) out += ",";
    first_ring = false;
    out += "{\"name\":\"";
    append_escaped(out, ring->name());
    out += "\",\"recorded\":" + std::to_string(ring->recorded());
    out += ",\"events\":[";
    bool first_event = true;
    for (const auto& e : ring->recent()) {
      if (!first_event) out += ",";
      first_event = false;
      out += "{\"t\":" + std::to_string(e.timestamp) +
             ",\"task\":" + std::to_string(e.task) +
             ",\"job\":" + std::to_string(e.job) +
             ",\"arg\":" + std::to_string(e.arg) + ",\"kind\":\"" +
             event_kind_name(e.kind) + "\"}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string FlightRecorder::trigger(const std::string& reason) {
  // Rate limit first: a fault storm triggers once per dump slot, and the
  // increment is what makes concurrent triggers take distinct filenames.
  const int n = dumps_.fetch_add(1, std::memory_order_relaxed);
  if (n >= options_.max_dumps) {
    dumps_.store(options_.max_dumps, std::memory_order_relaxed);
    return "";
  }
  const std::string path = options_.dump_dir + "/flight-" + options_.tag +
                           "-" + reason + "-" + std::to_string(n) + ".json";
  std::ofstream file(path);
  if (!file) return "";
  file << render_json(reason) << "\n";
  return file.good() ? path : "";
}

}  // namespace rtseed::obs
