#include "obs/telemetry.hpp"

#include <algorithm>

#include "common/rt_logger.hpp"
#include "common/table.hpp"
#include "common/time.hpp"
#include "rt/tsc.hpp"

namespace rtseed::obs {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kJobRelease:
      return "release";
    case EventKind::kMandatoryBegin:
      return "mandatory-begin";
    case EventKind::kMandatoryEnd:
      return "mandatory-end";
    case EventKind::kSignalBegin:
      return "signal-begin";
    case EventKind::kSignalEnd:
      return "signal-end";
    case EventKind::kOptionalBegin:
      return "optional-begin";
    case EventKind::kOptionalEnd:
      return "optional-end";
    case EventKind::kOptionalTerminated:
      return "optional-terminated";
    case EventKind::kOptionalsDiscarded:
      return "optionals-discarded";
    case EventKind::kWindupBegin:
      return "windup-begin";
    case EventKind::kWindupEnd:
      return "windup-end";
    case EventKind::kDeadlineMiss:
      return "deadline-miss";
    case EventKind::kJobFinish:
      return "job-finish";
    case EventKind::kRuntimeStart:
      return "runtime-start";
    case EventKind::kRuntimeStop:
      return "runtime-stop";
    case EventKind::kBudgetOverrun:
      return "budget-overrun";
    case EventKind::kBreakerTrip:
      return "breaker-trip";
    case EventKind::kBreakerProbe:
      return "breaker-probe";
    case EventKind::kBreakerRestore:
      return "breaker-restore";
    case EventKind::kOptionalShed:
      return "optional-shed";
    case EventKind::kSupervisorStall:
      return "supervisor-stall";
    case EventKind::kSupervisorKill:
      return "supervisor-kill";
    case EventKind::kSupervisorRespawn:
      return "supervisor-respawn";
    case EventKind::kWakeRetry:
      return "wake-retry";
    case EventKind::kClockAnomaly:
      return "clock-anomaly";
    case EventKind::kWorkloadMark:
      return "workload-mark";
  }
  return "?";
}

bool event_kind_is_begin(EventKind kind) {
  switch (kind) {
    case EventKind::kMandatoryBegin:
    case EventKind::kSignalBegin:
    case EventKind::kOptionalBegin:
    case EventKind::kWindupBegin:
      return true;
    default:
      return false;
  }
}

EventKind event_kind_end_of(EventKind begin) {
  switch (begin) {
    case EventKind::kMandatoryBegin:
      return EventKind::kMandatoryEnd;
    case EventKind::kSignalBegin:
      return EventKind::kSignalEnd;
    case EventKind::kOptionalBegin:
      return EventKind::kOptionalEnd;
    case EventKind::kWindupBegin:
      return EventKind::kWindupEnd;
    default:
      return begin;
  }
}

const char* clock_domain_name(ClockDomain clock) {
  switch (clock) {
    case ClockDomain::kTsc:
      return "tsc";
    case ClockDomain::kMonotonic:
      return "monotonic";
    case ClockDomain::kVirtual:
      return "virtual";
  }
  return "?";
}

common::u64 TelemetrySnapshot::total_events() const {
  common::u64 n = 0;
  for (const auto& t : threads) n += t.events.size();
  return n;
}

common::u64 TelemetrySnapshot::total_dropped() const {
  common::u64 n = 0;
  for (const auto& t : threads) n += t.dropped;
  return n;
}

std::string TelemetrySnapshot::task_name(common::TaskId task) const {
  const auto i = static_cast<common::usize>(task);
  if (task >= 0 && i < task_names.size() && !task_names[i].empty()) {
    return task_names[i];
  }
  return "task" + std::to_string(task);
}

namespace {

common::usize round_up_pow2(common::usize n) {
  common::usize p = 2;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

Telemetry::Telemetry(TelemetryOptions options) : options_(options) {
  if (options_.flight.enabled) {
    flight_ = std::make_unique<FlightRecorder>(
        options_.flight, clock_domain_name(options_.clock));
    install_flight_recorder(flight_.get());
  }
  trace_dropped_total_ = metrics_.counter(
      "rtseed_trace_events_dropped_total",
      "Trace events lost because a per-thread ring was full");
  logger_dropped_total_ = metrics_.counter(
      "rtseed_logger_dropped_total",
      "RtLogger records lost because the log ring was full");
}

Telemetry::~Telemetry() {
  // Uninstall only our own recorder: a later Telemetry may have taken the
  // global slot (the injector install pattern — last wins, owner clears).
  if (flight_ != nullptr) {
    FlightRecorder* expected = flight_.get();
    detail::g_flight_recorder.compare_exchange_strong(
        expected, nullptr, std::memory_order_acq_rel);
  }
}

common::u64 Telemetry::now() const {
  switch (options_.clock) {
    case ClockDomain::kTsc:
      return rt::rdtscp_now();
    case ClockDomain::kMonotonic:
      return static_cast<common::u64>(common::monotonic_now());
    case ClockDomain::kVirtual:
      return 0;
  }
  return 0;
}

TraceBuffer* Telemetry::register_thread(std::string name, common::CpuId cpu) {
  std::lock_guard lock(mutex_);
  const auto capacity =
      round_up_pow2(std::max<common::usize>(2, options_.events_per_thread));
  threads_.push_back(
      {std::make_unique<TraceBuffer>(std::move(name), cpu, capacity), {}});
  TraceBuffer* buffer = threads_.back().buffer.get();
  if (flight_ != nullptr) {
    buffer->set_flight_ring(flight_->register_thread(buffer->thread_name()));
  }
  return buffer;
}

void Telemetry::set_task_name(common::TaskId task, std::string name) {
  if (task < 0) return;
  std::lock_guard lock(mutex_);
  const auto i = static_cast<common::usize>(task);
  if (task_names_.size() <= i) task_names_.resize(i + 1);
  task_names_[i] = std::move(name);
}

TaskMetrics Telemetry::register_task_metrics(
    const std::string& task_name, const std::string& termination_strategy) {
  const Labels task_label = {{"task", task_name}};
  TaskMetrics tm;
  tm.jobs_released = metrics_.counter(
      "rtseed_jobs_released_total", "Jobs released (periodic activations)",
      task_label);
  tm.jobs_completed = metrics_.counter(
      "rtseed_jobs_completed_total", "Jobs whose wind-up part completed",
      task_label);
  tm.deadline_misses = metrics_.counter(
      "rtseed_deadline_misses_total",
      "Jobs whose wind-up part completed past the deadline", task_label);
  tm.optional_completed = metrics_.counter(
      "rtseed_optional_completed_total",
      "Optional parts that completed before the optional deadline",
      task_label);
  tm.optional_terminated = metrics_.counter(
      "rtseed_optional_terminated_total",
      "Optional parts terminated at the optional deadline",
      {{"task", task_name}, {"strategy", termination_strategy}});
  tm.optional_discarded = metrics_.counter(
      "rtseed_optional_discarded_total",
      "Optional parts discarded (mandatory part missed the OD)", task_label);
  tm.callback_errors = metrics_.counter(
      "rtseed_callback_errors_total",
      "User-callback exceptions absorbed by the middleware", task_label);
  tm.budget_overruns = metrics_.counter(
      "rtseed_budget_overruns_total",
      "Mandatory/wind-up parts that ran past their WCET budget", task_label);
  tm.jobs_aborted = metrics_.counter(
      "rtseed_jobs_aborted_total",
      "Jobs cut short at a checkpoint by the overrun policy", task_label);
  tm.optional_shed = metrics_.counter(
      "rtseed_optional_shed_total",
      "Optional parts withheld by the overload circuit breaker", task_label);
  tm.breaker_transitions = metrics_.counter(
      "rtseed_breaker_transitions_total",
      "Circuit-breaker state transitions", task_label);
  tm.breaker_state = metrics_.gauge(
      "rtseed_breaker_state",
      "Circuit-breaker state (0 closed, 1 open, 2 half-open)", task_label);
  tm.breaker_shed_level = metrics_.gauge(
      "rtseed_breaker_shed_level",
      "Current shed level (np is shifted right by this)", task_label);
  tm.wake_retries = metrics_.counter(
      "rtseed_wake_retries_total",
      "Wakes re-issued by the lost-wake recovery path", task_label);

  // The four middleware overheads of the paper's evaluation as
  // log-bucketed tail histograms in NANOSECONDS: Δm/Δb/Δs are
  // thread-wakeup-scale, Δe includes timer delivery and can reach
  // milliseconds under load — one bucket geometry covers both regimes
  // with ~3% relative error and exact p50/p99/p99.9/max.
  auto overhead = [&](const char* delta) {
    return metrics_.hdr_histogram(
        "rtseed_overhead_nanoseconds",
        "Middleware overheads (delta-m/b/s/e) per job, nanoseconds",
        {{"task", task_name}, {"delta", delta}});
  };
  tm.delta_m = overhead("m");
  tm.delta_b = overhead("b");
  tm.delta_s = overhead("s");
  tm.delta_e = overhead("e");
  tm.response_time = metrics_.hdr_histogram(
      "rtseed_response_time_nanoseconds",
      "Job response time (release to wind-up end), nanoseconds", task_label);
  return tm;
}

void Telemetry::sync_mirrored_counters_locked() {
  common::u64 dropped = 0;
  for (const auto& slot : threads_) dropped += slot.buffer->dropped();
  trace_dropped_total_->sync_to(dropped);
  logger_dropped_total_->sync_to(common::global_logger().dropped());
}

TelemetrySnapshot Telemetry::snapshot() {
  std::lock_guard lock(mutex_);
  sync_mirrored_counters_locked();
  TelemetrySnapshot snap;
  snap.clock = options_.clock;
  snap.task_names = task_names_;
  snap.threads.reserve(threads_.size());
  for (auto& slot : threads_) {
    auto fresh = slot.buffer->drain();
    slot.collected.insert(slot.collected.end(), fresh.begin(), fresh.end());
    ThreadTrace t;
    t.name = slot.buffer->thread_name();
    t.cpu = slot.buffer->cpu();
    t.dropped = slot.buffer->dropped();
    t.events = slot.collected;
    snap.threads.push_back(std::move(t));
  }
  return snap;
}

std::string Telemetry::summary() {
  const auto snap = snapshot();
  std::string out = "=== telemetry (clock: ";
  out += clock_domain_name(snap.clock);
  out += ") ===\n";

  if (!snap.threads.empty()) {
    common::Table threads({"thread", "cpu", "events", "dropped"});
    for (const auto& t : snap.threads) {
      threads.add_row({t.name,
                       t.cpu == common::kInvalidCpu ? "-"
                                                    : std::to_string(t.cpu),
                       std::to_string(t.events.size()),
                       std::to_string(t.dropped)});
    }
    out += threads.render();
  }

  common::Table table(
      {"metric", "labels", "value", "p50", "p99", "p99.9", "max"});
  for (const auto& entry : metrics_.entries()) {
    std::string labels;
    for (const auto& [k, v] : entry.labels) {
      if (!labels.empty()) labels += ",";
      labels += k + "=" + v;
    }
    switch (entry.type) {
      case MetricType::kCounter:
        table.add_row({entry.name, labels,
                       std::to_string(entry.counter->value()), "-", "-", "-",
                       "-"});
        break;
      case MetricType::kGauge:
        table.add_row({entry.name, labels,
                       common::format_double(entry.gauge->value(), 3), "-",
                       "-", "-", "-"});
        break;
      case MetricType::kHistogram: {
        const auto h = entry.histogram->materialize();
        const auto n = entry.histogram->count();
        const double mean =
            n == 0 ? 0.0
                   : entry.histogram->sum() / static_cast<double>(n);
        // Out-of-range samples must not disappear from the rendering.
        std::string value = "n=" + std::to_string(n) +
                            " mean=" + common::format_double(mean, 1);
        if (entry.histogram->underflow() > 0) {
          value += " uf=" + std::to_string(entry.histogram->underflow());
        }
        if (entry.histogram->overflow() > 0) {
          value += " of=" + std::to_string(entry.histogram->overflow());
        }
        table.add_row({entry.name, labels, std::move(value),
                       common::format_double(h.percentile(0.50), 1),
                       common::format_double(h.percentile(0.99), 1),
                       common::format_double(h.percentile(0.999), 1), "-"});
        break;
      }
      case MetricType::kHdrHistogram: {
        const auto* h = entry.hdr;
        table.add_row({entry.name, labels,
                       "n=" + std::to_string(h->count()) +
                           " mean=" + common::format_double(h->mean(), 1),
                       std::to_string(h->percentile(0.50)),
                       std::to_string(h->percentile(0.99)),
                       std::to_string(h->percentile(0.999)),
                       std::to_string(h->max_value())});
        break;
      }
    }
  }
  out += table.render();
  return out;
}

}  // namespace rtseed::obs
