// Deadline-miss attribution: from raw event rings to answered questions.
//
// The event schema (obs/trace_event.hpp) records WHAT happened; this layer
// reconstructs per-job timelines out of the drained rings and answers WHY:
// it decomposes each job's response time into phases (wake latency,
// mandatory body, hand-off, optional execution, wind-up, stolen time) and
// classifies every deadline miss and every optional-part termination with
// a root cause, joining the obs stream with src/fault records (injector
// fire log, supervisor kills, budget overruns, breaker sheds).
//
// Attribution is pure post-processing: it runs on a TelemetrySnapshot
// copy, never touches the live rings, and works identically on native
// (TSC) and simulated (virtual-nanosecond) runs — the JSON it emits uses
// one schema ("rtseed-attribution-v1") for both, which the test suite
// checks key-for-key.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "fault/injector.hpp"
#include "obs/telemetry.hpp"

namespace rtseed::obs {

/// Why a job missed its deadline or had optional parts cut short.  The
/// classifier assigns the MOST SPECIFIC cause whose evidence is present
/// (top of this list wins); kUnknown is reserved for incomplete timelines
/// (ring overflow dropped the job's events), never for "no idea".
enum class RootCause : common::u8 {
  kNone = 0,        ///< nothing to explain (met deadline / nothing cut)
  kInjectedFault,   ///< a chaos-injector fault fired inside the job window
  kSupervisorKill,  ///< the supervisor killed a stalled optional worker
  kShardFailover,   ///< a shard-process outage window overlapped the job
  kBudgetOverrun,   ///< the budget watchdog fired during the job
  kCircuitBreakerShed,  ///< the overload breaker withheld optional parts
  kClockAnomaly,    ///< the periodic clock misbehaved in the window
  kMandatoryOverrun,    ///< mandatory ran past OD; optionals were discarded
  kOptionalOverrun,     ///< optionals terminated at OD (normal imprecise op)
  kWakeLatency,     ///< release-to-mandatory wake latency explains the miss
  kPreempted,       ///< time stolen by higher-priority work explains it
  kOverload,        ///< residual: demand simply exceeded the budget
  kUnknown,         ///< incomplete timeline (events were dropped)
  kCount,
};

inline constexpr int kNumRootCauses = static_cast<int>(RootCause::kCount);

const char* root_cause_name(RootCause cause);

/// Response-time decomposition, nanoseconds.  The phases are disjoint and
/// (up to clamping) sum to `response`; `preempted` is the residual the
/// other phases do not account for — time the job was runnable but not
/// running.
struct PhaseBreakdown {
  common::i64 wake = 0;           ///< release -> first mandatory-begin
  common::i64 mandatory = 0;      ///< Σ mandatory slices (sim: preemptible)
  common::i64 handoff = 0;        ///< Σ signal slices (the Δb window)
  common::i64 optional = 0;       ///< first optional-begin -> last close
  common::i64 optional_wait = 0;  ///< last close -> windup-begin (OD wait)
  common::i64 windup = 0;         ///< Σ wind-up slices
  common::i64 preempted = 0;      ///< residual stolen time (clamped >= 0)
  common::i64 response = 0;       ///< release -> wind-up end
};

/// One job, reconstructed from the event stream.
struct JobTimeline {
  common::TaskId task = common::kInvalidTask;
  common::JobId job = 0;
  common::u64 release = 0;  ///< raw clock value (TSC ticks or virtual ns)
  common::u64 finish = 0;   ///< raw clock value of wind-up end / job finish
  bool complete = false;    ///< release and finish both observed
  bool missed = false;
  common::i64 lateness_ns = 0;  ///< from the kDeadlineMiss event arg
  int optional_started = 0;
  int optional_completed = 0;
  int optional_terminated = 0;  ///< cut at the optional deadline
  int shed_parts = 0;           ///< withheld by the circuit breaker
  bool optionals_discarded = false;
  bool budget_overrun = false;
  bool supervisor_kill = false;
  bool clock_anomaly = false;
  bool injected_fault = false;  ///< an injector fire landed in the window
  bool shard_failover = false;  ///< a shard outage overlapped [release, finish]
  PhaseBreakdown phases;
  RootCause miss_cause = RootCause::kNone;
  RootCause termination_cause = RootCause::kNone;
};

/// Per-task rollup: job counts plus cause histograms.
struct TaskAttribution {
  common::TaskId task = common::kInvalidTask;
  std::string name;
  long jobs = 0;
  long complete_jobs = 0;
  long misses = 0;
  long terminations = 0;  ///< jobs with >= 1 optional part cut short
  std::array<long, kNumRootCauses> miss_causes{};
  std::array<long, kNumRootCauses> termination_causes{};
};

/// One shard-process outage, [begin, end] in the SAME clock domain as the
/// snapshot (the caller converts shard::FailoverWindow's CLOCK_MONOTONIC
/// stamps if the snapshot clock is TSC).  end == 0 means still open.
struct FailoverWindowRef {
  common::u64 begin = 0;
  common::u64 end = 0;
};

struct AttributionOptions {
  /// Injector fire log (fault::Injector::fire_log()), stamped in the SAME
  /// clock domain as the snapshot (Runtime installs the telemetry clock as
  /// the injector's timestamp source).  Empty when no chaos ran.
  std::vector<fault::FireRecord> fault_fires;
  /// Shard outages (shard::ProcessShardRuntime::failover_windows()); a
  /// miss whose job window overlaps one is attributed to shard-failover.
  std::vector<FailoverWindowRef> failover_windows;
};

struct AttributionReport {
  ClockDomain clock = ClockDomain::kTsc;
  common::u64 dropped_events = 0;  ///< ring overflow across all threads
  std::vector<JobTimeline> jobs;   ///< ordered by (task, job)
  std::vector<TaskAttribution> tasks;

  /// Self-contained JSON document, schema "rtseed-attribution-v1".
  std::string to_json() const;
  /// Human-readable cause table (common::Table).
  std::string to_ascii() const;
};

/// Assembles timelines and classifies every miss and termination.
AttributionReport attribute_jobs(const TelemetrySnapshot& snapshot,
                                 const AttributionOptions& options = {});

}  // namespace rtseed::obs
