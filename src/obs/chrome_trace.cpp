#include "obs/chrome_trace.hpp"

#include <cstdio>

namespace rtseed::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void ChromeTraceBuilder::set_process_name(int pid, std::string name) {
  meta_.push_back({pid, 0, true, std::move(name)});
}

void ChromeTraceBuilder::set_thread_name(int pid, int tid, std::string name) {
  meta_.push_back({pid, tid, false, std::move(name)});
}

void ChromeTraceBuilder::add_complete(std::string name, int pid, int tid,
                                      double ts_us, double dur_us) {
  events_.push_back({std::move(name), pid, tid, ts_us, dur_us, false});
}

void ChromeTraceBuilder::add_instant(std::string name, int pid, int tid,
                                     double ts_us) {
  events_.push_back({std::move(name), pid, tid, ts_us, 0.0, true});
}

common::usize ChromeTraceBuilder::num_events() const {
  return meta_.size() + events_.size();
}

std::string ChromeTraceBuilder::render() const {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  char buf[128];
  auto comma = [&] {
    if (!first) out += ",\n";
    first = false;
  };
  for (const auto& m : meta_) {
    comma();
    out += "{\"name\":\"";
    out += m.is_process ? "process_name" : "thread_name";
    out += "\",\"ph\":\"M\",";
    std::snprintf(buf, sizeof(buf), "\"pid\":%d,\"tid\":%d,", m.pid, m.tid);
    out += buf;
    out += "\"args\":{\"name\":\"" + json_escape(m.name) + "\"}}";
  }
  for (const auto& e : events_) {
    comma();
    out += "{\"name\":\"" + json_escape(e.name) + "\",";
    if (e.instant) {
      std::snprintf(buf, sizeof(buf),
                    "\"ph\":\"i\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,"
                    "\"s\":\"t\"}",
                    e.pid, e.tid, e.ts_us);
    } else {
      std::snprintf(buf, sizeof(buf),
                    "\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,"
                    "\"dur\":%.3f}",
                    e.pid, e.tid, e.ts_us, e.dur_us);
    }
    out += buf;
  }
  out += "\n]}\n";
  return out;
}

}  // namespace rtseed::obs
