// Global operator new/delete overrides that count every heap allocation
// the process makes — the instrument behind the "steady-state hot path
// allocates nothing" gate (DESIGN.md §11).
//
// Built as the `rtseed_alloc_hook` OBJECT library and linked ONLY by
// binaries that audit allocations (the zero-alloc tier-1 tests and
// bench/micro_dispatch).  Object-library linkage guarantees these
// overrides land in the final link; nothing else in the tree ever pulls
// them in by accident.
//
// Disabled under ASan/TSan: the sanitizer runtimes interpose the
// allocator themselves and replacing operator new underneath them breaks
// their bookkeeping (new/delete mismatch reports, quarantine).  In those
// builds this TU is empty and alloc_hook_installed() stays false.
#include "obs/hotpath_audit.hpp"

#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define RTSEED_ALLOC_HOOK_DISABLED 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__) || \
    defined(RTSEED_TSAN)
#define RTSEED_ALLOC_HOOK_DISABLED 1
#endif

#ifndef RTSEED_ALLOC_HOOK_DISABLED

#include <cstdlib>
#include <new>

namespace {

using rtseed::obs::detail::g_alloc_bytes;
using rtseed::obs::detail::g_alloc_calls;
using rtseed::obs::detail::g_free_calls;

void* counted_alloc(std::size_t size) {
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(static_cast<std::int64_t>(size),
                          std::memory_order_relaxed);
  // malloc(0) may return nullptr legally; operator new must not.
  return std::malloc(size == 0 ? 1 : size);
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(static_cast<std::int64_t>(size),
                          std::memory_order_relaxed);
  if (align < sizeof(void*)) align = sizeof(void*);
  void* ptr = nullptr;
  if (posix_memalign(&ptr, align, size == 0 ? align : size) != 0) {
    return nullptr;
  }
  return ptr;
}

void counted_free(void* ptr) {
  if (ptr == nullptr) return;
  g_free_calls.fetch_add(1, std::memory_order_relaxed);
  std::free(ptr);
}

// Runs during static initialization of any binary linking the hook.
const bool g_installed_marker = [] {
  rtseed::obs::detail::g_hook_installed.store(true,
                                              std::memory_order_relaxed);
  return true;
}();

}  // namespace

void* operator new(std::size_t size) {
  void* ptr = counted_alloc(size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* ptr = counted_aligned_alloc(size, static_cast<std::size_t>(align));
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* ptr) noexcept { counted_free(ptr); }
void operator delete[](void* ptr) noexcept { counted_free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { counted_free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { counted_free(ptr); }
void operator delete(void* ptr, std::align_val_t) noexcept {
  counted_free(ptr);
}
void operator delete[](void* ptr, std::align_val_t) noexcept {
  counted_free(ptr);
}
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  counted_free(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  counted_free(ptr);
}
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  counted_free(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  counted_free(ptr);
}

#endif  // RTSEED_ALLOC_HOOK_DISABLED
