// Hot-path audit: machine-checkable counters for the two resources the
// steady-state per-job path must not consume — heap allocations and wake
// syscalls (DESIGN.md §11).
//
// Allocation counting is OPT-IN per binary: the counters live here (in
// rtseed_obs, always linkable) but only tick when the binary also links
// the `rtseed_alloc_hook` object library, whose global operator
// new/delete overrides bump them.  Binaries that don't link the hook pay
// nothing and read zeros; `alloc_hook_installed()` says which world you
// are in, so audits can fail loudly instead of vacuously passing.
//
// The hook is NOT built under AddressSanitizer/ThreadSanitizer — the
// sanitizer runtimes own the allocator there, and replacing operator new
// underneath them degrades their reports.  The zero-alloc tier-1 tests
// are excluded from those configurations too (tests/CMakeLists.txt).
#pragma once

#include <atomic>
#include <cstdint>

#include "rt/futex.hpp"

namespace rtseed::obs {

namespace detail {
// Bumped by alloc_hook.cpp's operator new/delete overrides.  Relaxed:
// the counters are statistics, never synchronization.
extern std::atomic<std::int64_t> g_alloc_calls;
extern std::atomic<std::int64_t> g_free_calls;
extern std::atomic<std::int64_t> g_alloc_bytes;
extern std::atomic<bool> g_hook_installed;
}  // namespace detail

struct AllocStats {
  std::int64_t alloc_calls = 0;  ///< global operator new invocations
  std::int64_t free_calls = 0;   ///< global operator delete invocations
  std::int64_t alloc_bytes = 0;  ///< total bytes requested from new
};

/// Process-wide allocation counters (all zeros unless the hook is linked).
AllocStats alloc_stats();

/// True when this binary links rtseed_alloc_hook and the overrides are
/// live.  Audits should assert this before trusting a zero delta.
bool alloc_hook_installed();

/// One snapshot of every hot-path resource counter.
struct HotpathSnapshot {
  AllocStats alloc;
  rt::WakeStats wake;
};

HotpathSnapshot hotpath_snapshot();

/// Delta-measurement over a scope: snapshot at construction, subtract on
/// demand.  Counters are process-global, so concurrent threads' activity
/// is included — which is exactly right for auditing a pool round (the
/// workers' allocations count against the round too).
class HotpathAudit {
 public:
  HotpathAudit() : begin_(hotpath_snapshot()) {}

  AllocStats alloc_delta() const {
    const AllocStats now = alloc_stats();
    return {now.alloc_calls - begin_.alloc.alloc_calls,
            now.free_calls - begin_.alloc.free_calls,
            now.alloc_bytes - begin_.alloc.alloc_bytes};
  }

  rt::WakeStats wake_delta() const {
    const rt::WakeStats now = rt::wake_stats();
    return {now.wake_calls - begin_.wake.wake_calls,
            now.wait_sleeps - begin_.wake.wait_sleeps};
  }

 private:
  HotpathSnapshot begin_;
};

}  // namespace rtseed::obs
