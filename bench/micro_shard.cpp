// Micro-benchmark of the sharded runtime's cross-shard path (ISSUE 8):
// aggregate tick throughput of sharded pipelines over the zero-allocation
// transport, and — what CI gates on — the allocation count of the
// cross-shard path and the modeled 2-shard speedup.
//
//   [native]  A/B: 1 shard vs 2 shards over the same transport, one
//             consumer thread per shard running a real indicator round
//             per tick, one router fanning ticks out by symbol hash.
//             Reported with host.cpus: on a single-core runner the
//             native speedup measures timeslicing, not parallelism —
//             which is why the gate reads the model, not this number.
//   [hop]     acquire -> post -> poll -> release round trip.
//   [model]   sim::PipelineModel calibrated from single-threaded
//             measurements of the SAME consumer work and router
//             dispatch; modeled_speedup(2) is the ≥1.8x acceptance gate
//             (S parallel pipelines behind one router, Amdahl-bounded).
//   [sim]     2-shard miss rate, native ShardedRuntime vs
//             sim::simulate_sharded on the same task set — the two must
//             agree within 10 points at comfortable load.
//
// This binary links rtseed_alloc_hook: `steady_state_allocs` counts heap
// allocations across every measured single-threaded transport window
// (calibration + hop), and gates.json pins it to EXACTLY ZERO.
//
// Flags: --json out.json   machine-readable results (CI archives this as
//                          BENCH_shard.json)
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/time.hpp"
#include "common/topology.hpp"
#include "obs/hotpath_audit.hpp"
#include "sched/sharded.hpp"
#include "shard/sharded_runtime.hpp"
#include "shard/transport.hpp"
#include "sim/sharded_topology.hpp"
#include "trading/indicators.hpp"

namespace {

using rtseed::common::millis;
using rtseed::common::monotonic_now;
using rtseed::common::Nanos;
namespace common = rtseed::common;
namespace core = rtseed::core;
namespace obs = rtseed::obs;
namespace sched = rtseed::sched;
namespace shard = rtseed::shard;
namespace sim = rtseed::sim;
namespace trading = rtseed::trading;

constexpr int kFastWindow = 64;
constexpr int kSlowWindow = 256;

// The per-tick shard work used EVERYWHERE below (native consumers and
// the model calibration), so the modeled pipelines drain at the measured
// native service rate.  It is the steady-state indicator refresh a
// trading shard performs on every tick — the volatility term structure
// (fast/slow rolling stddev), bands, RSI, and MACD — heap-free after
// construction.
struct ShardWork {
  ShardWork()
      : fast_vol(kFastWindow, fast_storage),
        slow_vol(kSlowWindow, slow_storage),
        bands(20, 2.0),
        rsi(14) {}

  void consume(const shard::ShardMessage& msg) {
    const double price = msg.body.tick.price;
    fast_vol.update(price);
    slow_vol.update(price);
    bands.update(price);
    rsi.update(price);
    macd.update(price);
    const double vol_ratio =
        slow_vol.ready() && slow_vol.value() > 0.0
            ? fast_vol.value() / slow_vol.value()
            : 1.0;
    sink += vol_ratio + rsi.value() + macd.value().histogram +
            (bands.ready() ? bands.value().percent_b : 0.5);
  }

  double fast_storage[kFastWindow];
  double slow_storage[kSlowWindow];
  trading::RollingStdDev fast_vol;
  trading::RollingStdDev slow_vol;
  trading::BollingerBands bands;
  trading::Rsi rsi;
  trading::Macd macd;
  double sink = 0.0;
};

inline void fill_tick(shard::ShardMessage* msg, common::u32 sym,
                      common::u64 seq) {
  msg->kind = shard::MessageKind::kTick;
  msg->symbol = sym;
  msg->seq = seq;
  // Real spread: a flat series would walk the EMA chains into subnormal
  // floats, whose microcoded arithmetic skews the service calibration.
  msg->body.tick.price = 100.0 + 0.01 * static_cast<double>(seq % 251);
}

volatile double g_sink = 0.0;

// ---------------------------------------------------------------------------
// [native] aggregate throughput, 1 vs 2 shards

double native_ticks_per_s(int shards, long total_ticks) {
  auto transport = shard::ShardTransport::create(shards);
  if (!transport.has_value()) return -1.0;
  auto& t = **transport;

  std::atomic<long> consumed{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> consumers;
  for (int s = 0; s < shards; ++s) {
    consumers.emplace_back([&, s] {
      ShardWork work;
      while (!stop.load(std::memory_order_relaxed)) {
        shard::ShardMessage* msg = t.poll(s);
        if (msg == nullptr) {
          std::this_thread::yield();
          continue;
        }
        work.consume(*msg);
        t.release(msg);
        consumed.fetch_add(1, std::memory_order_relaxed);
      }
      g_sink = work.sink;
    });
  }

  const Nanos start = monotonic_now();
  long sent = 0;
  common::u32 sym = 0;
  while (sent < total_ticks) {
    shard::ShardMessage* msg = t.acquire();
    if (msg == nullptr) {
      std::this_thread::yield();  // consumers lag: let them drain
      continue;
    }
    fill_tick(msg, sym, static_cast<common::u64>(sent));
    if (t.post(sched::home_shard(sym, shards), msg)) {
      ++sent;
      ++sym;
    }
  }
  while (consumed.load(std::memory_order_relaxed) < total_ticks) {
    std::this_thread::yield();
  }
  const Nanos elapsed = monotonic_now() - start;
  stop.store(true);
  for (auto& c : consumers) c.join();

  return elapsed > 0 ? static_cast<double>(total_ticks) * 1e9 /
                           static_cast<double>(elapsed)
                     : -1.0;
}

// ---------------------------------------------------------------------------
// [model] single-threaded calibration of the pipeline terms

struct Calibration {
  double tick_service_ns = -1.0;
  double router_dispatch_ns = -1.0;
  double hop_ns = -1.0;
  long allocs = -1;
};

// Each term is the BEST of kReps repetitions: on a shared/1-cpu host,
// scheduler preemption only ever inflates a window, so min-of-means is
// the stable per-tick cost and keeps the modeled service/dispatch ratio
// (the gated quantity) reproducible.
Calibration calibrate(long ticks_per_rep) {
  Calibration out;
  auto transport = shard::ShardTransport::create(1);
  if (!transport.has_value()) return out;
  auto& t = **transport;

  constexpr int kReps = 7;
  constexpr long kBatch = 256;
  ShardWork work;  // constructed before the audit: ctor may allocate

  const obs::HotpathAudit audit;

  double best_service = -1.0, best_dispatch = -1.0, best_hop = -1.0;
  for (int rep = 0; rep < kReps; ++rep) {
    // Shard-side service: poll + indicator round + release, timed over
    // drains of pre-filled batches.
    Nanos service_time = 0;
    long done = 0;
    while (done < ticks_per_rep) {
      for (long i = 0; i < kBatch; ++i) {
        shard::ShardMessage* msg = t.acquire();
        fill_tick(msg, 0, static_cast<common::u64>(done + i));
        t.post(0, msg);
      }
      const Nanos t0 = monotonic_now();
      for (long i = 0; i < kBatch; ++i) {
        shard::ShardMessage* msg = t.poll(0);
        work.consume(*msg);
        t.release(msg);
      }
      service_time += monotonic_now() - t0;
      done += kBatch;
    }
    const double service =
        static_cast<double>(service_time) / static_cast<double>(done);
    if (best_service < 0.0 || service < best_service) best_service = service;

    // Router-side dispatch: acquire + fill + post, drains untimed.
    Nanos dispatch_time = 0;
    done = 0;
    while (done < ticks_per_rep) {
      const Nanos t0 = monotonic_now();
      for (long i = 0; i < kBatch; ++i) {
        shard::ShardMessage* msg = t.acquire();
        fill_tick(msg, 0, static_cast<common::u64>(done + i));
        t.post(0, msg);
      }
      dispatch_time += monotonic_now() - t0;
      for (long i = 0; i < kBatch; ++i) t.release(t.poll(0));
      done += kBatch;
    }
    const double dispatch =
        static_cast<double>(dispatch_time) / static_cast<double>(done);
    if (best_dispatch < 0.0 || dispatch < best_dispatch) {
      best_dispatch = dispatch;
    }

    // Hop: full acquire -> post -> poll -> release round trip, one at a
    // time (what a spilled tick pays on top of home-shard delivery).
    const Nanos h0 = monotonic_now();
    for (long i = 0; i < ticks_per_rep; ++i) {
      shard::ShardMessage* msg = t.acquire();
      fill_tick(msg, 0, static_cast<common::u64>(i));
      t.post(0, msg);
      t.release(t.poll(0));
    }
    const double hop = static_cast<double>(monotonic_now() - h0) /
                       static_cast<double>(ticks_per_rep);
    if (best_hop < 0.0 || hop < best_hop) best_hop = hop;
  }
  out.tick_service_ns = best_service;
  out.router_dispatch_ns = best_dispatch;
  out.hop_ns = best_hop;

  out.allocs = audit.alloc_delta().alloc_calls;
  g_sink = work.sink;
  return out;
}

// ---------------------------------------------------------------------------
// [sim] native 2-shard miss rate vs the simulator's

struct MissRates {
  double native_rate = -1.0;
  double sim_rate = -1.0;
  double diff = -1.0;
};

void burn(Nanos amount) {
  const Nanos until = monotonic_now() + amount;
  while (monotonic_now() < until) {
  }
}

MissRates miss_rate_comparison() {
  MissRates out;
  constexpr int kSymbols = 4;
  constexpr long kJobs = 25;
  const Nanos period = millis(20);
  const Nanos mandatory = millis(2);
  const Nanos windup = millis(1);
  const Nanos optional = millis(5);
  // The bodies burn far less than their WCETs: comfortable load, where
  // native and simulated behaviour must both be miss-free.
  const Nanos body_burn = common::micros(200);

  shard::ShardedRuntimeOptions options;
  options.base.topology = common::Topology::uniform(2, 1);
  options.base.initial_offset = millis(5);
  options.base.termination = core::TerminationStrategy::kPeriodicCheck;
  options.num_shards = 2;
  options.from_env = false;
  shard::ShardedRuntime sr(options);
  for (common::u32 sym = 0; sym < kSymbols; ++sym) {
    core::TaskConfig tc;
    tc.params.name = "bench" + std::to_string(sym);
    tc.params.period = period;
    tc.params.mandatory = mandatory;
    tc.params.windup = windup;
    tc.params.optional = {optional};
    tc.num_jobs = kJobs;
    tc.callbacks.mandatory = [body_burn](const core::JobContext&) {
      burn(body_burn);
    };
    tc.callbacks.optional = [](const core::JobContext&, int,
                               core::StopToken& token) {
      while (!token.should_stop()) {
      }
    };
    tc.callbacks.windup = [](const core::JobContext&) {};
    if (!sr.admit(std::move(tc), sym).is_ok()) return out;
  }
  if (!sr.start().is_ok()) return out;
  sr.wait_all_finished();
  const auto report = sr.stop_and_report();
  long jobs = 0, misses = 0;
  for (const auto& shard_report : report.shards) {
    for (const auto& task : shard_report.tasks) {
      jobs += task.qos.jobs;
      misses += task.qos.deadline_misses;
    }
  }
  if (jobs > 0) {
    out.native_rate = static_cast<double>(misses) / static_cast<double>(jobs);
  }

  // The same shape through sim::ShardedTopology.
  std::vector<sched::SymbolTaskSet> groups;
  for (common::u32 sym = 0; sym < kSymbols; ++sym) {
    sched::SymbolTaskSet group;
    group.symbol = sym;
    sched::ImpreciseTaskParams params;
    params.name = "bench" + std::to_string(sym);
    params.period = period;
    params.mandatory = mandatory;
    params.windup = windup;
    params.optional = {optional};
    group.tasks.add(params);
    groups.push_back(std::move(group));
  }
  sim::ShardedSimOptions sim_options;
  sim_options.per_shard.horizon = period * kJobs;
  const auto simulated = sim::simulate_sharded(groups, {1, 1}, sim_options);
  out.sim_rate = simulated.miss_rate();

  if (out.native_rate >= 0.0 && out.sim_rate >= 0.0) {
    out.diff = out.native_rate > out.sim_rate
                   ? out.native_rate - out.sim_rate
                   : out.sim_rate - out.native_rate;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json out.json]\n", argv[0]);
      return 2;
    }
  }

  std::printf("=== micro_shard: sharded runtimes over the transport ===\n\n");

  const int cpus = common::Topology::native().num_cores();
  constexpr long kNativeTicks = 100'000;
  const double one = native_ticks_per_s(1, kNativeTicks);
  const double two = native_ticks_per_s(2, kNativeTicks);
  const double native_speedup = one > 0 ? two / one : -1.0;
  std::printf("[native] 1 shard: %10.0f ticks/s\n", one);
  std::printf("[native] 2 shards: %9.0f ticks/s  speedup %.2fx "
              "(host has %d cpu%s)\n",
              two, native_speedup, cpus, cpus == 1 ? "" : "s");

  const Calibration cal = calibrate(50'000);
  std::printf("[model]  tick service %.1f ns  router dispatch %.1f ns  "
              "hop %.1f ns\n",
              cal.tick_service_ns, cal.router_dispatch_ns, cal.hop_ns);

  sim::PipelineModel model;
  model.tick_service = static_cast<Nanos>(cal.tick_service_ns);
  model.router_dispatch = static_cast<Nanos>(cal.router_dispatch_ns);
  model.hop_latency = static_cast<Nanos>(cal.hop_ns);
  const double speedup2 = sim::modeled_speedup(model, 2);
  const double speedup4 = sim::modeled_speedup(model, 4);
  std::printf("[model]  modeled speedup: 2 shards %.2fx, 4 shards %.2fx\n",
              speedup2, speedup4);

  const MissRates rates = miss_rate_comparison();
  std::printf("[sim]    2-shard miss rate: native %.4f  simulated %.4f  "
              "|diff| %.4f\n",
              rates.native_rate, rates.sim_rate, rates.diff);

  const bool hook = obs::alloc_hook_installed();
  std::printf("\nalloc hook: %s   cross-shard path allocs: %ld\n",
              hook ? "installed" : "ABSENT", cal.allocs);

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"micro_shard\",\n");
    std::fprintf(f, "  \"host\": {\"cpus\": %d},\n", cpus);
    std::fprintf(f, "  \"alloc_hook\": %s,\n", hook ? "true" : "false");
    std::fprintf(f, "  \"steady_state_allocs\": %ld,\n", cal.allocs);
    std::fprintf(f, "  \"hop_ns\": %.1f,\n", cal.hop_ns);
    std::fprintf(f,
                 "  \"native\": {\"ticks\": %ld, "
                 "\"one_shard_ticks_per_s\": %.0f, "
                 "\"two_shard_ticks_per_s\": %.0f, \"speedup\": %.3f},\n",
                 kNativeTicks, one, two, native_speedup);
    std::fprintf(f,
                 "  \"model\": {\"tick_service_ns\": %.1f, "
                 "\"router_dispatch_ns\": %.1f, "
                 "\"modeled_speedup_2\": %.3f, "
                 "\"modeled_speedup_4\": %.3f},\n",
                 cal.tick_service_ns, cal.router_dispatch_ns, speedup2,
                 speedup4);
    std::fprintf(f,
                 "  \"sim\": {\"native_miss_rate\": %.4f, "
                 "\"sim_miss_rate\": %.4f, \"miss_rate_diff\": %.4f}\n",
                 rates.native_rate, rates.sim_rate, rates.diff);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
