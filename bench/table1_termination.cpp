// Table I — implementation of the termination of parallel optional parts,
// measured natively on this host with real POSIX timers and signals.
//
// For each strategy we run an always-overrunning optional body and record
//   * any-time termination: the latency between the optional deadline and
//     the instant the body actually stopped (the paper's check mark means
//     "bounded by signal latency, not by the body's structure");
//   * signal-mask restoration: whether the deadline signal is deliverable
//     again right after termination (sigsetjmp/siglongjmp restores it;
//     escaping a handler with a C++ exception leaves it blocked).
//
// The periodic-check row uses a body that polls every ~25 ms, showing the
// QoS degradation the paper attributes to coarse polling.
//
// Flags: --json out.json   machine-readable rows (latency percentiles +
//                          the two Table I booleans per strategy)
#include <cstdio>
#include <cstring>
#include <string>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/termination.hpp"
#include "rt/periodic_clock.hpp"
#include "rt/signal_guard.hpp"

using namespace rtseed;

namespace {

using common::millis;
using common::monotonic_now;
using common::Nanos;

struct Row {
  std::string name;
  common::Summary latency_us;  // deadline -> actual stop
  bool any_time = false;
  bool mask_restored = false;
};

core::OptionalBody overrunning_body(bool polls, Nanos poll_interval) {
  return [polls, poll_interval](core::StopToken& token) {
    volatile double sink = 1.0;
    for (;;) {
      if (polls) {
        const Nanos slice_end = monotonic_now() + poll_interval;
        while (monotonic_now() < slice_end) sink = sink * 1.0000001 + 1e-9;
        if (token.should_stop()) return;
      } else {
        for (int i = 0; i < 4000; ++i) sink = sink * 1.0000001 + 1e-9;
      }
    }
  };
}

Row measure(core::TerminationStrategy strategy, int jobs) {
  Row row;
  row.name = core::termination_strategy_name(strategy);
  const bool polls = strategy == core::TerminationStrategy::kPeriodicCheck;
  const auto body = overrunning_body(polls, millis(25));

  std::vector<double> latencies;
  bool mask_ok = true;
  // Paper-faithful mode: do NOT let the middleware repair the try-catch
  // mask leak — this bench exists to reproduce the published Table I row.
  core::TerminationOptions paper;
  paper.repair_signal_mask = false;
  for (int job = 0; job < jobs; ++job) {
    const Nanos deadline = monotonic_now() + millis(10);
    const auto result =
        core::run_with_deadline(strategy, deadline, body, paper);
    latencies.push_back(common::to_micros(result.finished_at - deadline));
    if (strategy == core::TerminationStrategy::kSigjmp) {
      mask_ok &= !rt::is_signal_blocked(core::sigjmp_signal());
    } else if (strategy == core::TerminationStrategy::kTryCatch) {
      // The paper's defect: blocked after every termination.  Repair so
      // the next job's timer can fire (as a real system would have to).
      const bool was_blocked = core::repair_signal_mask_after_trycatch();
      if (result.outcome == core::OptionalOutcome::kTerminated) {
        mask_ok &= !was_blocked;
      }
    }
  }
  row.latency_us = common::summarize(std::move(latencies));
  // "Any time": p90 termination latency within a few ms (signal latency),
  // far below the 25 ms polling period of the periodic-check body.
  row.any_time = row.latency_us.p90 < 5000.0;
  row.mask_restored = mask_ok;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json out.json]\n", argv[0]);
      return 2;
    }
  }
  constexpr int kJobs = 30;
  std::printf(
      "=== Table I: implementation of the termination of parallel optional "
      "parts ===\n(native measurement, %d jobs per strategy, overrunning "
      "bodies, OD = +10ms)\n\n",
      kJobs);

  const Row rows[] = {
      measure(core::TerminationStrategy::kSigjmp, kJobs),
      measure(core::TerminationStrategy::kPeriodicCheck, kJobs),
      measure(core::TerminationStrategy::kTryCatch, kJobs),
  };

  common::Table table({"implementation", "any-time termination",
                       "signal-mask restoration", "termination latency p50",
                       "p90 [us]"});
  for (const auto& row : rows) {
    table.add_row({row.name, row.any_time ? "yes" : "no",
                   row.mask_restored ? "yes" : "no (left blocked)",
                   common::format_double(row.latency_us.p50, 1),
                   common::format_double(row.latency_us.p90, 1)});
  }
  table.print();

  // Paper's Table I: sigsetjmp/siglongjmp = any-time + mask restored;
  // periodic check = NOT any-time; try-catch = any-time, mask NOT
  // restored.
  const bool ok = rows[0].any_time && rows[0].mask_restored &&
                  !rows[1].any_time && rows[2].any_time &&
                  !rows[2].mask_restored;

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 2;
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"table1_termination\",\n"
                 "  \"jobs\": %d,\n  \"matches_paper\": %s,\n"
                 "  \"rows\": [\n",
                 kJobs, ok ? "true" : "false");
    const size_t n = sizeof(rows) / sizeof(rows[0]);
    for (size_t i = 0; i < n; ++i) {
      const auto& s = rows[i].latency_us;
      std::fprintf(f,
                   "    {\"implementation\": \"%s\", \"any_time\": %s, "
                   "\"mask_restored\": %s,\n     \"latency_us\": "
                   "{\"count\": %zu, \"mean\": %.3f, \"p50\": %.3f, "
                   "\"p90\": %.3f, \"p99\": %.3f, \"max\": %.3f}}%s\n",
                   rows[i].name.c_str(), rows[i].any_time ? "true" : "false",
                   rows[i].mask_restored ? "true" : "false", s.count, s.mean,
                   s.p50, s.p90, s.p99, s.max, i + 1 < n ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("[json] results -> %s\n", json_path.c_str());
  }
  std::printf("\n[shape check] %s\n",
              ok ? "all three rows match the paper's Table I"
                 : "FAILED: some row diverges from the paper's Table I");
  return ok ? 0 : 1;
}
