// Figure 13 — overhead of ending the parallel optional parts (Δe).
//
// Paper: linear in np and the largest of the four overheads (timer IRQ +
// sigsetjmp-context restore + completion signalling per part); the
// CPU-Memory load dominates, and under load the one-by-one policy is the
// worst while all-by-all is the best (SMT siblings: background tasks vs
// the task's own parts).
#include "figure_common.hpp"

int main() {
  return rtseed::bench::run_overhead_figure(
      rtseed::sim::OverheadKind::kEndOptional,
      "Figure 13: overhead of ending the parallel optional parts");
}
