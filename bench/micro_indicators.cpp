// Micro-benchmarks for the technical-analysis substrate: throughput of
// each streaming indicator and of the analyzers' window computations.
// These bound how much refinement an optional part can deliver per
// millisecond of optional-deadline budget.
#include <benchmark/benchmark.h>

#include "gbench_json_main.hpp"

#include <vector>

#include "common/rng.hpp"
#include "trading/analyzers.hpp"
#include "trading/indicators.hpp"

using namespace rtseed;

namespace {

std::vector<double> random_walk(int n) {
  common::Rng rng(1);
  std::vector<double> prices;
  double p = 1.1;
  for (int i = 0; i < n; ++i) {
    p *= 1.0 + rng.normal(0.0, 1e-4);
    prices.push_back(p);
  }
  return prices;
}

void BM_Sma(benchmark::State& state) {
  const auto prices = random_walk(4096);
  trading::Sma sma(static_cast<int>(state.range(0)));
  size_t i = 0;
  for (auto _ : state) {
    sma.update(prices[i++ & 4095]);
    benchmark::DoNotOptimize(sma.value());
  }
}
BENCHMARK(BM_Sma)->Arg(20)->Arg(120);

void BM_Ema(benchmark::State& state) {
  const auto prices = random_walk(4096);
  trading::Ema ema(20);
  size_t i = 0;
  for (auto _ : state) {
    ema.update(prices[i++ & 4095]);
    benchmark::DoNotOptimize(ema.value());
  }
}
BENCHMARK(BM_Ema);

void BM_Bollinger(benchmark::State& state) {
  const auto prices = random_walk(4096);
  trading::BollingerBands bb(static_cast<int>(state.range(0)));
  size_t i = 0;
  for (auto _ : state) {
    bb.update(prices[i++ & 4095]);
    benchmark::DoNotOptimize(bb.value().percent_b);
  }
}
BENCHMARK(BM_Bollinger)->Arg(20)->Arg(60);

void BM_Rsi(benchmark::State& state) {
  const auto prices = random_walk(4096);
  trading::Rsi rsi(14);
  size_t i = 0;
  for (auto _ : state) {
    rsi.update(prices[i++ & 4095]);
    benchmark::DoNotOptimize(rsi.value());
  }
}
BENCHMARK(BM_Rsi);

void BM_Macd(benchmark::State& state) {
  const auto prices = random_walk(4096);
  trading::Macd macd;
  size_t i = 0;
  for (auto _ : state) {
    macd.update(prices[i++ & 4095]);
    benchmark::DoNotOptimize(macd.value().histogram);
  }
}
BENCHMARK(BM_Macd);

class NullSink final : public trading::ResultSink {
 public:
  void publish(const trading::AnalyzerOutput& output) override {
    benchmark::DoNotOptimize(output.signal);
  }
};

void BM_BollingerAnalyzerFullLadder(benchmark::State& state) {
  const auto prices = random_walk(512);
  trading::BollingerAnalyzer analyzer;
  NullSink sink;
  for (auto _ : state) {
    core::StopToken token(common::monotonic_now() + common::seconds(60));
    analyzer.analyze(trading::PriceWindow(prices.data(), 512), 0, token,
                     sink, nullptr);
  }
}
BENCHMARK(BM_BollingerAnalyzerFullLadder);

void BM_MonteCarloBatch(benchmark::State& state) {
  const auto prices = random_walk(512);
  NullSink sink;
  for (auto _ : state) {
    trading::MonteCarloAnalyzer analyzer(30, 64);
    // Stop after the first batch: measures per-batch refinement cost.
    core::StopToken token(common::monotonic_now());
    analyzer.analyze(trading::PriceWindow(prices.data(), 512), 0, token,
                     sink, nullptr);
  }
}
BENCHMARK(BM_MonteCarloBatch);

}  // namespace

RTSEED_BENCHMARK_JSON_MAIN()
