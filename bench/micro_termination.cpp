// Micro-benchmarks of the termination machinery: per-job cost of the
// sigsetjmp checkpoint, timer arm/disarm, and a full completed round —
// the fixed overhead every optional part pays even when it finishes early.
#include <benchmark/benchmark.h>

#include "gbench_json_main.hpp"

#include <csetjmp>

#include "core/termination.hpp"
#include "rt/oneshot_timer.hpp"
#include "rt/signal_guard.hpp"

using namespace rtseed;

namespace {

void BM_SigsetjmpCheckpoint(benchmark::State& state) {
  sigjmp_buf buf;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sigsetjmp(buf, 1));
  }
}
BENCHMARK(BM_SigsetjmpCheckpoint);

void BM_TimerArmDisarm(benchmark::State& state) {
  rt::OneShotTimer timer;
  if (!timer.create().is_ok()) {
    state.SkipWithError("timer_create failed");
    return;
  }
  (void)rt::block_signal(rt::optional_deadline_signal());
  for (auto _ : state) {
    benchmark::DoNotOptimize(timer.arm_relative(common::seconds(10)));
    benchmark::DoNotOptimize(timer.disarm());
  }
  (void)rt::unblock_signal(rt::optional_deadline_signal());
}
BENCHMARK(BM_TimerArmDisarm);

void BM_CompletedRoundSigjmp(benchmark::State& state) {
  // Full run_with_deadline with an instantly-completing body: the
  // per-part fixed cost of the paper's recommended strategy.
  for (auto _ : state) {
    const auto result = core::run_with_deadline(
        core::TerminationStrategy::kSigjmp,
        common::monotonic_now() + common::seconds(10),
        [](core::StopToken&) {});
    benchmark::DoNotOptimize(result.outcome);
  }
}
BENCHMARK(BM_CompletedRoundSigjmp);

void BM_CompletedRoundPeriodicCheck(benchmark::State& state) {
  for (auto _ : state) {
    const auto result = core::run_with_deadline(
        core::TerminationStrategy::kPeriodicCheck,
        common::monotonic_now() + common::seconds(10),
        [](core::StopToken&) {});
    benchmark::DoNotOptimize(result.outcome);
  }
}
BENCHMARK(BM_CompletedRoundPeriodicCheck);

void BM_StopTokenPoll(benchmark::State& state) {
  core::StopToken token(common::monotonic_now() + common::seconds(60));
  for (auto _ : state) {
    benchmark::DoNotOptimize(token.should_stop());
  }
}
BENCHMARK(BM_StopTokenPoll);

}  // namespace

RTSEED_BENCHMARK_JSON_MAIN()
