// Figure 3 — remaining execution time R₁(t): general scheduling vs
// semi-fixed-priority scheduling, for the paper's evaluation task
// (T = 1 s, m = w = 250 ms, always-overrunning optional part).
//
// Output: two gnuplot series (time in ms, remaining in ms).  Connecting
// the points with straight lines reproduces the figure: general
// scheduling rises to m+w at release and drains once; semi-fixed rises to
// m, drains, sleeps through the optional window, then rises to w at the
// optional deadline OD = D − w.
#include <cstdio>

#include "common/table.hpp"
#include "sim/trace.hpp"

using namespace rtseed;

namespace {

sched::TaskSet paper_task() {
  sched::ImpreciseTaskParams t;
  t.name = "tau1";
  t.period = common::seconds(1);
  t.mandatory = common::millis(250);
  t.windup = common::millis(250);
  t.optional = {common::seconds(1)};
  sched::TaskSet set;
  set.add(t);
  return set;
}

void print_curve(const char* title, sim::SimAlgorithm algorithm) {
  const auto set = paper_task();
  sim::SimOptions options;
  options.algorithm = algorithm;
  options.horizon = common::seconds(2);
  options.record_trace = true;
  const auto result = sim::simulate_uniprocessor(set, options);
  const auto curve = sim::remaining_execution_curve(result, set, 0, algorithm,
                                                    options.horizon);
  std::printf("# %s\n# t_ms R_ms\n", title);
  for (const auto& point : curve) {
    std::printf("%.1f %.1f\n", common::to_millis(point.time),
                common::to_millis(point.remaining));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf(
      "=== Figure 3: general scheduling vs semi-fixed-priority scheduling "
      "===\n"
      "task: T=1s, m=250ms, w=250ms, OD = D - w = 750ms\n\n");
  print_curve("general scheduling: R = m+w at release",
              sim::SimAlgorithm::kGeneralRm);
  print_curve("semi-fixed-priority: R = m at release, R = w at OD",
              sim::SimAlgorithm::kRmwp);

  // Self-check: the semi-fixed curve's wind-up release is exactly OD.
  const auto set = paper_task();
  sim::SimOptions options;
  options.algorithm = sim::SimAlgorithm::kRmwp;
  options.horizon = common::seconds(1);
  options.record_trace = true;
  const auto result = sim::simulate_uniprocessor(set, options);
  const bool ok = result.optional_deadlines[0] == common::millis(750) &&
                  result.trace.size() == 3 &&
                  result.trace[2].start == common::millis(750);
  std::printf("[shape check] %s\n",
              ok ? "wind-up released exactly at OD = D - w"
                 : "FAILED: wind-up not released at OD");
  return ok ? 0 : 1;
}
