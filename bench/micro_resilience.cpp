// Micro-benchmark of the fault-resilience layer: what detection and
// recovery COST, so the "resilience is nearly free on the hot path" claim
// in DESIGN.md §9 is a measured number, not an assertion.
//
//   [gate]     fault::try_fire with no injector installed (the cost every
//              hot-path injection point pays in production), and with an
//              installed-but-zero-rate injector.
//   [watchdog] BudgetWatchdog arm+disarm per job part (two timer_settime).
//   [breaker]  CircuitBreaker::record_job on the mandatory thread.
//   [lostwake] end-to-end recovery latency of a swallowed worker wake:
//              windup_start - optional_deadline for jobs whose only wake
//              was injected away (bounded by completion_margin + slice).
//   [stall]    supervisor detection latency for a worker already stalled
//              past deadline + grace.
//
// Flags: --json out.json   machine-readable results (CI archives this as
//                          BENCH_resilience.json)
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>

#include "core/imprecise_task.hpp"
#include "fault/breaker.hpp"
#include "fault/injector.hpp"
#include "fault/supervisor.hpp"
#include "fault/watchdog.hpp"
#include "rt/periodic_clock.hpp"

namespace {

using rtseed::common::millis;
using rtseed::common::monotonic_now;
using rtseed::common::Nanos;
namespace fault = rtseed::fault;
namespace core = rtseed::core;
namespace rt = rtseed::rt;

double ns_per_op(Nanos elapsed, long ops) {
  return static_cast<double>(elapsed) / static_cast<double>(ops);
}

double bench_gate_cold() {
  constexpr long kOps = 2'000'000;
  std::atomic<long> sink{0};
  const Nanos start = monotonic_now();
  for (long n = 0; n < kOps; ++n) {
    if (fault::try_fire(fault::InjectPoint::kLostWake)) {
      sink.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return ns_per_op(monotonic_now() - start, kOps);
}

double bench_gate_installed() {
  fault::ScopedInjector scoped{fault::InjectorConfig{}};  // all rates 0
  constexpr long kOps = 2'000'000;
  std::atomic<long> sink{0};
  const Nanos start = monotonic_now();
  for (long n = 0; n < kOps; ++n) {
    if (fault::try_fire(fault::InjectPoint::kLostWake)) {
      sink.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return ns_per_op(monotonic_now() - start, kOps);
}

double bench_watchdog_cycle() {
  fault::BudgetWatchdog watchdog;
  if (!watchdog.init().is_ok()) return -1.0;
  constexpr long kOps = 20'000;
  const Nanos start = monotonic_now();
  for (long n = 0; n < kOps; ++n) {
    watchdog.arm(start + rtseed::common::seconds(30));
    (void)watchdog.disarm();
  }
  return ns_per_op(monotonic_now() - start, kOps);
}

double bench_breaker_record() {
  fault::BreakerConfig config;
  config.enabled = true;
  fault::CircuitBreaker breaker(config);
  constexpr long kOps = 2'000'000;
  const Nanos start = monotonic_now();
  for (long n = 0; n < kOps; ++n) {
    (void)breaker.record_job((n & 7) != 0, start + n);
  }
  return ns_per_op(monotonic_now() - start, kOps);
}

// Mean wind-up lateness past OD for jobs whose worker wake was swallowed.
double bench_lost_wake_recovery_ms() {
  fault::InjectorConfig config;
  config.with_rate(fault::InjectPoint::kLostWake, 1.0);
  config.max_fires_per_point = 4;
  fault::ScopedInjector scoped(config);

  core::TaskConfig tc;
  tc.params.name = "bench-lw";
  tc.params.period = millis(120);
  tc.params.mandatory = millis(1);
  tc.params.windup = millis(1);
  tc.params.optional = {millis(1)};
  tc.num_jobs = 4;
  tc.callbacks.mandatory = [](const core::JobContext&) {};
  tc.callbacks.optional = [](const core::JobContext&, int,
                             core::StopToken& token) {
    (void)token.should_stop();
  };
  tc.callbacks.windup = [](const core::JobContext&) {};

  core::TaskPlacement placement;
  placement.processor = 0;
  placement.optional_deadline_offset = millis(20);
  core::TaskRuntimeOptions options;
  options.termination = core::TerminationStrategy::kPeriodicCheck;
  options.initial_offset = millis(5);
  options.completion_margin = millis(10);

  rt::Topology topology = rt::Topology::native();
  core::ImpreciseTask task(0, std::move(tc), placement, options, topology);
  if (!task.start().is_ok()) return -1.0;
  task.wait_finished();
  task.stop();

  double total_ms = 0;
  long stranded = 0;
  for (const auto& rec : task.drain_records()) {
    if (rec.windup_start > rec.optional_deadline) {
      total_ms += rtseed::common::to_millis(rec.windup_start -
                                            rec.optional_deadline);
      ++stranded;
    }
  }
  return stranded > 0 ? total_ms / static_cast<double>(stranded) : 0.0;
}

// Supervisor detection latency: a fake pool reports a worker stalled far
// past its deadline; measure start() -> force_worker().
class StalledPool final : public fault::SupervisedPool {
 public:
  int worker_count() const override { return 1; }
  fault::WorkerHealth worker_health(int) const override {
    fault::WorkerHealth h;
    h.alive = true;
    h.busy = true;
    h.busy_since = busy_since_;
    h.busy_deadline = busy_deadline_;
    return h;
  }
  void force_worker(int) override {
    Nanos expected = 0;
    forced_at_.compare_exchange_strong(expected, monotonic_now());
  }
  bool kill_worker(int) override { return false; }
  bool respawn_worker(int) override { return false; }

  Nanos busy_since_ = 0;
  Nanos busy_deadline_ = 0;
  std::atomic<Nanos> forced_at_{0};
};

double bench_stall_detection_ms() {
  StalledPool pool;
  pool.busy_since_ = monotonic_now() - millis(100);
  pool.busy_deadline_ = monotonic_now() - millis(90);

  fault::SupervisorConfig config;
  config.enabled = true;
  config.poll_interval = millis(1);
  config.stall_grace = 0;
  fault::Supervisor supervisor(config);
  supervisor.watch(&pool, 0, "bench");

  const Nanos start = monotonic_now();
  if (!supervisor.start().is_ok()) return -1.0;
  while (pool.forced_at_.load() == 0 &&
         monotonic_now() - start < rtseed::common::seconds(2)) {
    rt::sleep_for(millis(1));
  }
  supervisor.stop();
  const Nanos forced = pool.forced_at_.load();
  return forced > 0 ? rtseed::common::to_millis(forced - start) : -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json out.json]\n", argv[0]);
      return 2;
    }
  }

  std::printf("=== micro_resilience: cost of detection and recovery ===\n\n");

  const double gate_cold = bench_gate_cold();
  const double gate_installed = bench_gate_installed();
  std::printf("[gate]     try_fire, no injector:        %7.2f ns/op\n",
              gate_cold);
  std::printf("[gate]     try_fire, zero-rate injector: %7.2f ns/op\n",
              gate_installed);

  const double watchdog = bench_watchdog_cycle();
  std::printf("[watchdog] arm + disarm:                 %7.1f ns/cycle\n",
              watchdog);

  const double breaker = bench_breaker_record();
  std::printf("[breaker]  record_job:                   %7.2f ns/op\n",
              breaker);

  const double lost_wake = bench_lost_wake_recovery_ms();
  std::printf("[lostwake] recovery past OD:             %7.2f ms/job\n",
              lost_wake);

  const double stall = bench_stall_detection_ms();
  std::printf("[stall]    supervisor detection:         %7.2f ms\n", stall);

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"micro_resilience\",\n"
                 "  \"gate_cold_ns\": %.3f,\n"
                 "  \"gate_installed_ns\": %.3f,\n"
                 "  \"watchdog_cycle_ns\": %.1f,\n"
                 "  \"breaker_record_ns\": %.3f,\n"
                 "  \"lost_wake_recovery_ms\": %.3f,\n"
                 "  \"stall_detection_ms\": %.3f\n"
                 "}\n",
                 gate_cold, gate_installed, watchdog, breaker, lost_wake,
                 stall);
    std::fclose(f);
    std::printf("\n[json] results -> %s\n", json_path.c_str());
  }
  return 0;
}
