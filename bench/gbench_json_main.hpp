// Drop-in replacement for BENCHMARK_MAIN() that accepts the repo-wide
// `--json <path>` flag and translates it to google-benchmark's
// --benchmark_out/--benchmark_out_format pair, so every bench binary —
// google-benchmark micros and hand-rolled harnesses alike — takes the
// same flag and CI archives one JSON per binary.
#pragma once

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

namespace rtseed::bench {

inline int gbench_json_main(int argc, char** argv) {
  std::vector<std::string> args(argv, argv + argc);
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--json" && i + 1 < args.size()) {
      const std::string path = args[i + 1];
      args.erase(args.begin() + static_cast<long>(i),
                 args.begin() + static_cast<long>(i) + 2);
      args.push_back("--benchmark_out=" + path);
      args.push_back("--benchmark_out_format=json");
      break;
    }
  }
  std::vector<char*> argv2;
  argv2.reserve(args.size());
  for (auto& arg : args) argv2.push_back(arg.data());
  int argc2 = static_cast<int>(argv2.size());
  benchmark::Initialize(&argc2, argv2.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, argv2.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace rtseed::bench

#define RTSEED_BENCHMARK_JSON_MAIN()                      \
  int main(int argc, char** argv) {                       \
    return rtseed::bench::gbench_json_main(argc, argv);   \
  }
