// Figure 12 — overhead of beginning the parallel optional parts (Δb).
//
// Paper: linear in np (one pthread_cond_signal per part, O(npᵢ)); the CPU
// load interferes MORE than the CPU-Memory load because cond_signal is
// branch-unit-bound.
#include "figure_common.hpp"

int main() {
  return rtseed::bench::run_overhead_figure(
      rtseed::sim::OverheadKind::kBeginOptional,
      "Figure 12: overhead of beginning the parallel optional parts");
}
