// Shared driver for the four overhead figures (Figs. 10-13).
#pragma once

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "sim/experiment.hpp"

namespace rtseed::bench {

/// Writes one .dat file per subplot into bench_data/ (gnuplot-ready),
/// e.g. bench_data/delta_e_cpu-memory-load.dat.  Failure to write (e.g.
/// read-only CWD) is reported but non-fatal.
inline void export_figure_data(const sim::FigureData& data) {
  std::error_code ec;
  std::filesystem::create_directories("bench_data", ec);
  if (ec) {
    std::printf("(bench_data/ not writable; skipping export)\n");
    return;
  }
  for (const auto& subplot : data.subplots) {
    const std::string path = std::string("bench_data/") +
                             sim::overhead_kind_name(data.kind) + "_" +
                             sim::load_kind_name(subplot.load) + ".dat";
    std::ofstream out(path);
    if (!out) continue;
    out << common::render_series(
        std::string(sim::overhead_kind_name(data.kind)) + " / " +
            sim::load_kind_name(subplot.load),
        "np", data.np, subplot.series, 1);
  }
  std::printf("(series exported to bench_data/%s_*.dat)\n",
              sim::overhead_kind_name(data.kind));
}

/// Runs one figure at the paper's full scale (Xeon Phi topology, 100 jobs,
/// np up to 228), prints tables + gnuplot series, exports .dat files, then
/// self-checks the published shape properties.  Returns the exit code.
inline int run_overhead_figure(sim::OverheadKind kind,
                               const std::string& title) {
  sim::FigureConfig config;
  config.kind = kind;
  const auto data = sim::run_figure(config);
  sim::print_figure(data, title);
  export_figure_data(data);

  const auto violations = sim::check_figure_shape(data);
  std::printf("\n[shape check] ");
  if (violations.empty()) {
    std::printf("all published shape properties hold\n");
    return 0;
  }
  std::printf("%zu violation(s):\n", violations.size());
  for (const auto& v : violations) std::printf("  - %s\n", v.c_str());
  return 1;
}

}  // namespace rtseed::bench
