// Figure 8 — assignment of 171 parallel optional parts to the Xeon Phi
// 3120A's hardware threads (57 cores x 4) under the three policies.
//
// Prints the per-core occupancy map the figure draws as black squares and
// self-checks the exact distribution the paper describes.
#include <cstdio>

#include "core/assignment.hpp"

using namespace rtseed;

namespace {

bool print_policy(core::AssignmentPolicy policy, int np,
                  const rt::Topology& topology) {
  const auto counts = core::parts_per_core(topology, policy, np);
  std::printf("--- %s, np=%d ---\n",
              core::assignment_policy_name(policy), np);
  for (int core = 0; core < topology.num_cores(); ++core) {
    std::printf("C%-3d ", core);
    const int used = counts[static_cast<size_t>(core)];
    for (int sibling = 0; sibling < topology.smt_per_core(); ++sibling) {
      std::printf("%s", sibling < used ? "#" : ".");
    }
    std::printf("  (%d)\n", used);
  }
  std::printf("\n");
  return true;
}

bool expect(bool condition, const char* what) {
  if (!condition) std::printf("[shape check] FAILED: %s\n", what);
  return condition;
}

}  // namespace

int main() {
  const auto phi = rt::Topology::xeon_phi_3120a();
  constexpr int kNp = 171;

  std::printf("=== Figure 8: assigning %d parallel optional parts on %s ===\n\n",
              kNp, phi.to_string().c_str());
  print_policy(core::AssignmentPolicy::kOneByOne, kNp, phi);
  print_policy(core::AssignmentPolicy::kTwoByTwo, kNp, phi);
  print_policy(core::AssignmentPolicy::kAllByAll, kNp, phi);

  // Paper text: (a) 3 threads on all of C0-C56; (b) 4 on C0-C27, 3 on
  // C28, 2 on C29-C56; (c) 4 on C0-C41, 3 on C42, none on C43-C56.
  bool ok = true;
  const auto one =
      core::parts_per_core(phi, core::AssignmentPolicy::kOneByOne, kNp);
  for (int c = 0; c < 57; ++c) ok &= expect(one[c] == 3, "one-by-one: 3/core");
  const auto two =
      core::parts_per_core(phi, core::AssignmentPolicy::kTwoByTwo, kNp);
  for (int c = 0; c <= 27; ++c) ok &= expect(two[c] == 4, "two-by-two C0-27");
  ok &= expect(two[28] == 3, "two-by-two C28");
  for (int c = 29; c <= 56; ++c) ok &= expect(two[c] == 2, "two-by-two C29-56");
  const auto all =
      core::parts_per_core(phi, core::AssignmentPolicy::kAllByAll, kNp);
  for (int c = 0; c <= 41; ++c) ok &= expect(all[c] == 4, "all-by-all C0-41");
  ok &= expect(all[42] == 3, "all-by-all C42");
  for (int c = 43; c <= 56; ++c) ok &= expect(all[c] == 0, "all-by-all C43-56");

  std::printf("[shape check] %s\n",
              ok ? "all three maps match the paper's Figure 8 exactly"
                 : "some maps diverge from the paper");
  return ok ? 0 : 1;
}
