// Micro-benchmarks for the middleware's data-plane structures: the
// wait-free SPSC record ring (per-job measurement export) and the
// user-space ReadyQueues mirror (per-transition bookkeeping cost).
#include <benchmark/benchmark.h>

#include "gbench_json_main.hpp"

#include "common/spsc_ring.hpp"
#include "core/job_record.hpp"
#include "core/queues.hpp"

using namespace rtseed;

namespace {

void BM_SpscRingPushPop(benchmark::State& state) {
  common::SpscRing<core::JobRecord> ring(1024);
  core::JobRecord record;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.try_push(record));
    benchmark::DoNotOptimize(ring.try_pop());
  }
}
BENCHMARK(BM_SpscRingPushPop);

void BM_SpscRingPushWhenFull(benchmark::State& state) {
  common::SpscRing<int> ring(8);
  for (int i = 0; i < 8; ++i) ring.try_push(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.try_push(1));  // drop path
  }
}
BENCHMARK(BM_SpscRingPushWhenFull);

void BM_ReadyQueuesTransition(benchmark::State& state) {
  // One full task transition: remove + enqueue at a new priority.
  core::ReadyQueues queues;
  const int tasks = static_cast<int>(state.range(0));
  for (int t = 0; t < tasks; ++t) queues.enqueue(t, 50 + t % 49);
  int t = 0;
  for (auto _ : state) {
    queues.remove(t);
    queues.enqueue(t, 50 + (t + 1) % 49);
    t = (t + 1) % tasks;
  }
}
BENCHMARK(BM_ReadyQueuesTransition)->Arg(4)->Arg(32);

void BM_ReadyQueuesPopHighest(benchmark::State& state) {
  core::ReadyQueues queues;
  for (auto _ : state) {
    queues.enqueue(0, 98);
    benchmark::DoNotOptimize(queues.pop_highest());
  }
}
BENCHMARK(BM_ReadyQueuesPopHighest);

void BM_SleepQueueInsertExpire(benchmark::State& state) {
  core::ReadyQueues queues;
  common::Nanos t = 0;
  for (auto _ : state) {
    queues.sleep_until(0, t + 100);
    benchmark::DoNotOptimize(queues.pop_expired(t + 200));
    t += 100;
  }
}
BENCHMARK(BM_SleepQueueInsertExpire);

}  // namespace

RTSEED_BENCHMARK_JSON_MAIN()
