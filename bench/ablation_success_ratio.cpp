// Ablation: schedulability success ratio of P-RMWP (semi-fixed-priority)
// vs partitioned general RM and partitioned EDF, over random task sets
// (UUniFast utilizations, log-uniform periods) on M = 4 processors.
//
// Two views per algorithm:
//   analysis — fraction of sets the offline admission test accepts;
//   simulate — fraction of sets that run miss-free in the DES (using
//              worst-fit placement when admission failed, so the columns
//              also expose how forgiving each algorithm is past its test).
//
// The expected shape: RMWP tracks RM closely (Theorem 2: the optional
// parts are free), both decay before EDF's U = M boundary, and the
// simulation column upper-bounds the analysis column (tests are
// sufficient, not necessary).
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "sched/generator.hpp"
#include "sched/p_rmwp.hpp"
#include "sched/rta.hpp"
#include "sim/sim_scheduler.hpp"
#include "sim/sweep.hpp"

using namespace rtseed;

namespace {

constexpr int kProcessors = 4;
constexpr int kTrials = 100;
constexpr common::u64 kSeed = 20140415;

struct Ratios {
  double rmwp_analysis = 0;
  double rm_analysis = 0;
  double edf_analysis = 0;
  double rmwp_sim = 0;
  double rm_sim = 0;
  double edf_sim = 0;
};

Ratios run_point(double system_utilization, common::Rng rng) {
  Ratios out;
  sched::GeneratorConfig config;
  config.num_tasks = 12;
  config.total_utilization = system_utilization * kProcessors;
  config.min_period = common::millis(10);
  config.max_period = common::millis(100);
  config.optional_parts = 2;

  for (int trial = 0; trial < kTrials; ++trial) {
    const auto set = sched::generate_task_set(config, rng);

    const sched::AdmissionTest admits_rmwp = [](const sched::TaskSet& s) {
      return sched::rmwp_schedulable(s);
    };
    const sched::AdmissionTest admits_rm = [](const sched::TaskSet& s) {
      return sched::rm_schedulable(s);
    };
    const sched::AdmissionTest admits_edf = [](const sched::TaskSet& s) {
      return s.total_utilization() <= 1.0 + 1e-12;
    };
    using sched::PackingHeuristic;
    out.rmwp_analysis +=
        partition_tasks(set, kProcessors, PackingHeuristic::kFirstFit,
                        admits_rmwp)
            .feasible;
    out.rm_analysis +=
        partition_tasks(set, kProcessors, PackingHeuristic::kFirstFit,
                        admits_rm)
            .feasible;
    out.edf_analysis +=
        partition_tasks(set, kProcessors, PackingHeuristic::kFirstFit,
                        admits_edf)
            .feasible;

    sim::SimOptions options;
    options.horizon = common::millis(1000);
    options.algorithm = sim::SimAlgorithm::kRmwp;
    out.rmwp_sim +=
        !sim::simulate_partitioned(set, kProcessors, options).any_miss();
    options.algorithm = sim::SimAlgorithm::kGeneralRm;
    out.rm_sim +=
        !sim::simulate_partitioned(set, kProcessors, options).any_miss();
    options.algorithm = sim::SimAlgorithm::kEdf;
    out.edf_sim +=
        !sim::simulate_partitioned(set, kProcessors, options).any_miss();
  }
  const double n = kTrials;
  out.rmwp_analysis /= n;
  out.rm_analysis /= n;
  out.edf_analysis /= n;
  out.rmwp_sim /= n;
  out.rm_sim /= n;
  out.edf_sim /= n;
  return out;
}

}  // namespace

int main() {
  std::printf(
      "=== Ablation: success ratio vs system utilization (M=%d, %d random "
      "sets/point, 12 tasks) ===\n\n",
      kProcessors, kTrials);
  common::Table table({"U/M", "P-RMWP ana", "P-RM ana", "P-EDF ana",
                       "P-RMWP sim", "P-RM sim", "P-EDF sim"});

  // One sweep cell per utilization point, seeded from (seed, point): any
  // thread count (or RTSEED_SWEEP_THREADS=1) gives identical ratios.
  std::vector<double> grid;
  for (double u = 0.3; u <= 1.01; u += 0.1) grid.push_back(u);
  const sim::SweepRunner runner;
  const auto points = runner.map(grid.size(), [&](size_t cell) {
    common::Rng rng(sim::SweepRunner::cell_seed(
        kSeed, {static_cast<common::u64>(cell)}));
    return run_point(grid[cell], std::move(rng));
  });

  bool ok = true;
  for (size_t cell = 0; cell < grid.size(); ++cell) {
    const double u = grid[cell];
    const auto& r = points[cell];
    table.add_numeric_row({u, r.rmwp_analysis, r.rm_analysis, r.edf_analysis,
                           r.rmwp_sim, r.rm_sim, r.edf_sim},
                          2);
    // Shape checks: simulation never below analysis (sufficient tests);
    // RMWP analysis within a whisker of RM analysis (Theorem 2); EDF
    // analysis dominates both fixed-priority tests.
    ok &= r.rmwp_sim >= r.rmwp_analysis - 1e-9;
    ok &= r.rm_sim >= r.rm_analysis - 1e-9;
    ok &= r.edf_analysis >= r.rm_analysis - 1e-9;
    ok &= r.rmwp_analysis <= r.rm_analysis + 1e-9;
  }
  table.print();
  std::printf(
      "\n[shape check] %s\n",
      ok ? "sim >= analysis everywhere; EDF >= RM >= RMWP admission order "
           "holds"
         : "FAILED: an expected dominance relation is violated");
  return ok ? 0 : 1;
}
