// Micro-benchmark of the limit-order-book workload (ISSUE 9): raw book
// apply latency and match throughput, the depth-band analytics cost the
// optional parts pay, and the QoS-vs-P&L trade-off the imprecise model
// exists to expose.
//
//   [apply]     seeded SplitMix64 flow through the BitmapBook in a
//               cramped band (64 levels, heavy crossing): ns/event,
//               events/s, matches/s — and the final content digest,
//               which gates.json pins with an equals gate: the book is
//               deterministic, so the digest is a portable constant and
//               any divergence is a correctness regression, caught in
//               bench-smoke even before the fuzzer runs.
//   [analytics] one depth-band optional part over a populated book:
//               full refinement vs first-refinement-only (what a cut
//               token delivers) — the A/B that prices one band of QoS.
//   [job]       full inline OMS job rounds (mandatory + bands + windup)
//               vs mandatory + windup alone: the optional parts' share
//               of the period.
//   [qos]       N jobs at three optional-completion levels (full /
//               first / none), same flow seed: completion rate, orders,
//               fills, P&L dollars — the EXPERIMENTS.md QoS-vs-np row.
//
// This binary links rtseed_alloc_hook: `steady_state_allocs` counts
// heap allocations across the measured apply/analytics windows and
// gates.json pins it to zero.
//
// Flags: --json out.json   machine-readable results (CI archives this
//                          as BENCH_lob.json)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "common/time.hpp"
#include "core/termination.hpp"
#include "lob/book.hpp"
#include "lob/flow.hpp"
#include "obs/hotpath_audit.hpp"
#include "trading/oms_task.hpp"

namespace {

using rtseed::common::monotonic_now;
using rtseed::common::Nanos;
using rtseed::common::seconds;
namespace common = rtseed::common;
namespace core = rtseed::core;
namespace lob = rtseed::lob;
namespace obs = rtseed::obs;
namespace trading = rtseed::trading;

volatile double g_sink = 0.0;

// ---------------------------------------------------------------------------
// [apply] raw book apply latency + match throughput

struct ApplyResult {
  long events = 0;
  double ns_per_event = -1.0;
  double events_per_s = -1.0;
  double matches_per_s = -1.0;
  rtseed::common::u64 trades = 0;
  rtseed::common::u64 digest = 0;
  long allocs = -1;
};

ApplyResult bench_apply(long events) {
  ApplyResult out;
  out.events = events;

  // Cramped band: most arrivals land near the touch, so the measured
  // mix is dominated by matching and level churn, not empty inserts.
  lob::BookConfig book_cfg;
  book_cfg.min_tick = 10;
  book_cfg.num_levels = 64;
  book_cfg.max_orders = 4096;
  lob::FlowConfig flow_cfg;
  flow_cfg.spread_levels = 12;
  flow_cfg.aggressive_pct = 40;

  constexpr int kReps = 5;
  double best_ns = -1.0;
  long allocs = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    lob::BitmapBook book(book_cfg);
    lob::FlowGenerator gen(0x5EED9 + static_cast<rtseed::common::u64>(rep),
                           book_cfg, flow_cfg);
    // The flow generator's cancel/replace picks need live ids; track a
    // bounded set the way the fuzz harness does, swap-remove on use.
    constexpr int kLive = 4096;
    lob::OrderId live[kLive];
    int live_count = 0;

    // Construction above allocates (by design, one-time); the audited
    // window is the event loop alone.
    const obs::HotpathAudit audit;
    const Nanos t0 = monotonic_now();
    for (long i = 0; i < events; ++i) {
      const lob::FlowEvent ev = gen.next();
      switch (ev.kind) {
        case lob::FlowKind::kAddLimit: {
          const auto r = book.add_limit(ev.side, ev.price, ev.qty, nullptr);
          if (r.id.valid() && live_count < kLive) live[live_count++] = r.id;
          break;
        }
        case lob::FlowKind::kMarket:
          book.add_market(ev.side, ev.qty, nullptr);
          break;
        case lob::FlowKind::kCancel: {
          if (live_count == 0) break;
          const int idx = static_cast<int>(ev.pick % live_count);
          const lob::OrderId id = live[idx];
          live[idx] = live[--live_count];
          book.cancel(id);
          break;
        }
        case lob::FlowKind::kReplace: {
          if (live_count == 0) break;
          const int idx = static_cast<int>(ev.pick % live_count);
          const lob::OrderId id = live[idx];
          live[idx] = live[--live_count];
          lob::SubmitResult readd;
          book.replace(id, ev.price, ev.qty, nullptr, &readd);
          if (readd.id.valid() && readd.remaining > 0 && live_count < kLive) {
            live[live_count++] = readd.id;
          }
          break;
        }
      }
    }
    const Nanos elapsed = monotonic_now() - t0;
    const double ns =
        static_cast<double>(elapsed) / static_cast<double>(events);
    if (best_ns < 0.0 || ns < best_ns) {
      best_ns = ns;
      out.trades = book.stats().trades;
      out.matches_per_s = elapsed > 0
                              ? static_cast<double>(book.stats().trades) *
                                    1e9 / static_cast<double>(elapsed)
                              : -1.0;
    }
    if (rep == 0) out.digest = book.digest();  // seed 0x5EED9: the pinned run
    allocs += audit.alloc_delta().alloc_calls;
  }
  out.allocs = allocs;
  out.ns_per_event = best_ns;
  out.events_per_s = best_ns > 0 ? 1e9 / best_ns : -1.0;
  return out;
}

// ---------------------------------------------------------------------------
// [analytics] depth-band refinement cost, full vs first-refinement

struct AnalyticsResult {
  int band_levels = 0;
  double ns_full = -1.0;   ///< full refinement ladder
  double ns_first = -1.0;  ///< one refinement (a cut token's yield)
  long allocs = -1;
};

AnalyticsResult bench_analytics() {
  AnalyticsResult out;
  trading::OmsTaskConfig cfg;
  cfg.oms.book.min_tick = 100;
  cfg.oms.book.num_levels = 512;
  cfg.oms.book.max_orders = 4096;
  cfg.num_bands = 1;
  cfg.band_levels = 16;
  cfg.events_per_job = 512;
  out.band_levels = cfg.band_levels;
  trading::OmsTask task(cfg);
  common::Arena arena(64 * 1024);

  core::JobContext ctx;
  ctx.release = 0;
  ctx.deadline = monotonic_now() + seconds(60);
  ctx.optional_deadline = ctx.deadline;
  ctx.scratch = &arena;
  // Populate the book with several jobs' worth of flow.
  for (int i = 0; i < 8; ++i) task.on_mandatory(ctx);

  constexpr int kReps = 5;
  constexpr long kCalls = 2000;
  const obs::HotpathAudit audit;
  double best_full = -1.0, best_first = -1.0;
  for (int rep = 0; rep < kReps; ++rep) {
    Nanos t0 = monotonic_now();
    for (long i = 0; i < kCalls; ++i) {
      arena.reset();
      core::StopToken token(monotonic_now() + seconds(60));
      task.on_optional(ctx, 0, token);
    }
    const double full = static_cast<double>(monotonic_now() - t0) /
                        static_cast<double>(kCalls);
    if (best_full < 0.0 || full < best_full) best_full = full;

    t0 = monotonic_now();
    for (long i = 0; i < kCalls; ++i) {
      arena.reset();
      core::StopToken token(0);  // already expired: one refinement, cut
      task.on_optional(ctx, 0, token);
    }
    const double first = static_cast<double>(monotonic_now() - t0) /
                         static_cast<double>(kCalls);
    if (best_first < 0.0 || first < best_first) best_first = first;
  }
  out.allocs = audit.alloc_delta().alloc_calls;
  out.ns_full = best_full;
  out.ns_first = best_first;
  return out;
}

// ---------------------------------------------------------------------------
// [job] + [qos] full inline job rounds at a given optional completion

enum class OptionalMode { kFull, kFirst, kNone };

struct QosResult {
  long jobs = 0;
  double completion_rate = 0.0;
  /// Fraction of refinement iterations delivered — the finer QoS axis:
  /// a cut-early band still COMMITS (counts toward completion_rate) but
  /// at depth 1 of band_levels.
  double refinement = 0.0;
  double jobs_per_s = -1.0;
  long orders = 0;
  long fills = 0;
  double pnl_dollars = 0.0;
};

QosResult run_jobs(OptionalMode mode, long jobs) {
  trading::OmsTaskConfig cfg;
  cfg.oms.book.min_tick = 100;
  cfg.oms.book.num_levels = 256;
  cfg.oms.book.max_orders = 2048;
  cfg.oms.max_client_orders = 256;
  cfg.num_bands = 4;
  cfg.band_levels = 8;
  cfg.events_per_job = 64;
  cfg.entry_threshold = 0.10;
  cfg.order_qty = 4;
  cfg.order_ttl = 0;
  trading::OmsTask task(cfg);
  common::Arena arena(64 * 1024);

  const Nanos t0 = monotonic_now();
  for (long j = 0; j < jobs; ++j) {
    core::JobContext ctx;
    ctx.job = j;
    ctx.release = j;  // virtual time: TTLs and attribution stay exact
    ctx.deadline = monotonic_now() + seconds(60);
    ctx.optional_deadline = ctx.deadline;
    ctx.scratch = &arena;
    arena.reset();
    task.on_mandatory(ctx);
    if (mode != OptionalMode::kNone) {
      for (int part = 0; part < cfg.num_bands; ++part) {
        core::StopToken token(mode == OptionalMode::kFull
                                  ? monotonic_now() + seconds(60)
                                  : 0);
        task.on_optional(ctx, part, token);
      }
    }
    task.on_windup(ctx);
  }
  const Nanos elapsed = monotonic_now() - t0;

  QosResult out;
  const auto s = task.stats();
  out.jobs = s.jobs;
  out.completion_rate = task.qos_completion_rate();
  const double max_iters = static_cast<double>(jobs) * cfg.num_bands *
                           cfg.band_levels;
  out.refinement =
      max_iters > 0 ? static_cast<double>(s.band_iterations) / max_iters : 0;
  out.jobs_per_s = elapsed > 0 ? static_cast<double>(jobs) * 1e9 /
                                     static_cast<double>(elapsed)
                               : -1.0;
  out.orders = s.orders_submitted;
  out.fills = static_cast<long>(task.oms().stats().taker_fills +
                                task.oms().stats().maker_fills);
  out.pnl_dollars = task.pnl_dollars();
  return out;
}

void print_qos(const char* mode, const QosResult& r) {
  std::printf(
      "[qos]      %-5s completion=%.3f refinement=%.3f jobs/s=%.0f "
      "orders=%ld fills=%ld pnl=$%.2f\n",
      mode, r.completion_rate, r.refinement, r.jobs_per_s, r.orders, r.fills,
      r.pnl_dollars);
}

void emit_qos_json(std::FILE* f, const char* mode, const QosResult& r,
                   const char* trailing) {
  std::fprintf(f,
               "    \"%s\": {\"jobs\": %ld, \"completion_rate\": %.4f, "
               "\"refinement\": %.4f, \"jobs_per_s\": %.0f, \"orders\": %ld, "
               "\"fills\": %ld, \"pnl_dollars\": %.2f}%s\n",
               mode, r.jobs, r.completion_rate, r.refinement, r.jobs_per_s,
               r.orders, r.fills, r.pnl_dollars, trailing);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  long apply_events = 2'000'000;
  long qos_jobs = 4000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strncmp(argv[i], "--events=", 9) == 0) {
      apply_events = std::strtol(argv[i] + 9, nullptr, 0);
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      qos_jobs = std::strtol(argv[i] + 7, nullptr, 0);
    } else {
      std::fprintf(stderr, "usage: %s [--json out.json] [--events=N] [--jobs=N]\n",
                   argv[0]);
      return 2;
    }
  }

  const bool hook = obs::alloc_hook_installed();
  const int cpus =
      static_cast<int>(std::thread::hardware_concurrency());

  const ApplyResult apply = bench_apply(apply_events);
  std::printf("[apply]    %ld events: %.1f ns/event, %.0f events/s, "
              "%.0f matches/s, digest=%016llx\n",
              apply.events, apply.ns_per_event, apply.events_per_s,
              apply.matches_per_s,
              static_cast<unsigned long long>(apply.digest));

  const AnalyticsResult analytics = bench_analytics();
  std::printf("[analytics] band of %d levels: full=%.0f ns, first=%.0f ns "
              "(cut token keeps %.0f%% of the cost)\n",
              analytics.band_levels, analytics.ns_full, analytics.ns_first,
              analytics.ns_full > 0
                  ? 100.0 * analytics.ns_first / analytics.ns_full
                  : 0.0);

  const QosResult full = run_jobs(OptionalMode::kFull, qos_jobs);
  const QosResult first = run_jobs(OptionalMode::kFirst, qos_jobs);
  const QosResult none = run_jobs(OptionalMode::kNone, qos_jobs);
  print_qos("full", full);
  print_qos("first", first);
  print_qos("none", none);

  const long steady_allocs =
      (apply.allocs < 0 || analytics.allocs < 0)
          ? -1
          : apply.allocs + analytics.allocs;
  std::printf("[alloc]    hook=%s steady_state_allocs=%ld\n",
              hook ? "yes" : "no", steady_allocs);

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"micro_lob\",\n");
    std::fprintf(f, "  \"host\": {\"cpus\": %d},\n", cpus);
    std::fprintf(f, "  \"alloc_hook\": %s,\n", hook ? "true" : "false");
    std::fprintf(f, "  \"steady_state_allocs\": %ld,\n", steady_allocs);
    std::fprintf(f,
                 "  \"apply\": {\"events\": %ld, \"ns_per_event\": %.1f, "
                 "\"events_per_s\": %.0f, \"matches_per_s\": %.0f, "
                 "\"trades\": %llu, \"digest\": \"%016llx\"},\n",
                 apply.events, apply.ns_per_event, apply.events_per_s,
                 apply.matches_per_s,
                 static_cast<unsigned long long>(apply.trades),
                 static_cast<unsigned long long>(apply.digest));
    std::fprintf(f,
                 "  \"analytics\": {\"band_levels\": %d, \"ns_full\": %.1f, "
                 "\"ns_first\": %.1f},\n",
                 analytics.band_levels, analytics.ns_full,
                 analytics.ns_first);
    std::fprintf(f, "  \"qos\": {\n");
    emit_qos_json(f, "full", full, ",");
    emit_qos_json(f, "first", first, ",");
    emit_qos_json(f, "none", none, "");
    std::fprintf(f, "  }\n");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  g_sink = g_sink + full.pnl_dollars;
  return 0;
}
