// Micro-benchmark of the zero-allocation dispatch path (ISSUE 7): what
// the steady-state per-job machinery costs and — the part CI gates on —
// how many heap allocations and wake syscalls it performs.
//
//   [call]   invoking a part body through InplaceFunction, FunctionRef
//            and std::function (the replaced hot-path vocabulary);
//   [arena]  per-part scratch from the slot Arena vs. the heap;
//   [round]  a full OptionalPool round per wake backend, with empty
//            bodies: mean wall time, wake syscalls per round (from
//            rt::wake_stats), kernel sleeps per round, and the heap
//            allocation count over the whole measured window.
//
// This binary links rtseed_alloc_hook, so every global operator new in
// the process ticks obs::alloc_stats().  `steady_state_allocs` in the
// JSON is the sum over all measured round windows; gates.json pins it to
// EXACTLY ZERO — a new allocation anywhere on the publish → wake →
// dispatch → scratch → completion path fails CI, not a code review.
//
// Flags: --json out.json   machine-readable results (CI archives this as
//                          BENCH_dispatch.json)
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>

#include "common/arena.hpp"
#include "common/inplace_function.hpp"
#include "common/time.hpp"
#include "core/assignment.hpp"
#include "core/optional_pool.hpp"
#include "obs/hotpath_audit.hpp"
#include "rt/futex.hpp"
#include "rt/topology.hpp"

namespace {

using rtseed::common::monotonic_now;
using rtseed::common::Nanos;
namespace common = rtseed::common;
namespace core = rtseed::core;
namespace obs = rtseed::obs;
namespace rt = rtseed::rt;

constexpr int kNp = 4;
constexpr int kWarmupRounds = 50;
constexpr int kRounds = 1000;

double ns_per_op(Nanos elapsed, long ops) {
  return static_cast<double>(elapsed) / static_cast<double>(ops);
}

// Keeps the optimizer from folding the callable loops away.
volatile long g_sink = 0;

double bench_inplace_call() {
  long local = 0;
  common::InplaceFunction<void(int), 64> fn = [&local](int v) { local += v; };
  constexpr long kOps = 5'000'000;
  const Nanos start = monotonic_now();
  for (long n = 0; n < kOps; ++n) fn(static_cast<int>(n));
  const double ns = ns_per_op(monotonic_now() - start, kOps);
  g_sink = local;
  return ns;
}

double bench_function_ref_call() {
  long local = 0;
  const auto lambda = [&local](int v) { local += v; };
  common::FunctionRef<void(int)> fn = lambda;
  constexpr long kOps = 5'000'000;
  const Nanos start = monotonic_now();
  for (long n = 0; n < kOps; ++n) fn(static_cast<int>(n));
  const double ns = ns_per_op(monotonic_now() - start, kOps);
  g_sink = local;
  return ns;
}

double bench_std_function_call() {
  long local = 0;
  std::function<void(int)> fn = [&local](int v) { local += v; };
  constexpr long kOps = 5'000'000;
  const Nanos start = monotonic_now();
  for (long n = 0; n < kOps; ++n) fn(static_cast<int>(n));
  const double ns = ns_per_op(monotonic_now() - start, kOps);
  g_sink = local;
  return ns;
}

double bench_arena_alloc() {
  common::Arena arena(1 << 16);
  constexpr long kOps = 1'000'000;
  const Nanos start = monotonic_now();
  for (long n = 0; n < kOps; ++n) {
    arena.reset();
    auto* p = arena.alloc_array<long>(8);
    p[0] = n;
    g_sink = p[0];
  }
  return ns_per_op(monotonic_now() - start, kOps);
}

double bench_heap_alloc() {
  constexpr long kOps = 200'000;
  const Nanos start = monotonic_now();
  for (long n = 0; n < kOps; ++n) {
    auto* p = static_cast<long*>(::operator new(8 * sizeof(long)));
    p[0] = n;
    g_sink = p[0];
    ::operator delete(p);
  }
  return ns_per_op(monotonic_now() - start, kOps);
}

struct RoundMetrics {
  double full_round_ns = -1.0;
  double wake_syscalls_per_round = -1.0;
  double wait_sleeps_per_round = -1.0;
  long allocs = -1;
};

RoundMetrics bench_round(core::WakeBackend backend) {
  RoundMetrics metrics;
  core::OptionalPool::Options options;
  options.termination = core::TerminationStrategy::kPeriodicCheck;
  options.fifo_priority = 0;  // unprivileged
  options.cpus = core::assign_optional_parts(
      rt::Topology::native(), core::AssignmentPolicy::kTopologyAware, kNp);
  options.name_prefix = "dispatch";
  options.completion_margin = common::millis(50);
  options.wake_backend = backend;
  core::OptionalPool pool(std::move(options),
                          [](const core::JobContext&, int, core::StopToken&) {
                          });
  if (!pool.start().is_ok()) return metrics;

  const auto job_at = [](long round) {
    core::JobContext ctx;
    ctx.job = round;
    ctx.release = monotonic_now();
    ctx.deadline = ctx.release + common::seconds(10);
    ctx.optional_deadline = ctx.release + common::seconds(10);
    return ctx;
  };
  for (long round = 0; round < kWarmupRounds; ++round) {
    (void)pool.run_round(job_at(round), kNp);
  }

  const obs::HotpathAudit audit;
  const Nanos start = monotonic_now();
  for (long round = 0; round < kRounds; ++round) {
    (void)pool.run_round(job_at(kWarmupRounds + round), kNp);
  }
  const Nanos elapsed = monotonic_now() - start;
  const auto wake = audit.wake_delta();
  const auto alloc = audit.alloc_delta();
  pool.shutdown();

  metrics.full_round_ns = ns_per_op(elapsed, kRounds);
  metrics.wake_syscalls_per_round =
      static_cast<double>(wake.wake_calls) / kRounds;
  metrics.wait_sleeps_per_round =
      static_cast<double>(wake.wait_sleeps) / kRounds;
  metrics.allocs = alloc.alloc_calls;
  return metrics;
}

void print_round(const char* tag, const RoundMetrics& m) {
  std::printf(
      "[round]  %-12s full_round %8.0f ns  wakes/round %5.2f  "
      "sleeps/round %5.2f  allocs %ld\n",
      tag, m.full_round_ns, m.wake_syscalls_per_round, m.wait_sleeps_per_round,
      m.allocs);
}

void json_round(std::FILE* f, const char* key, const RoundMetrics& m) {
  std::fprintf(f,
               "  \"%s\": {\"full_round_ns\": %.1f, "
               "\"wake_syscalls_per_round\": %.3f, "
               "\"wait_sleeps_per_round\": %.3f, \"allocs\": %ld}",
               key, m.full_round_ns, m.wake_syscalls_per_round,
               m.wait_sleeps_per_round, m.allocs);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json out.json]\n", argv[0]);
      return 2;
    }
  }

  std::printf("=== micro_dispatch: zero-allocation dispatch path ===\n\n");

  const double inplace_ns = bench_inplace_call();
  const double ref_ns = bench_function_ref_call();
  const double stdfn_ns = bench_std_function_call();
  std::printf("[call]   InplaceFunction: %6.2f ns/call\n", inplace_ns);
  std::printf("[call]   FunctionRef:     %6.2f ns/call\n", ref_ns);
  std::printf("[call]   std::function:   %6.2f ns/call\n", stdfn_ns);

  const double arena_ns = bench_arena_alloc();
  const double heap_ns = bench_heap_alloc();
  std::printf("[arena]  arena reset+alloc: %6.2f ns/op\n", arena_ns);
  std::printf("[arena]  heap new+delete:   %6.2f ns/op\n", heap_ns);

  const RoundMetrics batch = bench_round(core::WakeBackend::kFutexBatch);
  const RoundMetrics word = bench_round(core::WakeBackend::kFutexWord);
  const RoundMetrics condvar = bench_round(core::WakeBackend::kCondvar);
  print_round("futex-batch", batch);
  print_round("futex-word", word);
  print_round("condvar", condvar);

  const bool hook = obs::alloc_hook_installed();
  const long steady_allocs =
      (batch.allocs < 0 || word.allocs < 0 || condvar.allocs < 0)
          ? -1
          : batch.allocs + word.allocs + condvar.allocs;
  std::printf("\nalloc hook: %s   steady-state allocs (all backends): %ld\n",
              hook ? "installed" : "ABSENT", steady_allocs);

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"micro_dispatch\",\n");
    std::fprintf(f, "  \"np\": %d,\n", kNp);
    std::fprintf(f, "  \"rounds\": %d,\n", kRounds);
    std::fprintf(f, "  \"alloc_hook\": %s,\n", hook ? "true" : "false");
    std::fprintf(f, "  \"steady_state_allocs\": %ld,\n", steady_allocs);
    std::fprintf(f, "  \"inplace_call_ns\": %.3f,\n", inplace_ns);
    std::fprintf(f, "  \"function_ref_call_ns\": %.3f,\n", ref_ns);
    std::fprintf(f, "  \"std_function_call_ns\": %.3f,\n", stdfn_ns);
    std::fprintf(f, "  \"arena_alloc_ns\": %.3f,\n", arena_ns);
    std::fprintf(f, "  \"heap_alloc_ns\": %.3f,\n", heap_ns);
    json_round(f, "batch", batch);
    std::fprintf(f, ",\n");
    json_round(f, "word", word);
    std::fprintf(f, ",\n");
    json_round(f, "condvar", condvar);
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    std::printf("[json] results -> %s\n", json_path.c_str());
  }
  return 0;
}
