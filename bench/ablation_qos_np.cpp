// Ablation: effective QoS vs the number of parallel optional parts —
// the quantified version of the paper's closing advice to traders:
// "choose an appropriate number of parallel optional parts by considering
// the overhead associated with beginning and ending" (§VII).
//
// Two regimes on the Xeon Phi topology:
//  * the paper's 1 s task (500 ms optional window): Δb/Δe stay small
//    against the window, so more parts keep paying — np* = 228;
//  * a fast 100 ms trading task (~50 ms window): at np = 228 the ~60 ms
//    of begin+end overhead (CPU-Memory load) eats the entire window, so
//    the optimum is interior — exactly the trade-off the paper warns
//    about.
#include <array>
#include <cstdio>

#include "common/table.hpp"
#include "sim/qos_model.hpp"
#include "sim/sweep.hpp"

using namespace rtseed;

namespace {

// Returns best np per policy for the given window/load, printing a table.
// Each (np, policy) cell is independent (fixed seed 99, matching the
// historical serial run), so the grid rides the sweep pool; rows are
// assembled in index order and are identical for any thread count.
void sweep(const sim::QosModel& model, common::Nanos window,
           sim::LoadKind load, int best_np[3]) {
  const int np_set[] = {1, 4, 8, 16, 32, 57, 114, 171, 228};
  constexpr core::AssignmentPolicy kPolicies[] = {
      core::AssignmentPolicy::kOneByOne, core::AssignmentPolicy::kTwoByTwo,
      core::AssignmentPolicy::kAllByAll};
  common::Table table({"np", "one-by-one", "two-by-two", "all-by-all"});

  const sim::SweepRunner runner;
  const auto rows =
      runner.map(std::size(np_set), [&](size_t k) {
        std::array<double, 3> qos_row{};
        for (size_t p = 0; p < std::size(kPolicies); ++p) {
          sim::QosScenario scenario;
          scenario.policy = kPolicies[p];
          scenario.load = load;
          scenario.optional_window = window;
          common::Rng rng(99);
          double qos = 0.0;
          for (int trial = 0; trial < 20; ++trial) {
            qos += model.effective_qos_us(scenario, np_set[k], rng);
          }
          qos_row[p] = qos / 20.0;
        }
        return qos_row;
      });

  double best_qos[3] = {0, 0, 0};
  for (int i = 0; i < 3; ++i) best_np[i] = 1;
  for (size_t k = 0; k < std::size(np_set); ++k) {
    std::vector<double> row{static_cast<double>(np_set[k])};
    for (size_t p = 0; p < 3; ++p) {
      row.push_back(rows[k][p]);
      if (rows[k][p] > best_qos[p]) {
        best_qos[p] = rows[k][p];
        best_np[p] = np_set[k];
      }
    }
    table.add_numeric_row(row, 0);
  }
  table.print();
  std::printf("optimal np: one-by-one=%d two-by-two=%d all-by-all=%d\n\n",
              best_np[0], best_np[1], best_np[2]);
}

}  // namespace

int main() {
  const sim::QosModel model;
  std::printf(
      "=== Ablation: effective QoS vs np (Xeon Phi topology) ===\n"
      "values: equivalent single-thread microseconds of refinement per "
      "job (higher = more QoS)\n\n");

  int best_np[3];

  std::printf("### paper task: 500 ms optional window, %s ###\n",
              sim::load_kind_name(sim::LoadKind::kCpuMemory));
  sweep(model, common::millis(500), sim::LoadKind::kCpuMemory, best_np);
  const bool long_window_wants_parallelism = best_np[0] == 228;

  std::printf("### fast trading task: 50 ms optional window, %s ###\n",
              sim::load_kind_name(sim::LoadKind::kCpuMemory));
  sweep(model, common::millis(50), sim::LoadKind::kCpuMemory, best_np);
  const bool short_window_optimum_interior =
      best_np[0] < 228 && best_np[0] > 1;

  std::printf("### fast trading task: 50 ms optional window, %s ###\n",
              sim::load_kind_name(sim::LoadKind::kNone));
  sweep(model, common::millis(50), sim::LoadKind::kNone, best_np);

  // One-by-one's uniform spread maximizes per-part speed: at np = 57
  // under no load it delivers at least as much QoS as all-by-all.
  sim::QosScenario one, all;
  one.policy = core::AssignmentPolicy::kOneByOne;
  all.policy = core::AssignmentPolicy::kAllByAll;
  common::Rng r1(5), r2(5);
  double q_one = 0, q_all = 0;
  for (int trial = 0; trial < 20; ++trial) {
    q_one += model.effective_qos_us(one, 57, r1);
    q_all += model.effective_qos_us(all, 57, r2);
  }
  const bool one_by_one_wins_no_load = q_one >= q_all;

  const bool ok = long_window_wants_parallelism &&
                  short_window_optimum_interior && one_by_one_wins_no_load;
  std::printf(
      "[shape check] %s\n",
      ok ? "long windows reward full parallelism; short windows have an "
           "interior optimal np; one-by-one maximizes per-part QoS — the "
           "paper's closing trade-off, quantified"
         : "FAILED: the QoS/np trade-off did not show the expected shape");
  return ok ? 0 : 1;
}
