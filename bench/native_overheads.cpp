// Scaled-down native companion to Figs. 10-13: the four overheads
// measured on REAL middleware threads on this host.
//
// The paper's sweep needs 228 hardware threads; this binary runs the same
// protocol (SCHED_FIFO threads, condvars, per-thread deadline timers,
// always-overrunning optional parts) at host scale — np ∈ {1, 2, 4} — and
// under two synthetic background loads mirroring the paper's:
//   cpu        — branch-heavy infinite loops on every CPU (SCHED_OTHER, so
//                the RT threads preempt them, as on the Xeon Phi);
//   cpu-memory — 512 KB read/write loops (the paper sizes this to the Phi's
//                L2) polluting the caches.
//
// Flags: --trace out.json   write a Perfetto trace of the np=4 no-load run
//        --metrics out.prom write its Prometheus metrics dump
//        --attribution out.json
//                           write the per-job deadline-miss attribution
//                           report of that run (rtseed-attribution-v1)
//                           and print its cause table
//        --json out.json    machine-readable results: one record per
//                           (load, np) cell with full Δm/Δb/Δs/Δe
//                           percentiles (CI archives this as
//                           BENCH_native.json)
#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/table.hpp"
#include "core/runtime.hpp"
#include "obs/attribution.hpp"
#include "obs/perfetto_export.hpp"
#include "obs/prometheus_export.hpp"
#include "rt/periodic_clock.hpp"

using namespace rtseed;

namespace {

using common::millis;
using common::Nanos;

// Background load threads (best-effort priority; RT threads preempt them).
class BackgroundLoad {
 public:
  enum class Kind { kNone, kCpu, kCpuMemory };

  explicit BackgroundLoad(Kind kind) : kind_(kind) {
    if (kind_ == Kind::kNone) return;
    const int n = rt::rt_capabilities().num_cpus;
    for (int i = 0; i < n; ++i) {
      workers_.emplace_back([this] { run(); });
    }
  }

  ~BackgroundLoad() {
    stop_.store(true);
    for (auto& worker : workers_) worker.join();
  }

  static const char* name(Kind kind) {
    switch (kind) {
      case Kind::kNone:
        return "no-load";
      case Kind::kCpu:
        return "cpu-load";
      case Kind::kCpuMemory:
        return "cpu-memory-load";
    }
    return "?";
  }

 private:
  void run() {
    if (kind_ == Kind::kCpu) {
      // Branch-heavy infinite loop (the paper's CPU load).
      volatile long counter = 0;
      while (!stop_.load(std::memory_order_relaxed)) {
        for (int i = 0; i < 4096; ++i) {
          if ((counter & 1) != 0) {
            counter = counter + 3;
          } else {
            counter = counter + 1;
          }
        }
      }
    } else {
      // 512 KB read/write loop (the paper sizes this to the Phi's L2).
      std::vector<char> buffer(512 * 1024);
      volatile char sink = 0;
      size_t i = 0;
      while (!stop_.load(std::memory_order_relaxed)) {
        buffer[i] = static_cast<char>(i);
        sink = buffer[(i * 64 + 8192) % buffer.size()];
        i = (i + 64) % buffer.size();
      }
      (void)sink;
    }
  }

  Kind kind_;
  std::atomic<bool> stop_{false};
  std::vector<std::thread> workers_;
};

core::OverheadSummary run_one(int np, BackgroundLoad::Kind load, int jobs,
                              const std::string& trace_path = "",
                              const std::string& metrics_path = "",
                              const std::string& attribution_path = "") {
  BackgroundLoad background(load);

  core::RuntimeOptions options;
  options.initial_offset = millis(10);
  options.telemetry.enabled = !trace_path.empty() || !metrics_path.empty() ||
                              !attribution_path.empty();
  core::Runtime runtime(options);

  core::TaskConfig tc;
  tc.params.name = "tau1";
  tc.params.period = millis(50);
  tc.params.mandatory = millis(10);
  tc.params.windup = millis(10);
  for (int k = 0; k < np; ++k) tc.params.optional.push_back(millis(50));
  tc.num_jobs = jobs;
  tc.callbacks.mandatory = [](const core::JobContext&) {};
  tc.callbacks.optional = [](const core::JobContext&, int,
                             core::StopToken&) {
    volatile double sink = 1.0;
    for (;;) sink = sink * 1.0000001 + 1e-9;  // always overruns (paper §V-A)
  };
  tc.callbacks.windup = [](const core::JobContext&) {};

  if (!runtime.admit(std::move(tc)).is_ok() || !runtime.start().is_ok()) {
    return {};
  }
  runtime.wait_all_finished();
  const auto report = runtime.stop_and_report();
  if (options.telemetry.enabled) {
    const auto snapshot = runtime.telemetry_snapshot();
    if (!trace_path.empty() &&
        obs::write_perfetto_trace(trace_path, snapshot).is_ok()) {
      std::printf("[telemetry] %llu events -> %s (ui.perfetto.dev)\n",
                  static_cast<unsigned long long>(snapshot.total_events()),
                  trace_path.c_str());
    }
    if (!metrics_path.empty() &&
        obs::write_prometheus(metrics_path, runtime.telemetry()->metrics())
            .is_ok()) {
      std::printf("[telemetry] metrics -> %s\n", metrics_path.c_str());
    }
    if (!attribution_path.empty()) {
      obs::AttributionOptions aoptions;
      if (fault::Injector* injector = fault::active_injector()) {
        aoptions.fault_fires = injector->fire_log();
      }
      const auto report = obs::attribute_jobs(snapshot, aoptions);
      std::FILE* f = std::fopen(attribution_path.c_str(), "w");
      if (f != nullptr) {
        const std::string json = report.to_json();
        std::fwrite(json.data(), 1, json.size(), f);
        std::fputc('\n', f);
        std::fclose(f);
        std::printf("[attribution] %zu jobs -> %s\n", report.jobs.size(),
                    attribution_path.c_str());
      }
      std::printf("%s", report.to_ascii().c_str());
    }
  }
  return report.tasks[0].overheads;
}

void json_summary(std::FILE* f, const char* name,
                  const common::Summary& s) {
  std::fprintf(f,
               "      \"%s_us\": {\"count\": %zu, \"mean\": %.3f, "
               "\"p50\": %.3f, \"p90\": %.3f, \"p99\": %.3f, "
               "\"max\": %.3f}",
               name, s.count, s.mean, s.p50, s.p90, s.p99, s.max);
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string metrics_path;
  std::string json_path;
  std::string attribution_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--attribution") == 0 && i + 1 < argc) {
      attribution_path = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--trace out.json] [--metrics out.prom] "
                   "[--attribution out.json] [--json out.json]\n",
                   argv[0]);
      return 2;
    }
  }

  constexpr int kJobs = 30;
  const int np_values[] = {1, 2, 4};
  const BackgroundLoad::Kind loads[] = {BackgroundLoad::Kind::kNone,
                                        BackgroundLoad::Kind::kCpu,
                                        BackgroundLoad::Kind::kCpuMemory};

  std::printf(
      "=== Native overhead measurement (real middleware threads, %s, "
      "%d jobs, T=50ms, m=w=10ms, overrunning optionals) ===\n",
      rt::rt_capabilities().to_string().c_str(), kJobs);
  std::printf("paper analogue: Figs. 10-13 at host scale (np in {1,2,4})\n\n");

  common::Table table({"load", "np", "dm mean[us]", "db mean[us]",
                       "ds mean[us]", "de mean[us]"});
  struct Cell {
    const char* load;
    int np;
    core::OverheadSummary oh;
  };
  std::vector<Cell> cells;
  bool de_grows = true;
  for (auto load : loads) {
    double prev_de = -1.0;
    for (int np : np_values) {
      // The np=4 no-load run carries the telemetry exports.
      const bool instrumented =
          np == 4 && load == BackgroundLoad::Kind::kNone;
      const auto oh = instrumented
                          ? run_one(np, load, kJobs, trace_path, metrics_path,
                                    attribution_path)
                          : run_one(np, load, kJobs);
      table.add_row({BackgroundLoad::name(load), std::to_string(np),
                     common::format_double(oh.delta_m.mean, 1),
                     common::format_double(oh.delta_b.mean, 1),
                     common::format_double(oh.delta_s.mean, 1),
                     common::format_double(oh.delta_e.mean, 1)});
      cells.push_back({BackgroundLoad::name(load), np, oh});
      if (prev_de >= 0.0 && oh.delta_e.mean + 1e-9 < prev_de * 0.5) {
        de_grows = false;  // Δe should not collapse as np grows
      }
      prev_de = oh.delta_e.mean;
    }
  }
  table.print();

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 2;
    }
    const auto& caps = rt::rt_capabilities();
    std::fprintf(f,
                 "{\n  \"bench\": \"native_overheads\",\n"
                 "  \"jobs\": %d,\n  \"period_ms\": 50,\n"
                 "  \"wake_backend\": \"%s\",\n"
                 "  \"host\": {\"cpus\": %d, \"sched_fifo\": %s, "
                 "\"affinity\": %s},\n  \"runs\": [\n",
                 kJobs,
                 core::wake_backend_name(
                     core::resolve_wake_backend(core::WakeBackend::kAuto)),
                 caps.num_cpus, caps.sched_fifo ? "true" : "false",
                 caps.affinity ? "true" : "false");
    for (size_t i = 0; i < cells.size(); ++i) {
      std::fprintf(f, "    {\"load\": \"%s\", \"np\": %d,\n",
                   cells[i].load, cells[i].np);
      json_summary(f, "delta_m", cells[i].oh.delta_m);
      std::fprintf(f, ",\n");
      json_summary(f, "delta_b", cells[i].oh.delta_b);
      std::fprintf(f, ",\n");
      json_summary(f, "delta_s", cells[i].oh.delta_s);
      std::fprintf(f, ",\n");
      json_summary(f, "delta_e", cells[i].oh.delta_e);
      std::fprintf(f, "\n    }%s\n", i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("[json] results -> %s\n", json_path.c_str());
  }
  std::printf(
      "\n[note] on this host all threads share %d CPU(s); absolute values "
      "are not comparable to the Xeon Phi, but Δe (ending the optional "
      "parts) remains the dominant overhead, as in the paper.\n",
      rt::rt_capabilities().num_cpus);
  return de_grows ? 0 : 1;
}
