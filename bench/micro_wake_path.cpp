// Micro-benchmark of the mandatory↔optional wake path, A/B/C across the
// OptionalPool backends (batched futex generation word, per-slot futex
// command word, legacy mutex+condvar):
//
//   signal_window   — the Δb loop alone: per-round time spent publishing
//                     the job and waking np parts (RoundResult timestamps);
//   complete_wake   — the completion path alone: last part ended → the
//                     mandatory thread observes the round finished;
//   full_round      — wall time of run_round with empty bodies, i.e. the
//                     whole protocol round trip (Δb + Δs + body + Δe).
//
// Every benchmark publishes three machine-checkable counters
// (gates.json → BENCH_wake.json):
//   wakes_per_round   rt::wake_word syscalls per iteration — the batched
//                     backend's reason to exist (≈1+1 vs. np+1);
//   sleeps_per_round  kernel sleeps entered by either side;
//   allocs_per_round  heap allocations per iteration, ticked by the
//                     linked rtseed_alloc_hook — steady state is ZERO.
//
// Bodies are empty and run under kPeriodicCheck so the termination
// machinery (timers, signals) stays out of the picture — what remains IS
// the handoff protocol.  fifo_priority is 0 so the benchmark runs
// unprivileged; absolute numbers shrink on real RT hosts but the
// backend ordering is the same (fewer syscalls, no mutex convoy).
#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>

#include "core/assignment.hpp"
#include "gbench_json_main.hpp"
#include "core/optional_pool.hpp"
#include "obs/hotpath_audit.hpp"
#include "rt/futex.hpp"
#include "rt/topology.hpp"

using namespace rtseed;

namespace {

using common::Nanos;

std::unique_ptr<core::OptionalPool> make_pool(
    core::WakeBackend backend, int np,
    core::OptionalPool::PartBody body = nullptr) {
  core::OptionalPool::Options options;
  options.termination = core::TerminationStrategy::kPeriodicCheck;
  options.fifo_priority = 0;
  options.cpus = core::assign_optional_parts(
      rt::Topology::native(), core::AssignmentPolicy::kOneByOne, np);
  options.name_prefix = "bench";
  options.wake_backend = backend;
  if (!body) body = [](const core::JobContext&, int, core::StopToken&) {};
  return std::make_unique<core::OptionalPool>(std::move(options),
                                              std::move(body));
}

core::WakeBackend backend_of(const benchmark::State& state) {
  switch (state.range(0)) {
    case 0:
      return core::WakeBackend::kFutexWord;
    case 1:
      return core::WakeBackend::kCondvar;
    default:
      return core::WakeBackend::kFutexBatch;
  }
}

// Snapshot of the gated hot-path resource counters; publish() divides the
// deltas over the iterations just timed.  Constructed AFTER pool start and
// warm-up so thread spawning is not charged to the steady state.
struct CounterWindow {
  obs::HotpathAudit audit;
  void publish(benchmark::State& state) const {
    const auto wake = audit.wake_delta();
    const auto alloc = audit.alloc_delta();
    const auto iters =
        static_cast<double>(state.iterations() > 0 ? state.iterations() : 1);
    state.counters["wakes_per_round"] =
        static_cast<double>(wake.wake_calls) / iters;
    state.counters["sleeps_per_round"] =
        static_cast<double>(wake.wait_sleeps) / iters;
    state.counters["allocs_per_round"] =
        static_cast<double>(alloc.alloc_calls) / iters;
  }
};

void warm_up(core::OptionalPool& pool, int np) {
  for (int round = 0; round < 10; ++round) {
    core::JobContext ctx;
    ctx.job = round;
    ctx.release = common::monotonic_now();
    ctx.deadline = ctx.release + common::seconds(10);
    ctx.optional_deadline = ctx.deadline;
    (void)pool.run_round(ctx, np);
  }
}

core::JobContext next_job(common::JobId job) {
  core::JobContext ctx;
  ctx.job = job;
  ctx.release = common::monotonic_now();
  ctx.deadline = ctx.release + common::seconds(10);
  ctx.optional_deadline = ctx.release + common::seconds(10);
  return ctx;
}

// Δb in isolation: the signal loop's own window, as timestamped by
// run_round itself (one publish + exchange + conditional wake per part).
void BM_SignalWindow(benchmark::State& state) {
  const int np = static_cast<int>(state.range(1));
  auto pool = make_pool(backend_of(state), np);
  if (!pool->start().is_ok()) {
    state.SkipWithError("pool start failed");
    return;
  }
  warm_up(*pool, np);
  const CounterWindow window;
  common::JobId job = 0;
  for (auto _ : state) {
    const auto round = pool->run_round(next_job(job++), np);
    state.SetIterationTime(
        static_cast<double>(round.signal_end - round.signal_start) * 1e-9);
  }
  window.publish(state);
  state.SetLabel(core::wake_backend_name(pool->backend()));
}
BENCHMARK(BM_SignalWindow)
    ->ArgsProduct({{0, 1, 2}, {1, 2, 4}})
    ->ArgNames({"backend", "np"})
    ->UseManualTime();

// The completion path in isolation: from the moment the last part's body
// returned (worker-side timestamp) to run_round returning control to the
// caller — the countdown + wake that Δe pays on every round.
void BM_CompleteWake(benchmark::State& state) {
  const int np = static_cast<int>(state.range(1));
  std::atomic<Nanos> last_body_end{0};
  auto pool = make_pool(
      backend_of(state), np,
      [&last_body_end](const core::JobContext&, int, core::StopToken&) {
        const Nanos now = common::monotonic_now();
        Nanos prev = last_body_end.load(std::memory_order_relaxed);
        while (prev < now && !last_body_end.compare_exchange_weak(
                                 prev, now, std::memory_order_relaxed)) {
        }
      });
  if (!pool->start().is_ok()) {
    state.SkipWithError("pool start failed");
    return;
  }
  warm_up(*pool, np);
  const CounterWindow window;
  common::JobId job = 0;
  for (auto _ : state) {
    last_body_end.store(0, std::memory_order_relaxed);
    (void)pool->run_round(next_job(job++), np);
    const Nanos back = common::monotonic_now();
    state.SetIterationTime(
        static_cast<double>(back -
                            last_body_end.load(std::memory_order_relaxed)) *
        1e-9);
  }
  window.publish(state);
  state.SetLabel(core::wake_backend_name(pool->backend()));
}
BENCHMARK(BM_CompleteWake)
    ->ArgsProduct({{0, 1, 2}, {1, 2, 4}})
    ->ArgNames({"backend", "np"})
    ->UseManualTime();

// The whole protocol round trip with empty bodies: what a maximally fast
// optional phase costs end to end.
void BM_FullRound(benchmark::State& state) {
  const int np = static_cast<int>(state.range(1));
  auto pool = make_pool(backend_of(state), np);
  if (!pool->start().is_ok()) {
    state.SkipWithError("pool start failed");
    return;
  }
  warm_up(*pool, np);
  const CounterWindow window;
  common::JobId job = 0;
  for (auto _ : state) {
    const auto round = pool->run_round(next_job(job++), np);
    benchmark::DoNotOptimize(round.completed);
  }
  window.publish(state);
  state.SetLabel(core::wake_backend_name(pool->backend()));
}
BENCHMARK(BM_FullRound)
    ->ArgsProduct({{0, 1, 2}, {1, 2, 4}})
    ->ArgNames({"backend", "np"});

}  // namespace

RTSEED_BENCHMARK_JSON_MAIN();
