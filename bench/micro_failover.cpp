// Micro-benchmark of shard-process failover: what a SIGKILL'd shard
// COSTS, end to end, so DESIGN.md §14's "crash isolation is bounded
// recovery, not bounded hope" claim is a measured number.
//
//   [steady]   post->apply round-trip while healthy (events/s sustained).
//   [detect]   SIGKILL -> waitpid reap (zombie latency seen by the
//              supervisor's scan).
//   [respawn]  re-fork + journal replay (snapshot + deltas) + the child
//              reporting kRunning.
//   [catchup]  draining the ingress backlog that buffered while dead.
//   [window]   the whole outage as recorded by the FailoverWindow (the
//              span obs::attribute_jobs joins miss causes against).
//   [digest]   recovered book digest and position versus a never-killed
//              in-process mirror fed the identical accepted stream —
//              equality is the correctness gate, pinned in CI.
//
// Flags: --json out.json   machine-readable results (CI archives this as
//                          BENCH_failover.json)
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "lob/flow.hpp"
#include "shard/process_runtime.hpp"
#include "shard/worker.hpp"

namespace {

using rtseed::common::millis;
using rtseed::common::monotonic_now;
using rtseed::common::Nanos;
using rtseed::common::seconds;
using rtseed::common::u32;
using rtseed::common::u64;
namespace shard = rtseed::shard;
namespace lob = rtseed::lob;

constexpr u32 kSymbols = 16;
constexpr int kPreKill = 20000;   // applied before the crash
constexpr int kWhileDead = 500;   // buffered in the ring during the outage
constexpr int kPostRespawn = 2000;

double to_ms(Nanos d) { return static_cast<double>(d) / 1e6; }

shard::WorkerConfig bench_worker() {
  shard::WorkerConfig config;
  config.book.min_tick = 1;
  config.book.num_levels = 1 << 10;
  config.book.max_orders = 1 << 12;
  config.risk.max_order_qty = 0;
  config.snapshot_every = 4096;
  return config;
}

struct Results {
  double steady_kevents_s = 0;
  double detect_ms = 0;
  double respawn_ms = 0;
  double catchup_ms = 0;
  double window_ms = 0;
  bool digest_match = false;
  bool position_match = false;
  u64 recoveries = 0;
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json out.json]\n", argv[0]);
      return 2;
    }
  }

  char templ[] = "/tmp/rtseed_failover_bench_XXXXXX";
  if (mkdtemp(templ) == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    return 1;
  }
  const std::string dir = templ;

  shard::ProcessRuntimeOptions options;
  options.num_shards = 1;
  options.worker = bench_worker();
  options.journal_dir = dir;
  options.drain_slice = rtseed::common::micros(200);
  options.start_supervisor = false;
  auto runtime = shard::ProcessShardRuntime::create(options);
  if (!runtime.has_value()) {
    std::fprintf(stderr, "create: %s\n", runtime.status().to_string().c_str());
    return 1;
  }
  auto& rt = **runtime;
  if (auto st = rt.start(); !st.is_ok()) {
    std::fprintf(stderr, "start: %s\n", st.to_string().c_str());
    return 1;
  }

  // Never-killed reference, fed exactly the accepted stream with the
  // runtime's own seq numbering.
  auto mirror = shard::ShardWorker::create(bench_worker());
  if (!mirror.has_value()) return 1;
  u64 mirror_seq = 0;
  lob::FlowGenerator gen(4242, options.worker.book);
  u32 symbol = 0;
  const auto pump = [&](int count) {
    long accepted = 0;
    for (int i = 0; i < count; ++i) {
      const lob::FlowEvent ev = gen.next();
      if (rt.post_flow(symbol, ev)) {
        shard::ShardMessage msg{};
        msg.kind = shard::MessageKind::kFlow;
        msg.symbol = symbol;
        msg.seq = ++mirror_seq;
        msg.body.flow.price_ticks = ev.price;
        msg.body.flow.qty = ev.qty;
        msg.body.flow.flow_kind = static_cast<u32>(ev.kind);
        msg.body.flow.side = static_cast<u32>(ev.side);
        msg.body.flow.pick = ev.pick;
        (*mirror)->apply(msg);
        ++accepted;
      }
      symbol = (symbol + 1) % kSymbols;
    }
    return accepted;
  };

  Results r;
  std::printf("=== micro_failover: cost of a shard-process crash ===\n\n");

  // [steady]
  {
    const Nanos start = monotonic_now();
    pump(kPreKill);
    if (!rt.quiesce(0, seconds(30))) {
      std::fprintf(stderr, "steady-state quiesce timed out\n");
      return 1;
    }
    const Nanos elapsed = monotonic_now() - start;
    r.steady_kevents_s =
        static_cast<double>(kPreKill) / (static_cast<double>(elapsed) / 1e9) /
        1e3;
    std::printf("[steady]   healthy apply throughput:   %9.1f kevents/s\n",
                r.steady_kevents_s);
  }

  // [detect] SIGKILL -> reap.
  {
    const Nanos kill_at = monotonic_now();
    if (!rt.signal_process(0, SIGKILL)) return 1;
    while (!rt.reap_process(0)) {
      if (monotonic_now() - kill_at > seconds(10)) {
        std::fprintf(stderr, "reap timed out\n");
        return 1;
      }
      ::usleep(100);
    }
    r.detect_ms = to_ms(monotonic_now() - kill_at);
    std::printf("[detect]   SIGKILL -> reaped:           %9.3f ms\n",
                r.detect_ms);
  }

  // The outage backlog: accepted posts buffer in the shm ring.
  pump(kWhileDead);

  // [respawn] fork + journal replay + kRunning.
  {
    const Nanos start = monotonic_now();
    if (!rt.respawn_process(0)) {
      std::fprintf(stderr, "respawn failed\n");
      return 1;
    }
    r.respawn_ms = to_ms(monotonic_now() - start);
    std::printf("[respawn]  fork + replay + running:     %9.3f ms\n",
                r.respawn_ms);
  }

  // [catchup] drain the backlog the outage left behind.
  {
    const Nanos start = monotonic_now();
    if (!rt.quiesce(0, seconds(30))) {
      std::fprintf(stderr, "catch-up quiesce timed out\n");
      return 1;
    }
    r.catchup_ms = to_ms(monotonic_now() - start);
    std::printf("[catchup]  backlog drained:             %9.3f ms\n",
                r.catchup_ms);
  }

  const auto windows = rt.failover_windows();
  if (windows.size() == 1 && windows[0].end > windows[0].begin) {
    r.window_ms = to_ms(windows[0].end - windows[0].begin);
  }
  std::printf("[window]   recorded failover window:    %9.3f ms\n",
              r.window_ms);

  // [digest] the bit-identity gate, after more post-recovery traffic.
  pump(kPostRespawn);
  if (!rt.quiesce(0, seconds(30))) return 1;
  auto digest = rt.request_digest(0, seconds(10));
  if (!digest.has_value()) {
    std::fprintf(stderr, "digest: %s\n", digest.status().to_string().c_str());
    return 1;
  }
  r.digest_match = *digest == (*mirror)->book_digest();
  r.position_match =
      rt.control(0)->position.load() == (*mirror)->position();
  r.recoveries = rt.control(0)->recoveries.load();
  std::printf("[digest]   recovered == reference:      %9s\n",
              r.digest_match ? "yes" : "NO");
  std::printf("[position] recovered == reference:      %9s\n",
              r.position_match ? "yes" : "NO");
  rt.stop();

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"micro_failover\",\n"
                 "  \"steady_kevents_s\": %.1f,\n"
                 "  \"detect_ms\": %.3f,\n"
                 "  \"respawn_ms\": %.3f,\n"
                 "  \"catchup_ms\": %.3f,\n"
                 "  \"window_ms\": %.3f,\n"
                 "  \"recoveries\": %llu,\n"
                 "  \"recovered_digest_matches\": %s,\n"
                 "  \"recovered_position_matches\": %s\n"
                 "}\n",
                 r.steady_kevents_s, r.detect_ms, r.respawn_ms, r.catchup_ms,
                 r.window_ms, static_cast<unsigned long long>(r.recoveries),
                 r.digest_match ? "true" : "false",
                 r.position_match ? "true" : "false");
    std::fclose(f);
    std::printf("\n[json] results -> %s\n", json_path.c_str());
  }

  for (int s = 0; s < options.num_shards; ++s) {
    ::unlink((dir + "/shard-" + std::to_string(s) + ".journal").c_str());
  }
  ::rmdir(dir.c_str());
  return (r.digest_match && r.position_match) ? 0 : 1;
}
