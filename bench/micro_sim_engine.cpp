// micro_sim_engine: A/B benchmark for the two PR-3 performance layers.
//
//  1. Sweep engine — the Fig. 10 sweep run serial (sweep_threads = 1)
//     vs. on the work pool (sweep_threads = auto), with a bit-exact
//     comparison of the resulting FigureData (the determinism property
//     the per-cell seeding guarantees).
//  2. Simulation core — the legacy O(n)-scan discrete-event engine vs.
//     the event-indexed engine (timer heap + rank bitmaps), on random
//     task sets of growing size, for both the uniprocessor/partitioned
//     and the global scheduler, again with identity checks.
//
// Flags: --json out.json   machine-readable results (CI archives this as
//                          BENCH_sim.json next to BENCH_native.json)
//
// Exit code is nonzero if any identity check fails, so the bench doubles
// as a smoke-level equivalence test on whatever host CI runs it on.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "sched/generator.hpp"
#include "sim/experiment.hpp"
#include "sim/global_scheduler.hpp"
#include "sim/sim_scheduler.hpp"
#include "sim/sweep.hpp"

using namespace rtseed;

namespace {

double elapsed_ms(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// Runs fn() `reps` times and returns the fastest wall-clock in ms.
template <typename Fn>
double best_of(int reps, Fn&& fn) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const double ms = elapsed_ms(t0);
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

// --- order-sensitive fingerprints -----------------------------------------
// splitmix64 chaining over every numeric field: two results hash equal iff
// they are field-for-field identical (up to 64-bit collisions).

common::u64 mix(common::u64 h, common::u64 v) {
  common::u64 state = h ^ (v + 0x9E3779B97F4A7C15ULL);
  return common::splitmix64(state);
}

common::u64 mix_double(common::u64 h, double d) {
  common::u64 bits;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  return mix(h, bits);
}

common::u64 fingerprint(common::u64 h, const sim::SimTaskStats& s) {
  h = mix(h, static_cast<common::u64>(s.released));
  h = mix(h, static_cast<common::u64>(s.completed));
  h = mix(h, static_cast<common::u64>(s.misses));
  h = mix(h, static_cast<common::u64>(s.optional_completed));
  h = mix(h, static_cast<common::u64>(s.optional_terminated));
  h = mix(h, static_cast<common::u64>(s.optional_discarded));
  h = mix(h, static_cast<common::u64>(s.max_response));
  return h;
}

common::u64 fingerprint(const sim::SimResult& r) {
  common::u64 h = 0xF16E59;
  for (const auto& s : r.tasks) h = fingerprint(h, s);
  for (const auto& slice : r.trace) {
    h = mix(h, static_cast<common::u64>(slice.task));
    h = mix(h, static_cast<common::u64>(slice.job));
    h = mix(h, static_cast<common::u64>(slice.part));
    h = mix(h, static_cast<common::u64>(slice.start));
    h = mix(h, static_cast<common::u64>(slice.end));
  }
  for (common::Nanos od : r.optional_deadlines) {
    h = mix(h, static_cast<common::u64>(od));
  }
  return h;
}

common::u64 fingerprint(const sim::GlobalSimResult& r) {
  common::u64 h = 0x610BA1;
  for (const auto& s : r.tasks) h = fingerprint(h, s);
  for (common::Nanos od : r.optional_deadlines) {
    h = mix(h, static_cast<common::u64>(od));
  }
  h = mix(h, static_cast<common::u64>(r.migrations));
  h = mix(h, static_cast<common::u64>(r.preemptions));
  return h;
}

common::u64 fingerprint(const sim::FigureData& fig) {
  common::u64 h = 0xF16;
  h = mix(h, static_cast<common::u64>(fig.kind));
  for (double x : fig.np) h = mix_double(h, x);
  for (const auto& subplot : fig.subplots) {
    h = mix(h, static_cast<common::u64>(subplot.load));
    for (const auto& series : subplot.series) {
      for (double y : series.y) h = mix_double(h, y);
    }
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json out.json]\n", argv[0]);
      return 2;
    }
  }

  const unsigned host_threads = std::max(1u, std::thread::hardware_concurrency());
  const int sweep_threads = sim::SweepRunner().threads();
  std::printf(
      "=== micro_sim_engine: sweep pool + event-indexed core A/B ===\n"
      "host threads: %u, sweep pool degree: %d\n\n",
      host_threads, sweep_threads);

  bool all_identical = true;

  // ---- 1. Fig. 10 sweep: serial vs. work pool ---------------------------
  sim::FigureConfig fig;
  fig.kind = sim::OverheadKind::kBeginMandatory;

  sim::FigureData serial_fig, parallel_fig;
  fig.sweep_threads = 1;
  const double sweep_serial_ms = best_of(3, [&] { serial_fig = run_figure(fig); });
  fig.sweep_threads = 0;  // resolve from env / hardware
  const double sweep_parallel_ms =
      best_of(3, [&] { parallel_fig = run_figure(fig); });
  const bool sweep_identical =
      fingerprint(serial_fig) == fingerprint(parallel_fig);
  all_identical &= sweep_identical;
  const double sweep_speedup = sweep_serial_ms / sweep_parallel_ms;
  std::printf(
      "[sweep]  fig10 serial %.1f ms | %d threads %.1f ms | speedup %.2fx | "
      "%s\n\n",
      sweep_serial_ms, sweep_threads, sweep_parallel_ms, sweep_speedup,
      sweep_identical ? "bit-identical" : "MISMATCH");

  // ---- 2. DES core: legacy scans vs. event index ------------------------
  struct DesRow {
    const char* sim;
    int tasks;
    double legacy_ms = 0;
    double indexed_ms = 0;
    double speedup = 0;
    bool identical = false;
  };
  std::vector<DesRow> des;
  const common::Nanos horizon = common::millis(1000);

  for (int n : {12, 48, 96}) {
    common::Rng rng(sim::SweepRunner::cell_seed(424242,
                                                {static_cast<common::u64>(n)}));
    sched::GeneratorConfig gen;
    gen.num_tasks = n;
    gen.total_utilization = 0.85;
    gen.min_period = common::millis(1);
    gen.max_period = common::millis(50);
    gen.optional_parts = 2;
    const auto set = sched::generate_task_set(gen, rng);

    sim::SimOptions opt;
    opt.algorithm = sim::SimAlgorithm::kRmwp;
    opt.horizon = horizon;

    DesRow row{"uniprocessor", n};
    common::u64 legacy_fp = 0, indexed_fp = 0;
    opt.engine = sim::SimEngine::kLegacy;
    row.legacy_ms = best_of(3, [&] {
      legacy_fp = fingerprint(sim::simulate_uniprocessor(set, opt));
    });
    opt.engine = sim::SimEngine::kIndexed;
    row.indexed_ms = best_of(3, [&] {
      indexed_fp = fingerprint(sim::simulate_uniprocessor(set, opt));
    });
    row.speedup = row.legacy_ms / row.indexed_ms;
    row.identical = legacy_fp == indexed_fp;
    all_identical &= row.identical;
    des.push_back(row);

    // Global: same n spread over M=4 processors at a feasible load.
    common::Rng grng(sim::SweepRunner::cell_seed(
        555, {static_cast<common::u64>(n)}));
    gen.total_utilization = 0.7 * 4;
    const auto gset = sched::generate_task_set(gen, grng);

    sim::GlobalSimOptions gopt;
    gopt.algorithm = sim::SimAlgorithm::kRmwp;
    gopt.num_processors = 4;
    gopt.horizon = horizon;

    DesRow grow{"global", n};
    gopt.engine = sim::SimEngine::kLegacy;
    grow.legacy_ms = best_of(3, [&] {
      legacy_fp = fingerprint(sim::simulate_global(gset, gopt));
    });
    gopt.engine = sim::SimEngine::kIndexed;
    grow.indexed_ms = best_of(3, [&] {
      indexed_fp = fingerprint(sim::simulate_global(gset, gopt));
    });
    grow.speedup = grow.legacy_ms / grow.indexed_ms;
    grow.identical = legacy_fp == indexed_fp;
    all_identical &= grow.identical;
    des.push_back(grow);
  }

  for (const auto& row : des) {
    std::printf(
        "[des]    %-13s n=%-3d legacy %8.2f ms | indexed %8.2f ms | "
        "speedup %5.2fx | %s\n",
        row.sim, row.tasks, row.legacy_ms, row.indexed_ms, row.speedup,
        row.identical ? "identical" : "MISMATCH");
  }

  double des_speedup_max = 0;
  for (const auto& row : des) des_speedup_max = std::max(des_speedup_max, row.speedup);
  std::printf(
      "\nheadline: fig10 sweep %.2fx (parallel), DES core up to %.2fx "
      "(indexed)\n",
      sweep_speedup, des_speedup_max);

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 2;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"micro_sim_engine\",\n"
                 "  \"host_threads\": %u,\n"
                 "  \"sweep_threads\": %d,\n"
                 "  \"sweep\": {\"figure\": \"fig10\", \"serial_ms\": %.3f, "
                 "\"parallel_ms\": %.3f, \"speedup\": %.3f, "
                 "\"identical\": %s},\n"
                 "  \"des\": [\n",
                 host_threads, sweep_threads, sweep_serial_ms,
                 sweep_parallel_ms, sweep_speedup,
                 sweep_identical ? "true" : "false");
    for (size_t i = 0; i < des.size(); ++i) {
      const auto& row = des[i];
      std::fprintf(f,
                   "    {\"sim\": \"%s\", \"tasks\": %d, \"legacy_ms\": %.3f, "
                   "\"indexed_ms\": %.3f, \"speedup\": %.3f, "
                   "\"identical\": %s}%s\n",
                   row.sim, row.tasks, row.legacy_ms, row.indexed_ms,
                   row.speedup, row.identical ? "true" : "false",
                   i + 1 < des.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n"
                 "  \"all_identical\": %s\n"
                 "}\n",
                 all_identical ? "true" : "false");
    std::fclose(f);
    std::printf("[json] results -> %s\n", json_path.c_str());
  }

  std::printf("[identity check] %s\n",
              all_identical
                  ? "all engine/thread configurations agree bit-for-bit"
                  : "FAILED: a configuration produced different numbers");
  return all_identical ? 0 : 1;
}
