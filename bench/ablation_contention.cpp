// Ablation: how the Fig. 13 policy ordering depends on the SMT-contention
// model (the design choice DESIGN.md calls out for the Xeon Phi
// substitution).
//
// Sweeps the background-sibling sensitivity a_bg of the end-of-optional
// cost and reports the one-by-one / all-by-all overhead ratio at np = 57
// under the CPU-Memory load.  At a_bg = 0 the policies tie (no SMT
// mechanism); the paper's qualitative result — one-by-one clearly worst —
// emerges as soon as background siblings carry real cost, and the ratio
// grows monotonically with a_bg.
#include <array>
#include <cstdio>
#include <vector>

#include "common/table.hpp"
#include "sim/overhead_model.hpp"
#include "sim/sweep.hpp"

using namespace rtseed;

int main() {
  std::printf(
      "=== Ablation: Fig. 13 policy gap vs SMT background-sibling cost "
      "===\n(np=57, cpu-memory load, 100 jobs/point)\n\n");

  common::Table table({"a_bg", "one-by-one [us]", "all-by-all [us]",
                       "ratio"});
  double previous_ratio = 0.0;
  bool monotone = true;
  bool tie_at_zero = false;

  // Each a_bg grid point is an independent sweep cell (fixed seed 7,
  // matching the historical serial run — the shared stream correlates
  // noise across points, which the monotonicity check relies on).
  std::vector<double> grid;
  for (double a_bg = 0.0; a_bg <= 0.61; a_bg += 0.1) grid.push_back(a_bg);
  const sim::SweepRunner runner;
  const auto points = runner.map(grid.size(), [&](size_t cell) {
    const double a_bg = grid[cell];
    sim::ContentionParams params;
    params.end_bg_sibling[1] = a_bg;  // cpu load
    params.end_bg_sibling[2] = a_bg;  // cpu-memory load
    const sim::OverheadModel model(params);

    sim::OverheadScenario scenario;
    scenario.load = sim::LoadKind::kCpuMemory;
    scenario.num_optional_parts = 57;

    common::Rng rng(7);
    scenario.policy = core::AssignmentPolicy::kOneByOne;
    const double one =
        model.measure_us(sim::OverheadKind::kEndOptional, scenario, 100, rng)
            .mean;
    scenario.policy = core::AssignmentPolicy::kAllByAll;
    const double all =
        model.measure_us(sim::OverheadKind::kEndOptional, scenario, 100, rng)
            .mean;
    return std::array<double, 2>{one, all};
  });

  for (size_t cell = 0; cell < grid.size(); ++cell) {
    const double a_bg = grid[cell];
    const double one = points[cell][0];
    const double all = points[cell][1];
    const double ratio = one / all;
    table.add_numeric_row({a_bg, one, all, ratio}, 3);
    if (a_bg == 0.0) tie_at_zero = ratio < 1.05;
    if (ratio + 0.02 < previous_ratio) monotone = false;
    previous_ratio = ratio;
  }
  table.print();

  const bool ok = tie_at_zero && monotone && previous_ratio > 1.5;
  std::printf(
      "\n[shape check] %s\n",
      ok ? "policies tie without SMT cost; the paper's one-by-one-worst gap "
           "emerges and grows with a_bg"
         : "FAILED: the policy gap does not behave as modeled");
  return ok ? 0 : 1;
}
