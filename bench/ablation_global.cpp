// Ablation: G-RMWP (global) vs P-RMWP (partitioned) — the paper's §IV-B
// design decision made quantitative.
//
// Over random task sets on M = 4 processors, sweeping system utilization:
//   * success ratio of each approach (partitioned = FFD + RMWP admission;
//     global = simulation outcome, since no simple exact global test
//     exists);
//   * migrations per second incurred by the global scheduler;
//   * global success ratio again with a per-migration overhead charged
//     (cache reload on a migrated resume), showing where the theoretical
//     benefit of migration is eaten by its cost — the paper's argument
//     (i) for building RT-Seed on partitioned scheduling.
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "sched/generator.hpp"
#include "sim/global_scheduler.hpp"
#include "sim/sweep.hpp"

using namespace rtseed;

namespace {

constexpr int kProcessors = 4;
constexpr int kTrials = 60;
constexpr common::u64 kSeed = 777;
const common::Nanos kHorizon = common::millis(1000);

struct Point {
  double partitioned = 0;
  double global_free = 0;       ///< migration overhead 0
  double global_costly = 0;     ///< migration overhead 200us
  double migrations_per_s = 0;
};

Point run_point(double per_proc_utilization, common::Rng rng) {
  Point out;
  sched::GeneratorConfig config;
  config.num_tasks = 12;
  config.total_utilization = per_proc_utilization * kProcessors;
  config.min_period = common::millis(10);
  config.max_period = common::millis(100);

  for (int trial = 0; trial < kTrials; ++trial) {
    const auto set = sched::generate_task_set(config, rng);

    sim::SimOptions part;
    part.algorithm = sim::SimAlgorithm::kRmwp;
    part.horizon = kHorizon;
    out.partitioned +=
        !sim::simulate_partitioned(set, kProcessors, part).any_miss();

    sim::GlobalSimOptions global;
    global.algorithm = sim::SimAlgorithm::kRmwp;
    global.num_processors = kProcessors;
    global.horizon = kHorizon;
    global.migration_overhead = 0;
    const auto free_run = sim::simulate_global(set, global);
    out.global_free += !free_run.any_miss();
    out.migrations_per_s += static_cast<double>(free_run.migrations) /
                            common::to_seconds(kHorizon);

    global.migration_overhead = common::micros(200);
    out.global_costly += !sim::simulate_global(set, global).any_miss();
  }
  out.partitioned /= kTrials;
  out.global_free /= kTrials;
  out.global_costly /= kTrials;
  out.migrations_per_s /= kTrials;
  return out;
}

}  // namespace

int main() {
  std::printf(
      "=== Ablation: partitioned (P-RMWP) vs global (G-RMWP) on M=%d "
      "(%d random sets/point) ===\n\n",
      kProcessors, kTrials);
  common::Table table({"U/M", "P-RMWP ok", "G-RMWP ok", "G-RMWP ok (+200us/"
                       "migration)", "migrations/s"});

  // Each utilization grid point is one sweep cell with its own RNG stream
  // derived from (seed, point index): results are bit-identical for any
  // thread count (RTSEED_SWEEP_THREADS=1 reproduces the serial run).
  std::vector<double> grid;
  for (double u = 0.4; u <= 1.01; u += 0.1) grid.push_back(u);
  const sim::SweepRunner runner;
  const auto points = runner.map(grid.size(), [&](size_t cell) {
    common::Rng rng(sim::SweepRunner::cell_seed(
        kSeed, {static_cast<common::u64>(cell)}));
    return run_point(grid[cell], std::move(rng));
  });

  bool overhead_hurts_somewhere = false;
  bool partitioned_dominates = true;
  bool migrations_present = true;
  for (size_t cell = 0; cell < grid.size(); ++cell) {
    const auto& p = points[cell];
    table.add_numeric_row(
        {grid[cell], p.partitioned, p.global_free, p.global_costly,
         p.migrations_per_s},
        2);
    if (p.global_costly < p.global_free - 1e-9) {
      overhead_hurts_somewhere = true;
    }
    if (p.global_free > p.partitioned + 0.05) partitioned_dominates = false;
    if (p.migrations_per_s < 1.0) migrations_present = false;
  }
  table.print();

  const bool ok =
      overhead_hurts_somewhere && partitioned_dominates && migrations_present;
  std::printf(
      "\n[shape check] %s\n",
      ok ? "P-RMWP matches or beats G-RMWP at every load; global "
           "scheduling migrates constantly, and charging that cost "
           "degrades it further — the paper's rationale for partitioning"
         : "FAILED: the expected partitioned-vs-global relations did not "
           "appear");
  return ok ? 0 : 1;
}
