// Figure 10 — overhead of beginning the mandatory part (Δm).
//
// Paper: approximately constant in the number of parallel optional parts;
// no-load < CPU load < CPU-Memory load (the CPU-Memory load's cache
// pollution dominates the release path).
#include "common/table.hpp"
#include "figure_common.hpp"

namespace {

// "The overheads of all assignment policies depend on the number of
// tasks" (§V-B) — the paper holds n = 1; this companion sweep shows the
// dependence the text asserts.
void print_task_count_sweep() {
  using namespace rtseed;
  std::printf("\n--- companion: delta_m vs number of tasks (np = 57, "
              "one-by-one) ---\n");
  common::Table table({"tasks", "no-load [us]", "cpu [us]", "cpu-mem [us]"});
  const sim::OverheadModel model;
  for (int tasks : {1, 2, 4, 8}) {
    std::vector<double> row{static_cast<double>(tasks)};
    for (auto load : {sim::LoadKind::kNone, sim::LoadKind::kCpu,
                      sim::LoadKind::kCpuMemory}) {
      sim::OverheadScenario scenario;
      scenario.load = load;
      scenario.num_optional_parts = 57;
      scenario.num_tasks = tasks;
      common::Rng rng(1);
      row.push_back(model
                        .measure_us(sim::OverheadKind::kBeginMandatory,
                                    scenario, 100, rng)
                        .mean);
    }
    table.add_numeric_row(row, 1);
  }
  table.print();
}

}  // namespace

int main() {
  const int rc = rtseed::bench::run_overhead_figure(
      rtseed::sim::OverheadKind::kBeginMandatory,
      "Figure 10: overhead of beginning the mandatory part");
  print_task_count_sweep();
  return rc;
}
