// Figure 11 — overhead of switching the mandatory thread to the optional
// thread (Δs).
//
// Paper: under no load the overhead grows with np and jumps sharply at
// 228 (every hardware thread claimed); under both loads it is roughly
// constant and independent of np.
#include "figure_common.hpp"

int main() {
  return rtseed::bench::run_overhead_figure(
      rtseed::sim::OverheadKind::kSwitch,
      "Figure 11: overhead of switching mandatory -> optional thread");
}
