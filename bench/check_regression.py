#!/usr/bin/env python3
"""In-repo perf-regression gate.

Compares freshly produced BENCH_*.json files against the committed
baselines in bench/history/ using the per-metric gates declared in
bench/history/gates.json, and exits non-zero when a gate fails — CI wires
this into the bench-smoke job so a perf regression fails the build.

Gate kinds (all declared in gates.json, nothing hard-coded here):

  equals            fresh value must equal the baseline value exactly
                    (machine-independent invariants: identical-output
                    flags, schema fields, counts)
  max_abs           fresh value must be <= the given absolute ceiling
  min_abs           fresh value must be >= the given absolute floor
  max_increase_pct  fresh <= baseline * (1 + pct/100)   (lower is better)
  max_decrease_pct  fresh >= baseline * (1 - pct/100)   (higher is better)

Metric paths are dotted, with [*] fanning out over a list; a wildcard
match is reduced with the gate's "aggregate" (mean, max, min; default
mean) before comparison, so runner-to-runner list-length drift cannot
break the gate.

Usage:
  python3 bench/check_regression.py --history bench/history --fresh .
  python3 bench/check_regression.py --self-test
"""

import argparse
import json
import os
import sys


def resolve(data, path):
    """Returns the list of values matched by a dotted/[*] path."""
    values = [data]
    for part in path.split("."):
        next_values = []
        fan_out = part.endswith("[*]")
        key = part[:-3] if fan_out else part
        for value in values:
            if not isinstance(value, dict) or key not in value:
                raise KeyError(f"path {path!r}: missing key {key!r}")
            child = value[key]
            if fan_out:
                if not isinstance(child, list):
                    raise KeyError(f"path {path!r}: {key!r} is not a list")
                next_values.extend(child)
            else:
                next_values.append(child)
        values = next_values
    return values


def aggregate(values, how):
    if len(values) == 1:
        return values[0]
    numeric = [float(v) for v in values]
    if how == "max":
        return max(numeric)
    if how == "min":
        return min(numeric)
    return sum(numeric) / len(numeric)


def check_gate(gate, fresh_doc, baseline_doc):
    """Returns (ok, message) for one gate."""
    path = gate["path"]
    how = gate.get("aggregate", "mean")
    fresh = aggregate(resolve(fresh_doc, path), how)

    if "equals" in gate or gate.get("kind") == "equals":
        expected = gate.get("equals", None)
        if expected is None:
            expected = aggregate(resolve(baseline_doc, path), how)
        ok = fresh == expected
        return ok, f"{path}: {fresh!r} {'==' if ok else '!='} {expected!r}"

    fresh = float(fresh)
    if "max_abs" in gate:
        limit = float(gate["max_abs"])
        return fresh <= limit, f"{path}: {fresh:g} <= {limit:g} (absolute)"
    if "min_abs" in gate:
        limit = float(gate["min_abs"])
        return fresh >= limit, f"{path}: {fresh:g} >= {limit:g} (absolute)"

    base = float(aggregate(resolve(baseline_doc, path), how))
    if "max_increase_pct" in gate:
        pct = float(gate["max_increase_pct"])
        limit = base * (1.0 + pct / 100.0)
        return (
            fresh <= limit,
            f"{path}: {fresh:g} <= {limit:g} (baseline {base:g} +{pct:g}%)",
        )
    if "max_decrease_pct" in gate:
        pct = float(gate["max_decrease_pct"])
        limit = base * (1.0 - pct / 100.0)
        return (
            fresh >= limit,
            f"{path}: {fresh:g} >= {limit:g} (baseline {base:g} -{pct:g}%)",
        )
    raise ValueError(f"gate for {path!r} declares no known check")


def run(history_dir, fresh_dir, gates_path=None, require_fresh=True):
    """Returns (failures, checked).  Prints one line per gate."""
    if gates_path is None:
        gates_path = os.path.join(history_dir, "gates.json")
    with open(gates_path) as f:
        config = json.load(f)

    failures = 0
    checked = 0
    for entry in config["files"]:
        name = entry["name"]
        fresh_path = os.path.join(fresh_dir, name)
        baseline_path = os.path.join(history_dir, name)
        if not os.path.exists(fresh_path):
            if require_fresh:
                print(f"FAIL {name}: fresh file missing at {fresh_path}")
                failures += 1
            else:
                print(f"skip {name}: not produced by this run")
            continue
        with open(fresh_path) as f:
            fresh_doc = json.load(f)
        with open(baseline_path) as f:
            baseline_doc = json.load(f)
        for gate in entry["gates"]:
            try:
                ok, message = check_gate(gate, fresh_doc, baseline_doc)
            except (KeyError, ValueError, TypeError) as error:
                ok, message = False, f"{gate.get('path')}: {error}"
            checked += 1
            print(f"{'ok  ' if ok else 'FAIL'} {name} {message}")
            if not ok:
                failures += 1
    return failures, checked


def self_test():
    """Exercises every gate kind against synthetic documents."""
    baseline = {
        "scalar": 100.0,
        "flag": True,
        "runs": [{"t": 10.0}, {"t": 20.0}],
        "speedup": 2.0,
    }
    cases = [
        # (gate, fresh, expect_ok)
        ({"path": "scalar", "max_increase_pct": 50}, {"scalar": 149.0}, True),
        ({"path": "scalar", "max_increase_pct": 50}, {"scalar": 151.0}, False),
        ({"path": "speedup", "max_decrease_pct": 25}, {"speedup": 1.6}, True),
        ({"path": "speedup", "max_decrease_pct": 25}, {"speedup": 1.4}, False),
        ({"path": "flag", "equals": True}, {"flag": True}, True),
        ({"path": "flag", "equals": True}, {"flag": False}, False),
        ({"path": "scalar", "max_abs": 120}, {"scalar": 119.0}, True),
        ({"path": "scalar", "max_abs": 120}, {"scalar": 121.0}, False),
        ({"path": "speedup", "min_abs": 1.0}, {"speedup": 1.1}, True),
        ({"path": "speedup", "min_abs": 1.0}, {"speedup": 0.9}, False),
        (
            {"path": "runs[*].t", "max_increase_pct": 10},
            {"runs": [{"t": 11.0}, {"t": 21.0}]},
            True,
        ),
        (
            {"path": "runs[*].t", "max_increase_pct": 10, "aggregate": "max"},
            {"runs": [{"t": 5.0}, {"t": 23.0}]},
            False,
        ),
    ]
    for gate, fresh, expect_ok in cases:
        ok, message = check_gate(gate, fresh, baseline)
        status = "ok  " if ok == expect_ok else "FAIL"
        print(f"{status} self-test {message} (expected {expect_ok})")
        if ok != expect_ok:
            return 1
    # A missing path must report, not crash.
    ok, message = False, ""
    try:
        check_gate({"path": "absent", "max_abs": 1}, {"x": 1}, baseline)
    except KeyError as error:
        ok, message = True, str(error)
    print(f"{'ok  ' if ok else 'FAIL'} self-test missing path -> {message}")
    return 0 if ok else 1


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--history", default="bench/history",
                        help="directory with committed baselines + gates.json")
    parser.add_argument("--fresh", default=".",
                        help="directory with freshly produced BENCH_*.json")
    parser.add_argument("--gates", default=None,
                        help="gates config (default: <history>/gates.json)")
    parser.add_argument("--allow-missing", action="store_true",
                        help="skip files the fresh run did not produce")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in gate-kind tests and exit")
    args = parser.parse_args()

    if args.self_test:
        sys.exit(self_test())

    failures, checked = run(args.history, args.fresh, args.gates,
                            require_fresh=not args.allow_missing)
    print(f"\n{checked} gates checked, {failures} failed")
    sys.exit(1 if failures else 0)


if __name__ == "__main__":
    main()
